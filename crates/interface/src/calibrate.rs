//! Calibration of the cost-model parameters against published savings.
//!
//! The paper reports area/power savings (Table 1) computed from Eq (6)/(7)
//! with device figures cited from four references, but never lists the
//! figures themselves. This module inverts that: given a set of
//! `(AddaTopology, MeiTopology, reported saving)` observations it fits the
//! relative cell costs `(DAC, peripheral, RRAM)` — normalized to `ADC = 1` —
//! by a seeded simulated-annealing-style random search.
//!
//! The shipped defaults in [`InterfaceCircuits::dac2015`] were produced by
//! exactly this fit over the paper's 12 Table 1 observations; the result
//! reproduces every reported saving within 1% absolute (see the tests in
//! `cost.rs`).
//!
//! [`InterfaceCircuits::dac2015`]: crate::cost::InterfaceCircuits::dac2015

use std::fmt;

use prng::rngs::StdRng;
use prng::Rng;
use prng::SeedableRng;

use crate::cost::{AddaTopology, MeiTopology};

/// One calibration observation: a benchmark's topologies and the saving
/// fraction the paper reports for it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// The traditional architecture.
    pub adda: AddaTopology,
    /// The pruned merged-interface architecture.
    pub mei: MeiTopology,
    /// The reported saving, `1 − cost_MEI / cost_org`, in `[0, 1)`.
    pub saving: f64,
}

/// Relative cell costs with the ADC normalized to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeCosts {
    /// DAC cost relative to the ADC.
    pub dac: f64,
    /// Peripheral-circuit cost relative to the ADC.
    pub peripheral: f64,
    /// RRAM cell cost relative to the ADC.
    pub rram: f64,
}

impl RelativeCosts {
    /// Predicted saving of `mei` over `adda` under these relative costs.
    #[must_use]
    pub fn predicted_saving(&self, adda: &AddaTopology, mei: &MeiTopology) -> f64 {
        let org = adda.inputs as f64 * self.dac
            + adda.outputs as f64
            + adda.hidden as f64 * self.peripheral
            + adda.device_count() as f64 * self.rram;
        let mei_cost = mei.hidden as f64 * self.peripheral + mei.device_count() as f64 * self.rram;
        1.0 - mei_cost / org
    }

    /// Root-mean-square error of the predictions over a set of observations.
    ///
    /// # Panics
    ///
    /// Panics if `observations` is empty.
    #[must_use]
    pub fn rmse(&self, observations: &[Observation]) -> f64 {
        assert!(!observations.is_empty(), "need at least one observation");
        let sse: f64 = observations
            .iter()
            .map(|o| {
                let e = self.predicted_saving(&o.adda, &o.mei) - o.saving;
                e * e
            })
            .sum();
        (sse / observations.len() as f64).sqrt()
    }
}

impl fmt::Display for RelativeCosts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "relative to ADC=1: DAC {:.5}, peripheral {:.5}, RRAM {:.3e}",
            self.dac, self.peripheral, self.rram
        )
    }
}

/// Configuration of the random-search fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    /// Number of proposal steps.
    pub iterations: usize,
    /// RNG seed (the fit is deterministic given the seed).
    pub seed: u64,
    /// Initial log-space step scale; decays exponentially over the run.
    pub initial_step: f64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self {
            iterations: 200_000,
            seed: 0,
            initial_step: 0.5,
        }
    }
}

/// Fit relative cell costs to a set of observations.
///
/// Proposals perturb each parameter multiplicatively in log space (keeping
/// everything positive) and are accepted when they reduce the RMSE; the step
/// size anneals exponentially.
///
/// # Panics
///
/// Panics if `observations` is empty.
#[must_use]
pub fn fit(observations: &[Observation], config: &CalibrationConfig) -> RelativeCosts {
    assert!(!observations.is_empty(), "need at least one observation");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut best = RelativeCosts {
        dac: 0.3,
        peripheral: 0.05,
        rram: 1e-3,
    };
    let mut best_err = best.rmse(observations);
    let decay = config.iterations as f64 / 5.0;
    for it in 0..config.iterations {
        let scale = config.initial_step * (-(it as f64) / decay).exp();
        let perturb =
            |v: f64, rng: &mut StdRng| (v * (rng.gen_range(-scale..=scale)).exp()).max(1e-9);
        let candidate = RelativeCosts {
            dac: perturb(best.dac, &mut rng),
            peripheral: perturb(best.peripheral, &mut rng),
            rram: perturb(best.rram, &mut rng),
        };
        let err = candidate.rmse(observations);
        if err < best_err {
            best = candidate;
            best_err = err;
        }
    }
    best
}

/// The paper's Table 1 observations for the **area** column.
#[must_use]
pub fn table1_area_observations() -> Vec<Observation> {
    table1(&[0.7424, 0.5463, 0.6967, 0.8614, 0.6700, 0.8599])
}

/// The paper's Table 1 observations for the **power** column.
#[must_use]
pub fn table1_power_observations() -> Vec<Observation> {
    table1(&[0.8723, 0.7373, 0.6182, 0.7958, 0.7025, 0.8680])
}

fn table1(savings: &[f64; 6]) -> Vec<Observation> {
    let rows = [
        ((1, 8, 2), (1, 7, 16, 2, 8)),
        ((2, 8, 2), (2, 8, 32, 2, 8)),
        ((18, 48, 2), (18, 6, 64, 2, 1)),
        ((64, 16, 64), (64, 6, 64, 64, 7)),
        ((6, 20, 1), (6, 6, 32, 1, 8)),
        ((9, 8, 1), (9, 6, 16, 1, 1)),
    ];
    rows.iter()
        .zip(savings)
        .map(|(((i, h, o), (ig, ib, hm, og, ob)), &saving)| Observation {
            adda: AddaTopology::new(*i, *h, *o, 8),
            mei: MeiTopology::new(*ig, *ib, *hm, *og, *ob),
            saving,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_area_ratios_fit_table1_tightly() {
        let shipped = RelativeCosts {
            dac: 0.506_37,
            peripheral: 0.041_05,
            rram: 1.013e-4,
        };
        let rmse = shipped.rmse(&table1_area_observations());
        assert!(rmse < 0.01, "area rmse {rmse}");
    }

    #[test]
    fn shipped_power_ratios_fit_table1_tightly() {
        let shipped = RelativeCosts {
            dac: 0.248_48,
            peripheral: 0.012_32,
            rram: 1.453e-4,
        };
        let rmse = shipped.rmse(&table1_power_observations());
        assert!(rmse < 0.01, "power rmse {rmse}");
    }

    #[test]
    fn fit_recovers_synthetic_parameters() {
        // Generate observations from known ratios and check the fit finds
        // parameters with equivalent predictions.
        let truth = RelativeCosts {
            dac: 0.4,
            peripheral: 0.03,
            rram: 2e-4,
        };
        let observations: Vec<Observation> = table1_area_observations()
            .into_iter()
            .map(|mut o| {
                o.saving = truth.predicted_saving(&o.adda, &o.mei);
                o
            })
            .collect();
        let fitted = fit(
            &observations,
            &CalibrationConfig {
                iterations: 60_000,
                ..CalibrationConfig::default()
            },
        );
        assert!(
            fitted.rmse(&observations) < 0.005,
            "rmse {}",
            fitted.rmse(&observations)
        );
    }

    #[test]
    fn fit_is_deterministic_per_seed() {
        let obs = table1_area_observations();
        let cfg = CalibrationConfig {
            iterations: 5_000,
            ..CalibrationConfig::default()
        };
        let a = fit(&obs, &cfg);
        let b = fit(&obs, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn fit_improves_over_starting_point() {
        let obs = table1_power_observations();
        let start = RelativeCosts {
            dac: 0.3,
            peripheral: 0.05,
            rram: 1e-3,
        };
        let cfg = CalibrationConfig {
            iterations: 30_000,
            ..CalibrationConfig::default()
        };
        let fitted = fit(&obs, &cfg);
        assert!(fitted.rmse(&obs) < start.rmse(&obs));
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn fit_rejects_empty() {
        let _ = fit(&[], &CalibrationConfig::default());
    }

    #[test]
    fn display_is_nonempty() {
        let c = RelativeCosts {
            dac: 0.5,
            peripheral: 0.04,
            rram: 1e-4,
        };
        assert!(format!("{c}").contains("ADC"));
    }
}
