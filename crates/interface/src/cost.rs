//! Area and power estimation: paper Eq (6), Eq (7) and Eq (9).
//!
//! The traditional `I×H×O` RCS with B-bit AD/DAs costs (Eq 6)
//!
//! ```text
//!   A_org ≈ I·A_DA + O·A_AD + H·A_P + 2(I+O)·H·A_R
//! ```
//!
//! and the merged-interface `I'×H'×O'` RCS costs (Eq 7, generalized to
//! asymmetric pruned bit widths)
//!
//! ```text
//!   A_MEI ≈ H'·A_P + 2(B_in·I' + B_out·O')·H'·A_R   (+ out-ports·A_cmp)
//! ```
//!
//! The same formulas evaluate power by swapping the per-cell parameters.
//! The default parameter set ([`InterfaceCircuits::dac2015`]) was calibrated
//! against the paper's own Table 1 savings (see `crates/interface/src/calibrate.rs`
//! and DESIGN.md): with it, Eq (6)/(7) reproduce all 12 reported area/power
//! saving percentages within 1% absolute.

use std::fmt;

use crate::quantize::InterfaceSpec;

/// Area (µm²) and power (µW) of one circuit cell.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CellCost {
    /// Cell area in µm².
    pub area_um2: f64,
    /// Cell power in µW.
    pub power_uw: f64,
}

impl CellCost {
    /// Create a cell cost.
    ///
    /// # Panics
    ///
    /// Panics if either value is negative or non-finite.
    #[must_use]
    pub fn new(area_um2: f64, power_uw: f64) -> Self {
        assert!(
            area_um2 >= 0.0 && area_um2.is_finite() && power_uw >= 0.0 && power_uw.is_finite(),
            "cell costs must be finite and non-negative: area={area_um2}, power={power_uw}"
        );
        Self { area_um2, power_uw }
    }
}

impl fmt::Display for CellCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} µm², {:.3} µW", self.area_um2, self.power_uw)
    }
}

/// Per-cell costs of every component class at the interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterfaceCircuits {
    /// One B-bit ADC channel (flash-style; Proesel et al., CICC 2010).
    pub adc: CellCost,
    /// One B-bit DAC channel (Tseng & Chiu, VLSI 2014).
    pub dac: CellCost,
    /// One analog peripheral cell: op-amp + sigmoid circuit per hidden node
    /// (St. Amant et al., ISCA 2014).
    pub peripheral: CellCost,
    /// One RRAM cross-point device (Deng et al., IEDM 2013).
    pub rram_cell: CellCost,
    /// One MEI output comparator / flip-flop buffer (1-bit ADC). The paper's
    /// Eq (7) omits this term; the default keeps it at zero for fidelity and
    /// the ablation benches turn it on.
    pub comparator: CellCost,
}

impl InterfaceCircuits {
    /// The calibrated DAC-2015 parameter set.
    ///
    /// Anchored at a 10 000 µm² / 3 000 µW 8-bit ADC channel; the remaining
    /// cells use the ratios fitted to the paper's Table 1 savings
    /// (area `DAC/ADC = 0.506`, `P/ADC = 0.0411`, `R/ADC = 1.013e-4`;
    /// power `DAC/ADC = 0.248`, `P/ADC = 0.0123`, `R/ADC = 1.453e-4`).
    #[must_use]
    pub fn dac2015() -> Self {
        const ADC_AREA: f64 = 10_000.0;
        const ADC_POWER: f64 = 3_000.0;
        Self {
            adc: CellCost::new(ADC_AREA, ADC_POWER),
            dac: CellCost::new(0.506_37 * ADC_AREA, 0.248_48 * ADC_POWER),
            peripheral: CellCost::new(0.041_05 * ADC_AREA, 0.012_32 * ADC_POWER),
            rram_cell: CellCost::new(1.013e-4 * ADC_AREA, 1.453e-4 * ADC_POWER),
            comparator: CellCost::new(0.0, 0.0),
        }
    }

    /// Builder: use a nonzero comparator cost for MEI output ports.
    #[must_use]
    pub fn with_comparator(mut self, comparator: CellCost) -> Self {
        self.comparator = comparator;
        self
    }
}

impl Default for InterfaceCircuits {
    fn default() -> Self {
        Self::dac2015()
    }
}

/// The traditional architecture: an `I×H×O` RCS with B-bit AD/DAs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddaTopology {
    /// Analog input ports (each behind a DAC).
    pub inputs: usize,
    /// Hidden-layer nodes (each with an analog peripheral circuit).
    pub hidden: usize,
    /// Analog output ports (each in front of an ADC).
    pub outputs: usize,
    /// AD/DA resolution in bits.
    pub bits: usize,
}

impl AddaTopology {
    /// Create an `inputs × hidden × outputs` topology with `bits`-bit AD/DAs.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the bit width is zero.
    #[must_use]
    pub fn new(inputs: usize, hidden: usize, outputs: usize, bits: usize) -> Self {
        assert!(
            inputs > 0 && hidden > 0 && outputs > 0 && bits > 0,
            "topology dimensions and bit width must be nonzero"
        );
        Self {
            inputs,
            hidden,
            outputs,
            bits,
        }
    }

    /// RRAM device count: `2(I+O)·H` (differential pairs for both layers).
    #[must_use]
    pub fn device_count(&self) -> usize {
        2 * (self.inputs + self.outputs) * self.hidden
    }
}

impl fmt::Display for AddaTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}×{}×{} ({}-bit AD/DA)",
            self.inputs, self.hidden, self.outputs, self.bits
        )
    }
}

/// The merged-interface architecture: `(I'·B_in) × H' × (O'·B_out)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeiTopology {
    /// Input interface: `I'` groups of `B_in` bits.
    pub input: InterfaceSpec,
    /// Hidden-layer nodes.
    pub hidden: usize,
    /// Output interface: `O'` groups of `B_out` bits.
    pub output: InterfaceSpec,
}

impl MeiTopology {
    /// Create a `(in_groups·in_bits) × hidden × (out_groups·out_bits)`
    /// MEI topology.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero (via [`InterfaceSpec::new`]).
    #[must_use]
    pub fn new(
        in_groups: usize,
        in_bits: usize,
        hidden: usize,
        out_groups: usize,
        out_bits: usize,
    ) -> Self {
        assert!(hidden > 0, "hidden layer must be nonzero");
        Self {
            input: InterfaceSpec::new(in_groups, in_bits),
            hidden,
            output: InterfaceSpec::new(out_groups, out_bits),
        }
    }

    /// Binary input port count.
    #[must_use]
    pub fn input_ports(&self) -> usize {
        self.input.ports()
    }

    /// Binary output port count.
    #[must_use]
    pub fn output_ports(&self) -> usize {
        self.output.ports()
    }

    /// RRAM device count: `2(B_in·I' + B_out·O')·H'`.
    #[must_use]
    pub fn device_count(&self) -> usize {
        2 * (self.input_ports() + self.output_ports()) * self.hidden
    }

    /// The MLP node counts realizing this topology.
    #[must_use]
    pub fn layer_sizes(&self) -> [usize; 3] {
        [self.input_ports(), self.hidden, self.output_ports()]
    }
}

impl fmt::Display for MeiTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}×{}×{}", self.input, self.hidden, self.output)
    }
}

/// One architecture's cost split by component class (all in µm² or µW
/// depending on which breakdown was requested).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// DAC total.
    pub dac: f64,
    /// ADC (or comparator) total.
    pub adc: f64,
    /// Analog peripheral total.
    pub peripheral: f64,
    /// RRAM device total.
    pub rram: f64,
}

impl CostBreakdown {
    /// Sum of all components.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.dac + self.adc + self.peripheral + self.rram
    }

    /// Fraction contributed by the AD/DA converters together.
    #[must_use]
    pub fn adda_fraction(&self) -> f64 {
        (self.dac + self.adc) / self.total()
    }

    /// Fraction contributed by the RRAM devices.
    #[must_use]
    pub fn rram_fraction(&self) -> f64 {
        self.rram / self.total()
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.total();
        write!(
            f,
            "DAC {:.1}% | ADC {:.1}% | peripheral {:.1}% | RRAM {:.2}%",
            100.0 * self.dac / t,
            100.0 * self.adc / t,
            100.0 * self.peripheral / t,
            100.0 * self.rram / t
        )
    }
}

/// The Eq (6)/(7)/(9) evaluator over a set of circuit parameters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostModel {
    /// The per-cell circuit costs used by every estimate.
    pub circuits: InterfaceCircuits,
}

impl CostModel {
    /// Model over the calibrated DAC-2015 parameters.
    #[must_use]
    pub fn dac2015() -> Self {
        Self {
            circuits: InterfaceCircuits::dac2015(),
        }
    }

    /// Model over explicit circuit parameters.
    #[must_use]
    pub fn new(circuits: InterfaceCircuits) -> Self {
        Self { circuits }
    }

    /// Eq (6): area of the traditional architecture, µm².
    #[must_use]
    pub fn area_adda(&self, t: &AddaTopology) -> f64 {
        let c = &self.circuits;
        t.inputs as f64 * c.dac.area_um2
            + t.outputs as f64 * c.adc.area_um2
            + t.hidden as f64 * c.peripheral.area_um2
            + t.device_count() as f64 * c.rram_cell.area_um2
    }

    /// Eq (6) with power parameters, µW.
    #[must_use]
    pub fn power_adda(&self, t: &AddaTopology) -> f64 {
        let c = &self.circuits;
        t.inputs as f64 * c.dac.power_uw
            + t.outputs as f64 * c.adc.power_uw
            + t.hidden as f64 * c.peripheral.power_uw
            + t.device_count() as f64 * c.rram_cell.power_uw
    }

    /// Eq (7): area of the merged-interface architecture, µm².
    #[must_use]
    pub fn area_mei(&self, t: &MeiTopology) -> f64 {
        let c = &self.circuits;
        t.hidden as f64 * c.peripheral.area_um2
            + t.device_count() as f64 * c.rram_cell.area_um2
            + t.output_ports() as f64 * c.comparator.area_um2
    }

    /// Eq (7) with power parameters, µW.
    #[must_use]
    pub fn power_mei(&self, t: &MeiTopology) -> f64 {
        let c = &self.circuits;
        t.hidden as f64 * c.peripheral.power_uw
            + t.device_count() as f64 * c.rram_cell.power_uw
            + t.output_ports() as f64 * c.comparator.power_uw
    }

    /// Per-component area breakdown of the traditional architecture (Fig 2).
    #[must_use]
    pub fn area_breakdown_adda(&self, t: &AddaTopology) -> CostBreakdown {
        let c = &self.circuits;
        CostBreakdown {
            dac: t.inputs as f64 * c.dac.area_um2,
            adc: t.outputs as f64 * c.adc.area_um2,
            peripheral: t.hidden as f64 * c.peripheral.area_um2,
            rram: t.device_count() as f64 * c.rram_cell.area_um2,
        }
    }

    /// Per-component power breakdown of the traditional architecture (Fig 2).
    #[must_use]
    pub fn power_breakdown_adda(&self, t: &AddaTopology) -> CostBreakdown {
        let c = &self.circuits;
        CostBreakdown {
            dac: t.inputs as f64 * c.dac.power_uw,
            adc: t.outputs as f64 * c.adc.power_uw,
            peripheral: t.hidden as f64 * c.peripheral.power_uw,
            rram: t.device_count() as f64 * c.rram_cell.power_uw,
        }
    }

    /// Per-component area breakdown of the merged-interface architecture.
    /// MEI has no converters: the `dac` slot is zero and the `adc` slot
    /// carries the output comparators (the 1-bit ADCs of Eq (7)'s
    /// optional term).
    #[must_use]
    pub fn area_breakdown_mei(&self, t: &MeiTopology) -> CostBreakdown {
        let c = &self.circuits;
        CostBreakdown {
            dac: 0.0,
            adc: t.output_ports() as f64 * c.comparator.area_um2,
            peripheral: t.hidden as f64 * c.peripheral.area_um2,
            rram: t.device_count() as f64 * c.rram_cell.area_um2,
        }
    }

    /// Per-component power breakdown of the merged-interface architecture
    /// (comparators in the `adc` slot, as in
    /// [`area_breakdown_mei`](Self::area_breakdown_mei)).
    #[must_use]
    pub fn power_breakdown_mei(&self, t: &MeiTopology) -> CostBreakdown {
        let c = &self.circuits;
        CostBreakdown {
            dac: 0.0,
            adc: t.output_ports() as f64 * c.comparator.power_uw,
            peripheral: t.hidden as f64 * c.peripheral.power_uw,
            rram: t.device_count() as f64 * c.rram_cell.power_uw,
        }
    }

    /// Fractional area saving of MEI over the traditional architecture:
    /// `1 − A_MEI / A_org`.
    #[must_use]
    pub fn area_saving(&self, adda: &AddaTopology, mei: &MeiTopology) -> f64 {
        1.0 - self.area_mei(mei) / self.area_adda(adda)
    }

    /// Fractional power saving of MEI over the traditional architecture.
    #[must_use]
    pub fn power_saving(&self, adda: &AddaTopology, mei: &MeiTopology) -> f64 {
        1.0 - self.power_mei(mei) / self.power_adda(adda)
    }

    /// Eq (9): the maximum number of SAAB learners whose combined area *and*
    /// power stay within the traditional architecture's budget:
    /// `K_max = ⌊min(A_org/A_MEI, P_org/P_MEI)⌋`.
    ///
    /// Returns 0 when even a single MEI learner exceeds the budget.
    #[must_use]
    pub fn k_max(&self, adda: &AddaTopology, mei: &MeiTopology) -> usize {
        let a_ratio = self.area_adda(adda) / self.area_mei(mei);
        let p_ratio = self.power_adda(adda) / self.power_mei(mei);
        a_ratio.min(p_ratio).floor().max(0.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One Table 1 row: name, digital `(I, H, O)`, pruned MEI
    /// `(I', B_in, H', O', B_out)`, reported area and power savings.
    type Table1Row = (
        &'static str,
        (usize, usize, usize),
        (usize, usize, usize, usize, usize),
        f64,
        f64,
    );

    /// Paper Table 1 rows. The calibrated model must land within a couple of
    /// percent of every entry.
    const TABLE1: [Table1Row; 6] = [
        ("fft", (1, 8, 2), (1, 7, 16, 2, 8), 0.7424, 0.8723),
        ("inversek2j", (2, 8, 2), (2, 8, 32, 2, 8), 0.5463, 0.7373),
        ("jmeint", (18, 48, 2), (18, 6, 64, 2, 1), 0.6967, 0.6182),
        ("jpeg", (64, 16, 64), (64, 6, 64, 64, 7), 0.8614, 0.7958),
        ("kmeans", (6, 20, 1), (6, 6, 32, 1, 8), 0.6700, 0.7025),
        ("sobel", (9, 8, 1), (9, 6, 16, 1, 1), 0.8599, 0.8680),
    ];

    #[test]
    fn eq6_matches_manual_formula() {
        let m = CostModel::dac2015();
        let t = AddaTopology::new(2, 8, 2, 8);
        let c = &m.circuits;
        let manual = 2.0 * c.dac.area_um2
            + 2.0 * c.adc.area_um2
            + 8.0 * c.peripheral.area_um2
            + (2.0 * 4.0 * 8.0) * c.rram_cell.area_um2;
        assert!((m.area_adda(&t) - manual).abs() < 1e-9);
    }

    #[test]
    fn eq7_matches_manual_formula() {
        let m = CostModel::dac2015();
        let t = MeiTopology::new(2, 8, 32, 2, 8);
        let c = &m.circuits;
        let manual = 32.0 * c.peripheral.area_um2 + (2.0 * 32.0 * 32.0) * c.rram_cell.area_um2;
        assert!((m.area_mei(&t) - manual).abs() < 1e-9);
    }

    #[test]
    fn adda_dominated_by_converters_as_in_fig2() {
        // Fig 2: AD/DA > 85% of area and power; RRAM ≈ 1%.
        let m = CostModel::dac2015();
        let t = AddaTopology::new(2, 8, 2, 8);
        let area = m.area_breakdown_adda(&t);
        let power = m.power_breakdown_adda(&t);
        assert!(
            area.adda_fraction() > 0.85,
            "area AD/DA {:.3}",
            area.adda_fraction()
        );
        assert!(
            power.adda_fraction() > 0.85,
            "power AD/DA {:.3}",
            power.adda_fraction()
        );
        assert!(area.rram_fraction() < 0.02);
        assert!(power.rram_fraction() < 0.02);
    }

    #[test]
    fn mei_breakdown_sums_to_eq7_totals() {
        // The new per-component MEI breakdowns are definitionally tied to
        // Eq (7): their totals must equal area_mei/power_mei (to rounding
        // — the breakdown sums the same terms in `CostBreakdown::total`
        // order), with and without a comparator cost, so the accounting
        // layer built on them can never drift from the calibrated physics.
        let mei = MeiTopology::new(64, 6, 64, 64, 7);
        for m in [
            CostModel::dac2015(),
            CostModel::new(InterfaceCircuits::dac2015().with_comparator(CellCost::new(50.0, 10.0))),
        ] {
            let area = m.area_breakdown_mei(&mei);
            let power = m.power_breakdown_mei(&mei);
            let a = m.area_mei(&mei);
            let p = m.power_mei(&mei);
            assert!((area.total() - a).abs() < 1e-12 * a);
            assert!((power.total() - p).abs() < 1e-12 * p);
            assert_eq!(area.dac, 0.0, "MEI has no DACs");
            assert!(area.rram_fraction() > 0.5, "MEI cost is RRAM-dominated");
        }
    }

    #[test]
    fn calibrated_model_reproduces_table1_savings() {
        let m = CostModel::dac2015();
        for (name, (i, h, o), (ig, ib, hm, og, ob), area_saved, power_saved) in TABLE1 {
            let adda = AddaTopology::new(i, h, o, 8);
            let mei = MeiTopology::new(ig, ib, hm, og, ob);
            let a = m.area_saving(&adda, &mei);
            let p = m.power_saving(&adda, &mei);
            assert!(
                (a - area_saved).abs() < 0.02,
                "{name}: area saving {a:.4} vs paper {area_saved:.4}"
            );
            assert!(
                (p - power_saved).abs() < 0.02,
                "{name}: power saving {p:.4} vs paper {power_saved:.4}"
            );
        }
    }

    #[test]
    fn savings_shape_matches_paper() {
        // JPEG & Sobel save the most area; inversek2j the least.
        let m = CostModel::dac2015();
        let area: Vec<f64> = TABLE1
            .iter()
            .map(|(_, (i, h, o), (ig, ib, hm, og, ob), _, _)| {
                m.area_saving(
                    &AddaTopology::new(*i, *h, *o, 8),
                    &MeiTopology::new(*ig, *ib, *hm, *og, *ob),
                )
            })
            .collect();
        let inversek2j = area[1];
        assert!(
            area.iter().all(|&a| a >= inversek2j),
            "inversek2j saves least area"
        );
        assert!(area[3] > 0.8 && area[5] > 0.8, "jpeg/sobel save most");
        // Every benchmark saves more than half of both area and power.
        for (name, (i, h, o), (ig, ib, hm, og, ob), _, _) in TABLE1 {
            let adda = AddaTopology::new(i, h, o, 8);
            let mei = MeiTopology::new(ig, ib, hm, og, ob);
            assert!(m.area_saving(&adda, &mei) > 0.5, "{name}");
            assert!(m.power_saving(&adda, &mei) > 0.5, "{name}");
        }
    }

    #[test]
    fn k_max_matches_paper_jpeg_example() {
        // Footnote 2: "the area and power saved in the 'JPEG' benchmark are
        // 86.14% and 79.58%, and we use 4 RCSs in SAAB according to Eq (9)".
        let m = CostModel::dac2015();
        let adda = AddaTopology::new(64, 16, 64, 8);
        let mei = MeiTopology::new(64, 6, 64, 64, 7);
        assert_eq!(m.k_max(&adda, &mei), 4);
    }

    #[test]
    fn k_max_is_zero_when_mei_exceeds_budget() {
        let m = CostModel::dac2015();
        let adda = AddaTopology::new(1, 1, 1, 8);
        let mei = MeiTopology::new(64, 8, 512, 64, 8);
        assert_eq!(m.k_max(&adda, &mei), 0);
    }

    #[test]
    fn device_counts() {
        assert_eq!(AddaTopology::new(2, 8, 2, 8).device_count(), 64);
        let mei = MeiTopology::new(2, 8, 32, 2, 8);
        assert_eq!(mei.device_count(), 2 * 32 * 32);
        assert_eq!(mei.layer_sizes(), [16, 32, 16]);
    }

    #[test]
    fn comparator_cost_increases_mei_only() {
        let base = CostModel::dac2015();
        let with =
            CostModel::new(InterfaceCircuits::dac2015().with_comparator(CellCost::new(50.0, 10.0)));
        let adda = AddaTopology::new(2, 8, 2, 8);
        let mei = MeiTopology::new(2, 8, 32, 2, 8);
        assert_eq!(base.area_adda(&adda), with.area_adda(&adda));
        assert!(with.area_mei(&mei) > base.area_mei(&mei));
        assert!(with.area_saving(&adda, &mei) < base.area_saving(&adda, &mei));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn cell_cost_rejects_negative() {
        let _ = CellCost::new(-1.0, 0.0);
    }

    #[test]
    fn breakdown_total_and_display() {
        let b = CostBreakdown {
            dac: 1.0,
            adc: 2.0,
            peripheral: 3.0,
            rram: 4.0,
        };
        assert_eq!(b.total(), 10.0);
        assert!((b.adda_fraction() - 0.3).abs() < 1e-12);
        assert!(format!("{b}").contains('%'));
    }

    #[test]
    fn topology_displays() {
        assert_eq!(
            format!("{}", AddaTopology::new(2, 8, 2, 8)),
            "2×8×2 (8-bit AD/DA)"
        );
        assert_eq!(
            format!("{}", MeiTopology::new(2, 8, 32, 2, 8)),
            "(2·8)×32×(2·8)"
        );
    }
}
