//! Throughput and energy efficiency estimation.
//!
//! The RCS literature's headline metric is computational efficiency in
//! GOPS/W — the paper's introduction cites "hundreds of times of power
//! efficiency gains compared with the CPU" for crossbar accelerators. This
//! module derives that figure from the same Eq (6)/(7) power model used
//! everywhere else: one analog evaluation of an `I×H×O` network performs
//! `2·(I·H + H·O)` multiply-accumulates (each differential pair of devices
//! contributes one signed MAC), all in a single crossbar read per layer.

use std::fmt;

use crate::cost::{AddaTopology, CostModel, MeiTopology};

/// Operating-speed assumptions of the efficiency estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Full network evaluations per second (limited by the read pulse and
    /// the converter/comparator sampling rate).
    pub evaluations_per_second: f64,
}

impl Throughput {
    /// A conservative mixed-signal operating point: 10 M evaluations/s
    /// (100 ns read cycles, well within the cited GS/s-class converters).
    #[must_use]
    pub fn default_mixed_signal() -> Self {
        Self {
            evaluations_per_second: 1e7,
        }
    }

    /// Create a throughput assumption.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive and finite.
    #[must_use]
    pub fn new(evaluations_per_second: f64) -> Self {
        assert!(
            evaluations_per_second > 0.0 && evaluations_per_second.is_finite(),
            "evaluation rate must be positive and finite"
        );
        Self {
            evaluations_per_second,
        }
    }
}

impl Default for Throughput {
    fn default() -> Self {
        Self::default_mixed_signal()
    }
}

/// An efficiency estimate for one architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Efficiency {
    /// Multiply-accumulates per network evaluation.
    pub ops_per_evaluation: f64,
    /// Sustained operation rate in GOPS.
    pub gops: f64,
    /// Power draw in watts.
    pub watts: f64,
    /// The headline figure: GOPS per watt.
    pub gops_per_watt: f64,
}

impl fmt::Display for Efficiency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} GOPS at {:.3} W → {:.0} GOPS/W",
            self.gops, self.watts, self.gops_per_watt
        )
    }
}

/// MACs per evaluation of an `I×H×O` network (two crossbar layers).
fn mac_count(inputs: usize, hidden: usize, outputs: usize) -> f64 {
    ((inputs * hidden) + (hidden * outputs)) as f64
}

impl CostModel {
    /// Efficiency of the traditional AD/DA architecture at the given
    /// throughput.
    #[must_use]
    pub fn efficiency_adda(&self, t: &AddaTopology, throughput: &Throughput) -> Efficiency {
        let ops = mac_count(t.inputs, t.hidden, t.outputs);
        let watts = self.power_adda(t) * 1e-6; // µW → W
        let gops = ops * throughput.evaluations_per_second / 1e9;
        Efficiency {
            ops_per_evaluation: ops,
            gops,
            watts,
            gops_per_watt: gops / watts,
        }
    }

    /// Efficiency of the merged-interface architecture at the given
    /// throughput. MEI performs its MACs over the *bit-level* ports, so the
    /// op count uses the expanded layer widths.
    #[must_use]
    pub fn efficiency_mei(&self, t: &MeiTopology, throughput: &Throughput) -> Efficiency {
        let ops = mac_count(t.input_ports(), t.hidden, t.output_ports());
        let watts = self.power_mei(t) * 1e-6;
        let gops = ops * throughput.evaluations_per_second / 1e9;
        Efficiency {
            ops_per_evaluation: ops,
            gops,
            watts,
            gops_per_watt: gops / watts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_count_matches_topology() {
        assert_eq!(mac_count(2, 8, 2), 32.0);
        assert_eq!(mac_count(16, 32, 16), 1024.0);
    }

    #[test]
    fn adda_efficiency_is_converter_limited() {
        // The AD/DA architecture burns most of its power in converters, so
        // its GOPS/W is far below the crossbar's intrinsic capability.
        let m = CostModel::dac2015();
        let t = AddaTopology::new(2, 8, 2, 8);
        let e = m.efficiency_adda(&t, &Throughput::default());
        assert!(e.gops > 0.0 && e.watts > 0.0);
        assert!(e.gops_per_watt.is_finite());
    }

    #[test]
    fn mei_efficiency_beats_adda_per_watt() {
        // MEI does *more* raw ops (bit-level ports) at a fraction of the
        // power: its GOPS/W must exceed the AD/DA design's substantially.
        let m = CostModel::dac2015();
        let adda = AddaTopology::new(2, 8, 2, 8);
        let mei = MeiTopology::new(2, 8, 32, 2, 8);
        let th = Throughput::default();
        let ea = m.efficiency_adda(&adda, &th);
        let em = m.efficiency_mei(&mei, &th);
        assert!(
            em.gops_per_watt > 10.0 * ea.gops_per_watt,
            "MEI {:.0} GOPS/W vs AD/DA {:.0} GOPS/W",
            em.gops_per_watt,
            ea.gops_per_watt
        );
    }

    #[test]
    fn efficiency_scales_linearly_with_throughput() {
        let m = CostModel::dac2015();
        let t = AddaTopology::new(2, 8, 2, 8);
        let slow = m.efficiency_adda(&t, &Throughput::new(1e6));
        let fast = m.efficiency_adda(&t, &Throughput::new(1e7));
        assert!((fast.gops / slow.gops - 10.0).abs() < 1e-9);
        // Power is static in this model; GOPS/W scales with rate.
        assert!((fast.gops_per_watt / slow.gops_per_watt - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "evaluation rate")]
    fn invalid_throughput_rejected() {
        let _ = Throughput::new(0.0);
    }

    #[test]
    fn display_has_units() {
        let m = CostModel::dac2015();
        let e = m.efficiency_adda(&AddaTopology::new(2, 8, 2, 8), &Throughput::default());
        assert!(e.to_string().contains("GOPS/W"));
    }
}
