//! Throughput and energy efficiency estimation.
//!
//! The RCS literature's headline metric is computational efficiency in
//! GOPS/W — the paper's introduction cites "hundreds of times of power
//! efficiency gains compared with the CPU" for crossbar accelerators. This
//! module derives that figure from the same Eq (6)/(7) power model used
//! everywhere else: one analog evaluation of an `I×H×O` network performs
//! `2·(I·H + H·O)` multiply-accumulates (each differential pair of devices
//! contributes one signed MAC), all in a single crossbar read per layer.

use std::fmt;

use crate::cost::{AddaTopology, CostModel, MeiTopology};

/// Operating-speed assumptions of the efficiency estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Full network evaluations per second (limited by the read pulse and
    /// the converter/comparator sampling rate).
    pub evaluations_per_second: f64,
}

impl Throughput {
    /// A conservative mixed-signal operating point: 10 M evaluations/s
    /// (100 ns read cycles, well within the cited GS/s-class converters).
    #[must_use]
    pub fn default_mixed_signal() -> Self {
        Self {
            evaluations_per_second: 1e7,
        }
    }

    /// Create a throughput assumption.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive and finite.
    #[must_use]
    pub fn new(evaluations_per_second: f64) -> Self {
        assert!(
            evaluations_per_second > 0.0 && evaluations_per_second.is_finite(),
            "evaluation rate must be positive and finite"
        );
        Self {
            evaluations_per_second,
        }
    }
}

impl Default for Throughput {
    fn default() -> Self {
        Self::default_mixed_signal()
    }
}

/// An efficiency estimate for one architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Efficiency {
    /// Multiply-accumulates per network evaluation.
    pub ops_per_evaluation: f64,
    /// Sustained operation rate in GOPS.
    pub gops: f64,
    /// Power draw in watts.
    pub watts: f64,
    /// The headline figure: GOPS per watt.
    pub gops_per_watt: f64,
}

impl fmt::Display for Efficiency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} GOPS at {:.3} W → {:.0} GOPS/W",
            self.gops, self.watts, self.gops_per_watt
        )
    }
}

/// MACs per evaluation of an `I×H×O` network (two crossbar layers).
fn mac_count(inputs: usize, hidden: usize, outputs: usize) -> f64 {
    ((inputs * hidden) + (hidden * outputs)) as f64
}

/// One chip's physical cost sheet, decomposed for serving-time energy
/// accounting: what the design costs to *have* (area), to *keep powered*
/// (static power) and to *use* (dynamic energy per evaluation).
///
/// The split is by component class of the Eq (6)/(7) breakdowns:
/// converter, peripheral and comparator bias burns for the whole wall
/// window whether or not a request is in flight (**static**), while the
/// RRAM crossbar's read current only flows during an evaluation pulse
/// (**dynamic**, charged per inference as `P_rram / rate`). By
/// construction `static + dynamic × rate` equals the Eq (6)/(7) power at
/// the rated throughput — the sheet is a re-labelling of the calibrated
/// physics, never a new model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSheet {
    /// Die area, µm² (Eq (6)/(7) total).
    pub area_um2: f64,
    /// Static (always-on) power, µW: every non-RRAM component.
    pub static_power_uw: f64,
    /// Dynamic energy of one network evaluation, joules: the RRAM read
    /// power prorated over the rated evaluation rate.
    pub dynamic_j_per_evaluation: f64,
    /// Multiply-accumulates per evaluation.
    pub ops_per_evaluation: f64,
}

impl fmt::Display for CostSheet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} µm², {:.1} µW static, {:.3e} J/eval, {:.0} ops/eval",
            self.area_um2,
            self.static_power_uw,
            self.dynamic_j_per_evaluation,
            self.ops_per_evaluation
        )
    }
}

impl CostModel {
    /// Efficiency of the traditional AD/DA architecture at the given
    /// throughput.
    #[must_use]
    pub fn efficiency_adda(&self, t: &AddaTopology, throughput: &Throughput) -> Efficiency {
        let ops = mac_count(t.inputs, t.hidden, t.outputs);
        let watts = self.power_adda(t) * 1e-6; // µW → W
        let gops = ops * throughput.evaluations_per_second / 1e9;
        Efficiency {
            ops_per_evaluation: ops,
            gops,
            watts,
            gops_per_watt: gops / watts,
        }
    }

    /// Efficiency of the merged-interface architecture at the given
    /// throughput. MEI performs its MACs over the *bit-level* ports, so the
    /// op count uses the expanded layer widths.
    #[must_use]
    pub fn efficiency_mei(&self, t: &MeiTopology, throughput: &Throughput) -> Efficiency {
        let ops = mac_count(t.input_ports(), t.hidden, t.output_ports());
        let watts = self.power_mei(t) * 1e-6;
        let gops = ops * throughput.evaluations_per_second / 1e9;
        Efficiency {
            ops_per_evaluation: ops,
            gops,
            watts,
            gops_per_watt: gops / watts,
        }
    }

    /// Cost sheet of the traditional AD/DA architecture at the given
    /// throughput (see [`CostSheet`] for the static/dynamic split).
    #[must_use]
    pub fn sheet_adda(&self, t: &AddaTopology, throughput: &Throughput) -> CostSheet {
        let power = self.power_breakdown_adda(t);
        CostSheet {
            area_um2: self.area_adda(t),
            static_power_uw: power.total() - power.rram,
            dynamic_j_per_evaluation: power.rram * 1e-6 / throughput.evaluations_per_second,
            ops_per_evaluation: mac_count(t.inputs, t.hidden, t.outputs),
        }
    }

    /// Cost sheet of the merged-interface architecture at the given
    /// throughput.
    #[must_use]
    pub fn sheet_mei(&self, t: &MeiTopology, throughput: &Throughput) -> CostSheet {
        let power = self.power_breakdown_mei(t);
        CostSheet {
            area_um2: self.area_mei(t),
            static_power_uw: power.total() - power.rram,
            dynamic_j_per_evaluation: power.rram * 1e-6 / throughput.evaluations_per_second,
            ops_per_evaluation: mac_count(t.input_ports(), t.hidden, t.output_ports()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_count_matches_topology() {
        assert_eq!(mac_count(2, 8, 2), 32.0);
        assert_eq!(mac_count(16, 32, 16), 1024.0);
    }

    #[test]
    fn adda_efficiency_is_converter_limited() {
        // The AD/DA architecture burns most of its power in converters, so
        // its GOPS/W is far below the crossbar's intrinsic capability.
        let m = CostModel::dac2015();
        let t = AddaTopology::new(2, 8, 2, 8);
        let e = m.efficiency_adda(&t, &Throughput::default());
        assert!(e.gops > 0.0 && e.watts > 0.0);
        assert!(e.gops_per_watt.is_finite());
    }

    #[test]
    fn mei_efficiency_beats_adda_per_watt() {
        // MEI does *more* raw ops (bit-level ports) at a fraction of the
        // power: its GOPS/W must exceed the AD/DA design's substantially.
        let m = CostModel::dac2015();
        let adda = AddaTopology::new(2, 8, 2, 8);
        let mei = MeiTopology::new(2, 8, 32, 2, 8);
        let th = Throughput::default();
        let ea = m.efficiency_adda(&adda, &th);
        let em = m.efficiency_mei(&mei, &th);
        assert!(
            em.gops_per_watt > 10.0 * ea.gops_per_watt,
            "MEI {:.0} GOPS/W vs AD/DA {:.0} GOPS/W",
            em.gops_per_watt,
            ea.gops_per_watt
        );
    }

    #[test]
    fn efficiency_scales_linearly_with_throughput() {
        let m = CostModel::dac2015();
        let t = AddaTopology::new(2, 8, 2, 8);
        let slow = m.efficiency_adda(&t, &Throughput::new(1e6));
        let fast = m.efficiency_adda(&t, &Throughput::new(1e7));
        assert!((fast.gops / slow.gops - 10.0).abs() < 1e-9);
        // Power is static in this model; GOPS/W scales with rate.
        assert!((fast.gops_per_watt / slow.gops_per_watt - 10.0).abs() < 1e-9);
    }

    /// The sheet invariant: static + dynamic × rate reproduces the
    /// Eq (6)/(7) power exactly — the accounting decomposition can never
    /// drift from the calibrated model it re-labels.
    #[test]
    fn sheet_static_plus_dynamic_equals_eq_power() {
        let m = CostModel::dac2015();
        let th = Throughput::new(2.5e6);
        let adda = AddaTopology::new(64, 16, 64, 8);
        let mei = MeiTopology::new(64, 6, 64, 64, 7);
        let sa = m.sheet_adda(&adda, &th);
        let sm = m.sheet_mei(&mei, &th);
        let recon_a =
            sa.static_power_uw + sa.dynamic_j_per_evaluation * th.evaluations_per_second * 1e6;
        let recon_m =
            sm.static_power_uw + sm.dynamic_j_per_evaluation * th.evaluations_per_second * 1e6;
        assert!((recon_a - m.power_adda(&adda)).abs() < 1e-9 * m.power_adda(&adda));
        assert!((recon_m - m.power_mei(&mei)).abs() < 1e-9 * m.power_mei(&mei));
        assert_eq!(sa.area_um2.to_bits(), m.area_adda(&adda).to_bits());
        assert_eq!(sm.area_um2.to_bits(), m.area_mei(&mei).to_bits());
        // Ops match the efficiency estimator's count.
        assert_eq!(
            sm.ops_per_evaluation,
            m.efficiency_mei(&mei, &th).ops_per_evaluation
        );
        // MEI's static share is small (no converters); AD/DA's dominates.
        assert!(sa.static_power_uw / m.power_adda(&adda) > 0.9);
        assert!(sm.dynamic_j_per_evaluation > 0.0);
        assert!(sm.to_string().contains("J/eval"));
    }

    #[test]
    #[should_panic(expected = "evaluation rate")]
    fn invalid_throughput_rejected() {
        let _ = Throughput::new(0.0);
    }

    #[test]
    fn display_has_units() {
        let m = CostModel::dac2015();
        let e = m.efficiency_adda(&AddaTopology::new(2, 8, 2, 8), &Throughput::default());
        assert!(e.to_string().contains("GOPS/W"));
    }
}
