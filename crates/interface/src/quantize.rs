//! Fixed-point bit codec: the data format of the merged interface.
//!
//! A B-bit converter represents an analog value `x ∈ [0, 1)` as the unsigned
//! fixed-point fraction `k / 2^B`, `k = ⌊x·2^B + ½⌋` clamped to `2^B − 1`.
//! Bit 0 of the encoded array is the **most significant bit** (weight
//! `2^-1`); the paper's LSB of an 8-bit array accordingly "accounts for a
//! value of 2^-8" (§4.3).
//!
//! MEI replaces each analog port with a *group* of `B` binary ports carrying
//! exactly these bits; [`InterfaceSpec`] describes such a grouped interface,
//! including pruned variants where only the most significant `bits` of each
//! group survive (Table 1's `(D·B)` notation).

use std::fmt;

/// Maximum supported bit width of one group (limited by exact `f64`
/// integer arithmetic; far beyond any practical AD/DA).
pub const MAX_BITS: usize = 32;

/// How a group's integer code is mapped to wire levels.
///
/// The paper uses plain binary. Gray coding is provided as an extension
/// experiment (`ablation_encoding`): adjacent codes differ in exactly one
/// bit, removing the "Hamming cliffs" of binary fixed point (e.g. binary
/// `0.5 − ε → 0111…` vs `0.5 → 1000…`), which are where a merged-interface
/// network pays most for small analog uncertainties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BitCoding {
    /// Plain MSB-first binary fixed point (the paper's format).
    #[default]
    Binary,
    /// Reflected binary Gray code over the same `2^B` levels.
    Gray,
}

impl fmt::Display for BitCoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitCoding::Binary => write!(f, "binary"),
            BitCoding::Gray => write!(f, "gray"),
        }
    }
}

/// Encode `x ∈ [0, 1)` into `bits` binary digits, MSB first.
///
/// Values outside `[0, 1)` saturate. Each returned element is exactly `0.0`
/// or `1.0`, ready to drive a binary crossbar port.
///
/// ```
/// use interface::encode_fraction;
/// assert_eq!(encode_fraction(0.5, 3), vec![1.0, 0.0, 0.0]);
/// assert_eq!(encode_fraction(0.875, 3), vec![1.0, 1.0, 1.0]);
/// assert_eq!(encode_fraction(0.0, 3), vec![0.0, 0.0, 0.0]);
/// ```
///
/// # Panics
///
/// Panics if `bits` is zero or exceeds [`MAX_BITS`].
#[must_use]
pub fn encode_fraction(x: f64, bits: usize) -> Vec<f64> {
    encode_fraction_coded(x, bits, BitCoding::Binary)
}

/// [`encode_fraction`] with an explicit wire coding.
///
/// # Panics
///
/// Panics if `bits` is zero or exceeds [`MAX_BITS`].
#[must_use]
pub fn encode_fraction_coded(x: f64, bits: usize, coding: BitCoding) -> Vec<f64> {
    assert!(
        bits > 0 && bits <= MAX_BITS,
        "bit width must be in 1..={MAX_BITS}, got {bits}"
    );
    let levels = (1u64 << bits) as f64;
    // NaN reads as zero drive; ±∞ saturate like any other out-of-range value.
    let x = if x.is_nan() { 0.0 } else { x.clamp(0.0, 1.0) };
    let mut k = ((x * levels).round() as u64).min((1u64 << bits) - 1);
    if coding == BitCoding::Gray {
        k ^= k >> 1;
    }
    (0..bits)
        .map(|b| {
            let bit = (k >> (bits - 1 - b)) & 1;
            bit as f64
        })
        .collect()
}

/// Decode a bit array (MSB first) back to the fraction `k / 2^B`.
///
/// Any value `≥ 0.5` counts as a 1 — this is exactly the comparator
/// thresholding MEI applies to its analog output ports.
///
/// ```
/// use interface::decode_bits;
/// assert_eq!(decode_bits(&[1.0, 0.0, 0.0]), 0.5);
/// // Analog levels are thresholded:
/// assert_eq!(decode_bits(&[0.9, 0.2, 0.6]), 0.625);
/// ```
///
/// # Panics
///
/// Panics if the slice is empty or longer than [`MAX_BITS`].
#[must_use]
pub fn decode_bits(bits: &[f64]) -> f64 {
    decode_bits_coded(bits, BitCoding::Binary)
}

/// [`decode_bits`] with an explicit wire coding.
///
/// # Panics
///
/// Panics if the slice is empty or longer than [`MAX_BITS`].
#[must_use]
pub fn decode_bits_coded(bits: &[f64], coding: BitCoding) -> f64 {
    assert!(
        !bits.is_empty() && bits.len() <= MAX_BITS,
        "bit array length must be in 1..={MAX_BITS}, got {}",
        bits.len()
    );
    let mut k = 0u64;
    for &b in bits {
        k = (k << 1) | u64::from(b >= 0.5);
    }
    if coding == BitCoding::Gray {
        // Inverse Gray: prefix-xor from the MSB.
        let mut mask = k >> 1;
        while mask != 0 {
            k ^= mask;
            mask >>= 1;
        }
    }
    k as f64 / (1u64 << bits.len()) as f64
}

/// Round-trip a value through the B-bit codec: the value a B-bit AD/DA pair
/// would deliver.
///
/// ```
/// use interface::quantize_fraction;
/// let q = quantize_fraction(0.3, 8);
/// assert!((q - 0.3).abs() <= 1.0 / 512.0); // ≤ half an LSB
/// ```
#[must_use]
pub fn quantize_fraction(x: f64, bits: usize) -> f64 {
    decode_bits(&encode_fraction(x, bits))
}

/// A grouped binary interface: `groups` analog dimensions, each carried by
/// its `bits` most significant bits — the `(D·B)` notation of Table 1.
///
/// ```
/// use interface::InterfaceSpec;
///
/// let spec = InterfaceSpec::new(2, 8);
/// assert_eq!(spec.ports(), 16);
/// assert_eq!(format!("{spec}"), "(2·8)");
/// let bits = spec.encode(&[0.5, 0.25]);
/// assert_eq!(bits.len(), 16);
/// assert_eq!(spec.decode(&bits), vec![0.5, 0.25]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InterfaceSpec {
    groups: usize,
    bits: usize,
    coding: BitCoding,
}

impl InterfaceSpec {
    /// An interface of `groups` analog dimensions at `bits` bits each,
    /// binary-coded (the paper's format).
    ///
    /// # Panics
    ///
    /// Panics if `groups` is zero or `bits` is not in `1..=MAX_BITS`.
    #[must_use]
    pub fn new(groups: usize, bits: usize) -> Self {
        assert!(groups > 0, "an interface needs at least one group");
        assert!(
            bits > 0 && bits <= MAX_BITS,
            "bit width must be in 1..={MAX_BITS}, got {bits}"
        );
        Self {
            groups,
            bits,
            coding: BitCoding::Binary,
        }
    }

    /// The same interface with a different wire coding (builder style).
    #[must_use]
    pub fn with_coding(mut self, coding: BitCoding) -> Self {
        self.coding = coding;
        self
    }

    /// The wire coding of every group.
    #[must_use]
    pub fn coding(&self) -> BitCoding {
        self.coding
    }

    /// Number of analog dimensions.
    #[must_use]
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Bits carried per group.
    #[must_use]
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Total binary port count (`groups × bits`).
    #[must_use]
    pub fn ports(&self) -> usize {
        self.groups * self.bits
    }

    /// The same interface with `pruned` LSBs removed from every group — the
    /// pruning move of Algorithm 2, line 22.
    ///
    /// # Panics
    ///
    /// Panics if pruning would remove every bit.
    #[must_use]
    pub fn prune_lsbs(&self, pruned: usize) -> Self {
        assert!(
            pruned < self.bits,
            "cannot prune all {} bits of a group",
            self.bits
        );
        Self {
            groups: self.groups,
            bits: self.bits - pruned,
            coding: self.coding,
        }
    }

    /// Encode one analog vector (`groups` values in `[0, 1)`) into
    /// `ports()` binary values, group-major and MSB-first within each group.
    ///
    /// When this spec is a pruned view of a wider `full_bits` interface, the
    /// kept bits are still the most significant ones of the *full-width*
    /// encoding; encoding directly at the pruned width is identical because
    /// truncation of MSB-first fixed point is prefix-stable — see
    /// [`encode_fraction`].
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != groups()`.
    #[must_use]
    pub fn encode(&self, values: &[f64]) -> Vec<f64> {
        assert_eq!(values.len(), self.groups, "one value per group");
        let mut out = Vec::with_capacity(self.ports());
        for &v in values {
            out.extend(encode_fraction_coded(v, self.bits, self.coding));
        }
        out
    }

    /// Decode `ports()` binary (or analog, thresholded) values back into
    /// `groups` fractions.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != ports()`.
    #[must_use]
    pub fn decode(&self, bits: &[f64]) -> Vec<f64> {
        assert_eq!(bits.len(), self.ports(), "bit vector length");
        bits.chunks(self.bits)
            .map(|c| decode_bits_coded(c, self.coding))
            .collect()
    }

    /// Worst-case quantization error of one group: half an LSB plus the
    /// truncation tail, i.e. `2^-(bits)` bounds the round-trip error.
    #[must_use]
    pub fn quantization_error_bound(&self) -> f64 {
        0.5f64.powi(self.bits as i32)
    }
}

impl fmt::Display for InterfaceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}·{})", self.groups, self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_known_patterns() {
        assert_eq!(encode_fraction(0.0, 4), vec![0.0; 4]);
        assert_eq!(encode_fraction(0.5, 1), vec![1.0]);
        assert_eq!(encode_fraction(0.75, 2), vec![1.0, 1.0]);
        // 0.8125 = 13/16 → 1101
        assert_eq!(encode_fraction(0.8125, 4), vec![1.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn encode_saturates_out_of_range() {
        assert_eq!(encode_fraction(1.5, 3), vec![1.0, 1.0, 1.0]);
        assert_eq!(encode_fraction(-0.5, 3), vec![0.0, 0.0, 0.0]);
        assert_eq!(encode_fraction(f64::NAN, 3), vec![0.0, 0.0, 0.0]);
        // 1.0 saturates to the largest code, not wraparound.
        assert_eq!(encode_fraction(1.0, 2), vec![1.0, 1.0]);
    }

    #[test]
    fn decode_inverts_encode() {
        for bits in [1, 2, 4, 8, 12] {
            for i in 0..(1u64 << bits.min(8)) {
                let x = i as f64 / (1u64 << bits) as f64;
                let enc = encode_fraction(x, bits);
                assert_eq!(decode_bits(&enc), x, "bits={bits} x={x}");
            }
        }
    }

    #[test]
    fn quantization_error_within_one_lsb() {
        // Half an LSB in the interior; saturation at the top code (values in
        // [1 − LSB/2, 1)) costs up to a full LSB.
        for &x in &[0.001, 0.3, 0.49999, 0.7] {
            let q = quantize_fraction(x, 8);
            assert!((q - x).abs() <= 0.5 / 256.0 + 1e-12, "x={x} q={q}");
        }
        let q = quantize_fraction(0.9999, 8);
        assert!((q - 0.9999).abs() <= 1.0 / 256.0, "q={q}");
    }

    #[test]
    fn decode_thresholds_analog_levels() {
        assert_eq!(decode_bits(&[0.51, 0.49]), 0.5);
        assert_eq!(decode_bits(&[0.5]), 0.5);
        assert_eq!(decode_bits(&[0.499_999]), 0.0);
    }

    #[test]
    #[should_panic(expected = "bit width")]
    fn encode_rejects_zero_bits() {
        let _ = encode_fraction(0.5, 0);
    }

    #[test]
    #[should_panic(expected = "bit array length")]
    fn decode_rejects_empty() {
        let _ = decode_bits(&[]);
    }

    #[test]
    fn spec_roundtrip_multiple_groups() {
        let spec = InterfaceSpec::new(3, 4);
        let values = [0.25, 0.5, 0.9375];
        let bits = spec.encode(&values);
        assert_eq!(bits.len(), 12);
        let back = spec.decode(&bits);
        for (a, b) in back.iter().zip(&values) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn pruning_reduces_ports_and_is_prefix_stable() {
        let full = InterfaceSpec::new(2, 8);
        let pruned = full.prune_lsbs(3);
        assert_eq!(pruned.bits(), 5);
        assert_eq!(pruned.ports(), 10);
        // The pruned encoding equals the MSB prefix of the full encoding.
        let x = [0.7123, 0.2917];
        let full_bits = full.encode(&x);
        let pruned_bits = pruned.encode(&x);
        for g in 0..2 {
            // Rounding at the pruned width may differ from truncation by one
            // code; compare against truncation of the full encoding.
            let prefix = &full_bits[g * 8..g * 8 + 5];
            let trunc = decode_bits(prefix);
            let direct = decode_bits(&pruned_bits[g * 5..(g + 1) * 5]);
            assert!((trunc - direct).abs() <= 1.0 / 32.0 + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "cannot prune all")]
    fn pruning_all_bits_rejected() {
        let _ = InterfaceSpec::new(1, 4).prune_lsbs(4);
    }

    #[test]
    fn error_bound_halves_per_bit() {
        assert_eq!(InterfaceSpec::new(1, 1).quantization_error_bound(), 0.5);
        assert_eq!(
            InterfaceSpec::new(1, 8).quantization_error_bound(),
            1.0 / 256.0
        );
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(format!("{}", InterfaceSpec::new(64, 6)), "(64·6)");
    }

    #[test]
    fn gray_code_roundtrips_every_4bit_level() {
        for k in 0..16u64 {
            let x = k as f64 / 16.0;
            let enc = encode_fraction_coded(x, 4, BitCoding::Gray);
            assert_eq!(decode_bits_coded(&enc, BitCoding::Gray), x, "level {k}");
        }
    }

    #[test]
    fn gray_neighbours_differ_in_one_bit() {
        for k in 0..15u64 {
            let a = encode_fraction_coded(k as f64 / 16.0, 4, BitCoding::Gray);
            let b = encode_fraction_coded((k + 1) as f64 / 16.0, 4, BitCoding::Gray);
            let flips = a.iter().zip(&b).filter(|(x, y)| x != y).count();
            assert_eq!(flips, 1, "levels {k} and {}", k + 1);
        }
        // Binary, by contrast, has a 4-bit cliff at the 7→8 transition.
        let a = encode_fraction_coded(7.0 / 16.0, 4, BitCoding::Binary);
        let b = encode_fraction_coded(8.0 / 16.0, 4, BitCoding::Binary);
        assert_eq!(a.iter().zip(&b).filter(|(x, y)| x != y).count(), 4);
    }

    #[test]
    fn gray_spec_roundtrips_and_prunes() {
        let spec = InterfaceSpec::new(2, 6).with_coding(BitCoding::Gray);
        assert_eq!(spec.coding(), BitCoding::Gray);
        let values = [0.25, 0.828_125]; // 53/64 — exactly representable
        let decoded = spec.decode(&spec.encode(&values));
        for (a, b) in decoded.iter().zip(&values) {
            assert!((a - b).abs() < 1e-12);
        }
        // Pruning keeps the coding: the first k gray bits depend only on
        // the value's top k binary bits, so truncation stays meaningful.
        let one = InterfaceSpec::new(1, 6).with_coding(BitCoding::Gray);
        let pruned = one.prune_lsbs(2);
        assert_eq!(pruned.coding(), BitCoding::Gray);
        let full = one.encode(&[0.7]);
        let short_direct = pruned.decode(&pruned.encode(&[0.7]));
        let short_trunc = decode_bits_coded(&full[..4], BitCoding::Gray);
        assert!((short_direct[0] - short_trunc).abs() <= 1.0 / 16.0 + 1e-12);
    }

    #[test]
    fn coding_display() {
        assert_eq!(BitCoding::Binary.to_string(), "binary");
        assert_eq!(BitCoding::Gray.to_string(), "gray");
    }
}
