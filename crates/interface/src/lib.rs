//! # `interface` — the analog/digital boundary of an RCS
//!
//! Models everything the paper's co-optimization bargains over at the
//! interface between the digital system and the RRAM crossbar:
//!
//! * [`quantize`] — the fixed-point bit codec. A B-bit AD/DA quantizes an
//!   analog value in `[0, 1)` to `B` bits; MEI exposes those same bits as
//!   individual crossbar ports ([`quantize::InterfaceSpec`] captures the
//!   `(D·B)` groups notation of Table 1).
//! * [`cost`] — paper Eq (6)/(7)/(9): area and power estimation of the
//!   traditional AD/DA architecture and the merged-interface architecture,
//!   the per-component breakdown of Fig 2, and the maximum SAAB ensemble
//!   size `K_max`.
//! * [`calibrate`] — fits the relative cell costs to a set of target savings
//!   by seeded random search; the shipped defaults were produced by fitting
//!   the paper's own Table 1 numbers (see [`cost::InterfaceCircuits::dac2015`]).
//!
//! ## Example: why MEI wins
//!
//! ```
//! use interface::cost::{AddaTopology, CostModel, MeiTopology};
//!
//! let model = CostModel::dac2015();
//! let adda = AddaTopology::new(2, 8, 2, 8);          // 2×8×2, 8-bit AD/DA
//! let mei = MeiTopology::new(2, 8, 32, 2, 8);        // (2·8)×32×(2·8)
//! let saved = model.area_saving(&adda, &mei);
//! assert!(saved > 0.5, "MEI saves more than half the area: {saved}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod cost;
pub mod efficiency;
pub mod quantize;

pub use cost::{AddaTopology, CellCost, CostBreakdown, CostModel, InterfaceCircuits, MeiTopology};
pub use efficiency::{CostSheet, Efficiency, Throughput};
pub use quantize::{
    decode_bits, decode_bits_coded, encode_fraction, encode_fraction_coded, quantize_fraction,
    BitCoding, InterfaceSpec, MAX_BITS,
};
