//! Property-based tests for the interface crate, on the in-repo
//! deterministic harness (`prng::prop`), plus exhaustive regression tests
//! pinning the codec's saturation-edge behaviour.

use interface::cost::{AddaTopology, CostModel, MeiTopology};
use interface::{
    decode_bits, decode_bits_coded, encode_fraction, encode_fraction_coded, quantize_fraction,
    BitCoding, InterfaceSpec, MAX_BITS,
};
use prng::prop_check;

/// encode→decode round-trips within one LSB for any in-range value
/// (half an LSB in the interior, a full LSB at the saturated top code).
#[test]
fn codec_roundtrip_error_bounded() {
    prop_check!(|g| {
        let x = g.f64_in(0.0, 1.0);
        let bits = g.usize_in(1, 16);
        let q = quantize_fraction(x, bits);
        let lsb = 0.5f64.powi(bits as i32);
        assert!((q - x).abs() <= lsb + 1e-12, "x={x} q={q} bits={bits}");
    });
}

/// Every encoded bit is exactly 0.0 or 1.0.
#[test]
fn encoded_bits_are_binary() {
    prop_check!(|g| {
        let x = g.f64_in(-1.0, 2.0);
        let bits = g.usize_in(1, 16);
        for b in encode_fraction(x, bits) {
            assert!(b == 0.0 || b == 1.0);
        }
    });
}

/// Quantization is idempotent: quantizing a quantized value is identity.
#[test]
fn quantize_idempotent() {
    prop_check!(|g| {
        let x = g.f64_in(0.0, 1.0);
        let bits = g.usize_in(1, 16);
        let q = quantize_fraction(x, bits);
        assert_eq!(quantize_fraction(q, bits), q);
    });
}

/// Encoding is monotone: larger values never decode below smaller ones.
#[test]
fn codec_is_monotone() {
    prop_check!(|g| {
        let a = g.f64_in(0.0, 1.0);
        let b = g.f64_in(0.0, 1.0);
        let bits = g.usize_in(1, 12);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(quantize_fraction(lo, bits) <= quantize_fraction(hi, bits));
    });
}

/// Grouped encode/decode round-trips exactly on representable values.
#[test]
fn spec_roundtrip() {
    prop_check!(|g| {
        let groups = g.usize_in(1, 6);
        let bits = g.usize_in(1, 10);
        let seed = g.u16_any();
        let spec = InterfaceSpec::new(groups, bits);
        let denom = (1u64 << bits) as f64;
        let values: Vec<f64> = (0..groups)
            .map(|grp| ((u64::from(seed) + grp as u64 * 7) % (1u64 << bits)) as f64 / denom)
            .collect();
        let decoded = spec.decode(&spec.encode(&values));
        for (a, b) in decoded.iter().zip(&values) {
            assert!((a - b).abs() < 1e-12);
        }
    });
}

/// MEI cost strictly increases with hidden size and with bit width; the
/// AD/DA cost strictly increases with every dimension.
#[test]
fn costs_are_monotone() {
    prop_check!(|g| {
        let i = g.usize_in(1, 30);
        let h = g.usize_in(1, 60);
        let o = g.usize_in(1, 30);
        let bits = g.usize_in(2, 12);
        let m = CostModel::dac2015();
        let adda = AddaTopology::new(i, h, o, bits);
        let bigger = AddaTopology::new(i + 1, h + 1, o + 1, bits);
        assert!(m.area_adda(&bigger) > m.area_adda(&adda));
        assert!(m.power_adda(&bigger) > m.power_adda(&adda));

        let mei = MeiTopology::new(i, bits, h, o, bits);
        let wider = MeiTopology::new(i, bits, h + 1, o, bits);
        let deeper_bits = MeiTopology::new(i, bits + 1, h, o, bits + 1);
        assert!(m.area_mei(&wider) > m.area_mei(&mei));
        assert!(m.area_mei(&deeper_bits) > m.area_mei(&mei));
    });
}

/// K_max is consistent with the budget definition: K_max learners fit,
/// K_max + 1 exceed at least one of the two budgets.
#[test]
fn k_max_is_tight() {
    prop_check!(|g| {
        let i = g.usize_in(1, 20);
        let h = g.usize_in(4, 40);
        let o = g.usize_in(1, 20);
        let m = CostModel::dac2015();
        let adda = AddaTopology::new(i, h, o, 8);
        let mei = MeiTopology::new(i, 8, h * 2, o, 8);
        let k = m.k_max(&adda, &mei);
        let a_org = m.area_adda(&adda);
        let p_org = m.power_adda(&adda);
        let a_mei = m.area_mei(&mei);
        let p_mei = m.power_mei(&mei);
        assert!(k as f64 * a_mei <= a_org + 1e-9);
        assert!(k as f64 * p_mei <= p_org + 1e-9);
        let k1 = (k + 1) as f64;
        assert!(k1 * a_mei > a_org || k1 * p_mei > p_org);
    });
}

/// Decoding is invariant to how far analog levels sit from the 0.5
/// threshold.
#[test]
fn decode_threshold_invariance() {
    prop_check!(|g| {
        let len = g.usize_in(1, 12);
        let pattern = g.vec_bool(len);
        let noise = g.f64_in(0.0, 0.49);
        let crisp: Vec<f64> = pattern.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let fuzzy: Vec<f64> = pattern
            .iter()
            .map(|&b| if b { 1.0 - noise } else { noise })
            .collect();
        assert_eq!(decode_bits(&crisp), decode_bits(&fuzzy));
    });
}

// ---------------------------------------------------------------------------
// Saturation-edge regression tests: pin the `k = ⌊x·2^B + ½⌋` clamp at the
// exact boundaries, for both wire codings and every supported bit width.
// ---------------------------------------------------------------------------

const CODINGS: [BitCoding; 2] = [BitCoding::Binary, BitCoding::Gray];

/// `x = 0` encodes to the all-zero code and round-trips to exactly 0.
#[test]
fn boundary_zero_is_exact_at_every_width() {
    for coding in CODINGS {
        for bits in 1..=MAX_BITS {
            let enc = encode_fraction_coded(0.0, bits, coding);
            assert_eq!(enc, vec![0.0; bits], "coding={coding} bits={bits}");
            assert_eq!(decode_bits_coded(&enc, coding), 0.0);
        }
    }
}

/// `x = 1 − 2^-(B+1)` sits exactly half an LSB below 1: rounding hits
/// `2^B` and the clamp must saturate it to the top code `2^B − 1`, which
/// decodes to `1 − 2^-B` — an exactly one-LSB round-trip error, never a
/// wraparound to 0.
#[test]
fn boundary_half_lsb_below_one_saturates_to_top_code() {
    for coding in CODINGS {
        // Beyond 52 bits the f64 sum 1 − 2^-(B+1) rounds to 1.0 itself, so
        // every representable width is covered by MAX_BITS = 32.
        for bits in 1..=MAX_BITS {
            let x = 1.0 - 0.5f64.powi(bits as i32 + 1);
            let enc = encode_fraction_coded(x, bits, coding);
            let decoded = decode_bits_coded(&enc, coding);
            let top = ((1u64 << bits) - 1) as f64 / (1u64 << bits) as f64;
            assert_eq!(decoded, top, "coding={coding} bits={bits} x={x}");
            let lsb = 0.5f64.powi(bits as i32);
            assert!((decoded - x).abs() <= lsb, "round-trip error above one LSB");
        }
    }
}

/// `x ≥ 1` (including +∞) saturates to the top code instead of wrapping.
#[test]
fn boundary_at_and_above_one_saturates() {
    for coding in CODINGS {
        for bits in [1, 2, 8, MAX_BITS] {
            let top = ((1u64 << bits) - 1) as f64 / (1u64 << bits) as f64;
            for x in [1.0, 1.0 + 1e-12, 2.0, 1e9, f64::INFINITY] {
                let enc = encode_fraction_coded(x, bits, coding);
                assert_eq!(
                    decode_bits_coded(&enc, coding),
                    top,
                    "coding={coding} bits={bits} x={x}"
                );
            }
        }
    }
}

/// Negative values and NaN clamp to the all-zero code.
#[test]
fn boundary_below_zero_and_nan_clamp_to_zero() {
    for coding in CODINGS {
        for bits in [1, 8, MAX_BITS] {
            for x in [-1e-12, -1.0, f64::NEG_INFINITY, f64::NAN] {
                let enc = encode_fraction_coded(x, bits, coding);
                assert_eq!(
                    decode_bits_coded(&enc, coding),
                    0.0,
                    "coding={coding} bits={bits}"
                );
            }
        }
    }
}

/// The full edge suite at `bits = MAX_BITS`: the widest width exercises
/// the `u64` shifts (`1 << 32`) where an off-by-one in the clamp would
/// overflow or wrap.
#[test]
fn boundary_max_bits_roundtrip_is_exact_on_representable_values() {
    let bits = MAX_BITS;
    let levels = 1u64 << bits;
    for coding in CODINGS {
        for k in [0u64, 1, levels / 2 - 1, levels / 2, levels - 2, levels - 1] {
            let x = k as f64 / levels as f64;
            let enc = encode_fraction_coded(x, bits, coding);
            assert_eq!(
                decode_bits_coded(&enc, coding),
                x,
                "coding={coding} k={k} must round-trip exactly"
            );
        }
    }
}

/// Half-LSB interior rounding: values exactly on the rounding midpoint go
/// up (ties-away semantics of `f64::round`), pinning `k = ⌊x·2^B + ½⌋`.
#[test]
fn boundary_interior_midpoints_round_up() {
    for bits in [2usize, 4, 8] {
        let levels = (1u64 << bits) as f64;
        for k in 0..(1u64 << bits) - 1 {
            let midpoint = (k as f64 + 0.5) / levels;
            let q = quantize_fraction(midpoint, bits);
            assert_eq!(q, (k + 1) as f64 / levels, "bits={bits} k={k}");
        }
    }
}
