//! Property-based tests for the interface crate.

use interface::cost::{AddaTopology, CostModel, MeiTopology};
use interface::{decode_bits, encode_fraction, quantize_fraction, InterfaceSpec};
use proptest::prelude::*;

proptest! {
    /// encode→decode round-trips within one LSB for any in-range value
    /// (half an LSB in the interior, a full LSB at the saturated top code).
    #[test]
    fn codec_roundtrip_error_bounded(x in 0.0f64..1.0, bits in 1usize..16) {
        let q = quantize_fraction(x, bits);
        let lsb = 0.5f64.powi(bits as i32);
        prop_assert!((q - x).abs() <= lsb + 1e-12, "x={x} q={q} bits={bits}");
    }

    /// Every encoded bit is exactly 0.0 or 1.0.
    #[test]
    fn encoded_bits_are_binary(x in -1.0f64..2.0, bits in 1usize..16) {
        for b in encode_fraction(x, bits) {
            prop_assert!(b == 0.0 || b == 1.0);
        }
    }

    /// Quantization is idempotent: quantizing a quantized value is identity.
    #[test]
    fn quantize_idempotent(x in 0.0f64..1.0, bits in 1usize..16) {
        let q = quantize_fraction(x, bits);
        prop_assert_eq!(quantize_fraction(q, bits), q);
    }

    /// Encoding is monotone: larger values never decode below smaller ones.
    #[test]
    fn codec_is_monotone(a in 0.0f64..1.0, b in 0.0f64..1.0, bits in 1usize..12) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(quantize_fraction(lo, bits) <= quantize_fraction(hi, bits));
    }

    /// Grouped encode/decode round-trips exactly on representable values.
    #[test]
    fn spec_roundtrip(groups in 1usize..6, bits in 1usize..10, seed in any::<u16>()) {
        let spec = InterfaceSpec::new(groups, bits);
        let denom = (1u64 << bits) as f64;
        let values: Vec<f64> = (0..groups)
            .map(|g| ((seed as u64 + g as u64 * 7) % (1u64 << bits)) as f64 / denom)
            .collect();
        let decoded = spec.decode(&spec.encode(&values));
        for (a, b) in decoded.iter().zip(&values) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// MEI cost strictly increases with hidden size and with bit width; the
    /// AD/DA cost strictly increases with every dimension.
    #[test]
    fn costs_are_monotone(
        i in 1usize..30, h in 1usize..60, o in 1usize..30, bits in 2usize..12,
    ) {
        let m = CostModel::dac2015();
        let adda = AddaTopology::new(i, h, o, bits);
        let bigger = AddaTopology::new(i + 1, h + 1, o + 1, bits);
        prop_assert!(m.area_adda(&bigger) > m.area_adda(&adda));
        prop_assert!(m.power_adda(&bigger) > m.power_adda(&adda));

        let mei = MeiTopology::new(i, bits, h, o, bits);
        let wider = MeiTopology::new(i, bits, h + 1, o, bits);
        let deeper_bits = MeiTopology::new(i, bits + 1, h, o, bits + 1);
        prop_assert!(m.area_mei(&wider) > m.area_mei(&mei));
        prop_assert!(m.area_mei(&deeper_bits) > m.area_mei(&mei));
    }

    /// K_max is consistent with the budget definition: K_max learners fit,
    /// K_max + 1 exceed at least one of the two budgets.
    #[test]
    fn k_max_is_tight(
        i in 1usize..20, h in 4usize..40, o in 1usize..20,
    ) {
        let m = CostModel::dac2015();
        let adda = AddaTopology::new(i, h, o, 8);
        let mei = MeiTopology::new(i, 8, h * 2, o, 8);
        let k = m.k_max(&adda, &mei);
        let a_org = m.area_adda(&adda);
        let p_org = m.power_adda(&adda);
        let a_mei = m.area_mei(&mei);
        let p_mei = m.power_mei(&mei);
        prop_assert!(k as f64 * a_mei <= a_org + 1e-9);
        prop_assert!(k as f64 * p_mei <= p_org + 1e-9);
        let k1 = (k + 1) as f64;
        prop_assert!(k1 * a_mei > a_org || k1 * p_mei > p_org);
    }

    /// Decoding is invariant to how far analog levels sit from the 0.5
    /// threshold.
    #[test]
    fn decode_threshold_invariance(
        pattern in prop::collection::vec(any::<bool>(), 1..12),
        noise in 0.0f64..0.49,
    ) {
        let crisp: Vec<f64> = pattern.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let fuzzy: Vec<f64> = pattern
            .iter()
            .map(|&b| if b { 1.0 - noise } else { noise })
            .collect();
        prop_assert_eq!(decode_bits(&crisp), decode_bits(&fuzzy));
    }
}
