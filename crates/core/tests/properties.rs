//! Property-based tests for the core MEI/SAAB machinery, on the in-repo
//! deterministic harness (`prng::prop`).
//!
//! Training inside a property loop is expensive, so trained-model
//! invariants run with a reduced case count; purely analytic properties run
//! at the default count.

use crossbar::MappingConfig;
use interface::InterfaceSpec;
use mei::{exponential_bit_weights, AnalogMlp, MeiConfig, MeiRcs};
use neural::{Dataset, MlpBuilder};
use prng::prop_check;
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};
use rram::DeviceParams;

fn expfit_data(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::generate(n, &mut rng, |r| {
        let x: f64 = r.gen();
        (vec![x], vec![(-x * x).exp()])
    })
    .unwrap()
}

/// Bit weights are positive, bounded by 1, and halve monotonically
/// within every group.
#[test]
fn bit_weights_shape() {
    prop_check!(|g| {
        let groups = g.usize_in(1, 8);
        let bits = g.usize_in(1, 12);
        let w = exponential_bit_weights(&InterfaceSpec::new(groups, bits));
        assert_eq!(w.len(), groups * bits);
        for chunk in w.chunks(bits) {
            assert_eq!(chunk[0], 1.0);
            for pair in chunk.windows(2) {
                // The squared (effective) penalty halves per bit.
                let ratio = (pair[0] * pair[0]) / (pair[1] * pair[1]);
                assert!((ratio - 2.0).abs() < 1e-9);
            }
        }
    });
}

/// The analog crossbar realization agrees with the digital forward pass
/// for arbitrary small networks and inputs.
#[test]
fn analog_realization_is_faithful() {
    prop_check!(64, |g| {
        let seed = g.u64_any();
        let hidden = g.usize_in(1, 8);
        let xs = g.vec_f64(0.0, 1.0, 3);
        let net = MlpBuilder::new(&[3, hidden, 2]).seed(seed).build();
        let analog =
            AnalogMlp::from_mlp(&net, DeviceParams::hfox(), &MappingConfig::default()).unwrap();
        let d = net.forward(&xs);
        let a = analog.forward(&xs);
        for (u, v) in d.iter().zip(&a) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    });
}

/// MEI inference always produces analog outputs representable at the
/// output bit width — the decode of a binary pattern.
#[test]
fn mei_outputs_are_representable() {
    prop_check!(4, |g| {
        let seed = u64::from(g.u16_any() % 1000);
        let data = expfit_data(150, seed);
        let mut cfg = MeiConfig::quick_test();
        cfg.train.epochs = 30;
        let rcs = MeiRcs::train(&data, &cfg).unwrap();
        let levels = (1u64 << cfg.out_bits) as f64;
        for x in [0.1, 0.5, 0.9] {
            let y = rcs.infer(&[x]).unwrap()[0];
            let k = y * levels;
            assert!(
                (k - k.round()).abs() < 1e-9,
                "output {y} not {}-bit",
                cfg.out_bits
            );
        }
    });
}

/// Pruning strictly reduces the physical device count and never panics
/// for any legal pruning depth.
#[test]
fn pruning_shrinks_hardware() {
    prop_check!(4, |g| {
        let in_p = g.usize_in(0, 5);
        let out_p = g.usize_in(0, 5);
        let data = expfit_data(120, 7);
        let mut cfg = MeiConfig::quick_test();
        cfg.train.epochs = 20;
        let rcs = MeiRcs::train(&data, &cfg).unwrap();
        let pruned = rcs.pruned(in_p, out_p).unwrap();
        let full_devices = rcs.analog().device_count();
        let pruned_devices = pruned.analog().device_count();
        if in_p + out_p > 0 {
            assert!(pruned_devices < full_devices);
        } else {
            assert_eq!(pruned_devices, full_devices);
        }
        assert_eq!(pruned.input_spec().bits(), 6 - in_p);
        assert_eq!(pruned.output_spec().bits(), 6 - out_p);
    });
}

/// Persistence round-trips arbitrary (untrained) networks deployed via
/// the public constructor: behaviour and metadata are preserved.
#[test]
fn persistence_roundtrips_arbitrary_networks() {
    prop_check!(8, |g| {
        let seed = g.u64_any();
        let hidden = g.usize_in(2, 10);
        let in_bits = g.usize_in(2, 8);
        let out_bits = g.usize_in(2, 8);
        let mlp = MlpBuilder::new(&[2 * in_bits, hidden, out_bits])
            .seed(seed)
            .build();
        let cfg = MeiConfig {
            in_bits,
            out_bits,
            hidden,
            ..MeiConfig::default()
        };
        let rcs = mei::MeiRcs::from_trained(mlp, &cfg, 2, 1).unwrap();
        let back = mei::MeiRcs::from_text(&rcs.to_text()).unwrap();
        for probe in [[0.1, 0.9], [0.5, 0.5], [0.99, 0.01]] {
            assert_eq!(rcs.infer(&probe).unwrap(), back.infer(&probe).unwrap());
        }
        assert_eq!(rcs.topology(), back.topology());
    });
}

/// The public constructor rejects shape mismatches instead of building
/// an inconsistent system.
#[test]
fn from_trained_rejects_bad_shapes() {
    prop_check!(8, |g| {
        let extra = g.usize_in(1, 4);
        let mlp = MlpBuilder::new(&[8 + extra, 4, 8]).seed(1).build();
        let cfg = MeiConfig {
            in_bits: 4,
            out_bits: 4,
            hidden: 4,
            ..MeiConfig::default()
        };
        assert!(mei::MeiRcs::from_trained(mlp, &cfg, 2, 2).is_err());
    });
}
