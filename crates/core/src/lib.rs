//! # `mei` — MErging the Interface, SAAB, and design space exploration
//!
//! The core library of the reproduction of *"Merging the Interface: Power,
//! Area and Accuracy Co-optimization for RRAM Crossbar-based Mixed-Signal
//! Computing System"* (Li, Xia, Gu, Wang, Yang — DAC 2015).
//!
//! An RRAM crossbar-based computing system (RCS) executes a neural network
//! in analog; the AD/DA converters at its boundary dominate area and power.
//! This crate implements the paper's three contributions on top of the
//! `rram`/`crossbar`/`neural`/`interface` substrates:
//!
//! * [`MeiRcs`] — **MEI**: the RCS learns the mapping between the *binary
//!   bit arrays* at the digital interface directly, one crossbar port per
//!   bit, trained with the MSB-weighted loss of Eq (5) and read out by 1-bit
//!   comparators. No AD/DAs at all. [`AddaRcs`] is the traditional
//!   architecture it replaces, and [`DigitalAnn`] the floating-point
//!   baseline.
//! * [`Saab`] — **SAAB**: Serial Array Adaptive Boosting (Algorithm 1), an
//!   AdaBoost variant that relaxes the error comparison to the top `B_C`
//!   bits and injects non-ideal factors while scoring learners.
//! * [`dse::explore`] — the **design space exploration** of Algorithm 2:
//!   hidden-layer sizing by error change rate, the Eq (9) ensemble budget
//!   `K_max`, SAAB-vs-wider-network selection, and LSB pruning.
//!
//! ## Quickstart
//!
//! ```
//! use mei::{MeiConfig, MeiRcs};
//! use neural::Dataset;
//! use prng::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Approximate f(x) = exp(-x²) with a merged-interface RCS.
//! let mut rng = StdRng::seed_from_u64(1);
//! let data = Dataset::generate(400, &mut rng, |r| {
//!     let x: f64 = prng::Rng::gen(r);
//!     (vec![x], vec![(-x * x).exp()])
//! })?;
//! let config = MeiConfig::quick_test(); // small budgets for doc tests
//! let rcs = MeiRcs::train(&data, &config)?;
//! let y = rcs.infer(&[0.5])?;
//! assert!((y[0] - (-0.25f64).exp()).abs() < 0.25);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adda;
pub mod analog;
pub mod bitweights;
pub mod cnn;
pub mod diagnostics;
pub mod digital;
pub mod dse;
pub mod error;
pub mod eval;
pub mod mei_arch;
pub mod persist;
pub mod prune;
pub mod report;
pub mod saab;
pub mod serve;

pub use adda::{AddaConfig, AddaRcs};
pub use analog::{AnalogMlp, AnalogWorkspace};
pub use bitweights::exponential_bit_weights;
pub use cnn::{argmax, tile_significance, CnnConfig, CnnRcs, CnnWorkspace};
pub use diagnostics::{analog_fidelity, comparator_margins, FidelityReport, MarginReport};
pub use digital::DigitalAnn;
pub use dse::{DseConfig, DseDesign, DseResult, HiddenGrowth};
pub use error::{InferError, TrainRcsError};
pub use eval::{
    evaluate_metric, evaluate_mse, mse_scorer, robustness, robustness_par, sweep_robustness,
    sweep_robustness_par, Rcs, RobustnessReport, SweepPoint,
};
pub use mei_arch::{MeiConfig, MeiRcs};
pub use persist::ParseRcsError;
pub use report::{system_report, ReportConfig};
pub use saab::{Saab, SaabConfig, SaabTrainer};
pub use serve::{
    manufacture_boxed_engine, manufacture_boxed_fleet, manufacture_chips,
    manufacture_drifting_engine, manufacture_engine, manufacture_fleet,
};

// The σ-vector shared by every noisy evaluation path.
pub use rram::NonIdealFactors;
