//! Deployment diagnostics: is the crossbar really computing the trained
//! network, and how fragile are the comparator decisions?
//!
//! Two checks a bring-up engineer would run on a physical RCS:
//!
//! * [`analog_fidelity`] — drive probe inputs through both the digital
//!   network and its crossbar realization and report the largest output
//!   deviation (nonzero deviations come from weight mapping/quantization).
//! * [`comparator_margins`] — measure how far each output port's analog
//!   level sits from the 0.5 comparator threshold across a dataset. Ports
//!   that hover near the threshold flip under the smallest noise; the
//!   margin distribution predicts the Fig 5 robustness behaviour without
//!   running a single Monte-Carlo trial.

use std::fmt;

use neural::Dataset;
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};

use crate::mei_arch::MeiRcs;

/// Result of an analog-vs-digital fidelity sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityReport {
    /// Largest absolute deviation between the digital forward pass and the
    /// analog (pre-comparator) one, over all probes and output ports.
    pub max_deviation: f64,
    /// Mean absolute deviation.
    pub mean_deviation: f64,
    /// Number of probe vectors evaluated.
    pub probes: usize,
}

impl fmt::Display for FidelityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "analog fidelity over {} probes: max |Δ| = {:.3e}, mean {:.3e}",
            self.probes, self.max_deviation, self.mean_deviation
        )
    }
}

/// Compare the digital network against its crossbar realization on `probes`
/// random binary input patterns.
///
/// # Panics
///
/// Panics if `probes` is zero.
#[must_use]
pub fn analog_fidelity(rcs: &MeiRcs, probes: usize, seed: u64) -> FidelityReport {
    assert!(probes > 0, "fidelity sweep needs at least one probe");
    let mut rng = StdRng::seed_from_u64(seed);
    let ports = rcs.input_spec().ports();
    let mut max_dev = 0.0_f64;
    let mut total = 0.0_f64;
    let mut count = 0usize;
    for _ in 0..probes {
        let bits: Vec<f64> = (0..ports).map(|_| f64::from(rng.gen::<bool>())).collect();
        let digital = rcs.mlp().forward(&bits);
        let analog = rcs.analog().forward(&bits);
        for (d, a) in digital.iter().zip(&analog) {
            let dev = (d - a).abs();
            max_dev = max_dev.max(dev);
            total += dev;
            count += 1;
        }
    }
    FidelityReport {
        max_deviation: max_dev,
        mean_deviation: total / count as f64,
        probes,
    }
}

/// Distribution of comparator margins over a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginReport {
    /// Smallest observed margin `|v − 0.5|`.
    pub min: f64,
    /// Mean margin.
    pub mean: f64,
    /// Fraction of port evaluations with a margin below 0.05 — the
    /// "fragile" decisions that moderate noise will flip.
    pub fragile_fraction: f64,
    /// Port evaluations measured (`samples × output ports`).
    pub evaluations: usize,
}

impl fmt::Display for MarginReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "comparator margins: min {:.4}, mean {:.4}, {:.1}% fragile (< 0.05) over {} decisions",
            self.min,
            self.mean,
            100.0 * self.fragile_fraction,
            self.evaluations
        )
    }
}

/// Threshold below which a comparator decision counts as fragile.
const FRAGILE_MARGIN: f64 = 0.05;

/// Measure the analog comparator margins of every output port over an
/// analog-valued dataset.
///
/// # Panics
///
/// Panics if the dataset's input dimensionality doesn't match the RCS.
#[must_use]
pub fn comparator_margins(rcs: &MeiRcs, data: &Dataset) -> MarginReport {
    assert_eq!(
        data.input_dim(),
        rcs.input_spec().groups(),
        "dataset dimensionality vs RCS input groups"
    );
    let mut min = f64::INFINITY;
    let mut total = 0.0_f64;
    let mut fragile = 0usize;
    let mut count = 0usize;
    for (x, _) in data.iter() {
        let bits = rcs.input_spec().encode(x);
        let analog = rcs.analog().forward(&bits);
        for v in analog {
            let margin = (v - 0.5).abs();
            min = min.min(margin);
            total += margin;
            if margin < FRAGILE_MARGIN {
                fragile += 1;
            }
            count += 1;
        }
    }
    MarginReport {
        min,
        mean: total / count as f64,
        fragile_fraction: fragile as f64 / count as f64,
        evaluations: count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mei_arch::MeiConfig;
    use prng::rngs::StdRng;
    use prng::{Rng, SeedableRng};

    fn expfit_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::generate(n, &mut rng, |r| {
            let x: f64 = r.gen();
            (vec![x], vec![(-x * x).exp()])
        })
        .unwrap()
    }

    fn quick_rcs() -> MeiRcs {
        let data = expfit_data(300, 1);
        let mut cfg = MeiConfig::quick_test();
        cfg.train.epochs = 40;
        MeiRcs::train(&data, &cfg).unwrap()
    }

    #[test]
    fn fidelity_of_continuous_devices_is_near_perfect() {
        let rcs = quick_rcs();
        let report = analog_fidelity(&rcs, 50, 7);
        assert!(report.max_deviation < 1e-6, "{report}");
        assert!(report.mean_deviation <= report.max_deviation);
        assert_eq!(report.probes, 50);
    }

    #[test]
    fn fidelity_detects_quantized_devices() {
        // Coarse 4-level cells must show a measurable mapping deviation.
        let data = expfit_data(300, 2);
        let mut cfg = MeiConfig::quick_test();
        cfg.train.epochs = 40;
        cfg.device = rram::DeviceParams::hfox_quantized(4);
        let rcs = MeiRcs::train(&data, &cfg).unwrap();
        let report = analog_fidelity(&rcs, 50, 8);
        assert!(
            report.max_deviation > 1e-4,
            "4-level cells should deviate visibly: {report}"
        );
    }

    #[test]
    fn margins_are_sane_and_mostly_confident() {
        let rcs = quick_rcs();
        let data = expfit_data(200, 3);
        let report = comparator_margins(&rcs, &data);
        assert!(report.min >= 0.0 && report.min <= 0.5);
        assert!(report.mean > report.min);
        assert!(report.mean <= 0.5);
        assert_eq!(report.evaluations, 200 * 6);
        // A trained network saturates most decisions away from threshold.
        assert!(
            report.fragile_fraction < 0.5,
            "too many fragile decisions: {report}"
        );
    }

    #[test]
    fn fragile_fraction_predicts_noise_sensitivity_direction() {
        // Margins shrink → more bit flips under fluctuation. Verify the
        // correlation qualitatively: an untrained (random) network has more
        // fragile decisions than a trained one.
        let data = expfit_data(200, 4);
        let trained = quick_rcs();
        let untrained = {
            let mlp = neural::MlpBuilder::new(&[6, 16, 6]).seed(9).build();
            MeiRcs::from_trained(mlp, &MeiConfig::quick_test(), 1, 1).unwrap()
        };
        let t = comparator_margins(&trained, &data);
        let u = comparator_margins(&untrained, &data);
        assert!(
            t.fragile_fraction <= u.fragile_fraction + 0.05,
            "trained {t} vs untrained {u}"
        );
    }

    #[test]
    fn displays_are_informative() {
        let rcs = quick_rcs();
        let f = analog_fidelity(&rcs, 5, 0);
        assert!(f.to_string().contains("probes"));
        let m = comparator_margins(&rcs, &expfit_data(20, 5));
        assert!(m.to_string().contains("fragile"));
    }
}
