//! The traditional RCS: analog crossbar network behind B-bit AD/DAs.

use std::fmt;

use crossbar::{MappingConfig, SignalFluctuation};
use interface::cost::AddaTopology;
use interface::quantize_fraction;
use neural::{Dataset, Mlp, MlpBuilder, TrainConfig, Trainer};
use prng::Rng;
use rram::{DeviceParams, VariationModel};

use crate::analog::{AnalogMlp, AnalogWorkspace};
use crate::error::{InferError, TrainRcsError};

/// Configuration of a traditional AD/DA-interfaced RCS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AddaConfig {
    /// Hidden-layer size.
    pub hidden: usize,
    /// AD/DA resolution in bits (the paper uses 8).
    pub bits: usize,
    /// Backprop hyperparameters.
    pub train: TrainConfig,
    /// RRAM cell parameters.
    pub device: DeviceParams,
    /// Weight-to-conductance mapping options.
    pub mapping: MappingConfig,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for AddaConfig {
    fn default() -> Self {
        Self {
            hidden: 8,
            bits: 8,
            train: TrainConfig::default(),
            device: DeviceParams::hfox(),
            mapping: MappingConfig::default(),
            seed: 0,
        }
    }
}

/// A traditional RCS: `I×H×O` analog neural network with B-bit DACs on the
/// inputs and B-bit ADCs on the outputs.
///
/// Training happens on the values the converters actually deliver: inputs
/// and targets are quantized to B bits before backprop, exactly as the
/// physical system would observe them.
#[derive(Debug, Clone)]
pub struct AddaRcs {
    mlp: Mlp,
    analog: AnalogMlp,
    bits: usize,
    hidden: usize,
}

impl AddaRcs {
    /// Train a traditional RCS on an analog-valued dataset (all values in
    /// `[0, 1]`).
    ///
    /// # Errors
    ///
    /// Returns [`TrainRcsError`] if the configuration is invalid, the
    /// dataset is malformed, or the trained weights cannot be mapped onto
    /// crossbars.
    pub fn train(data: &Dataset, config: &AddaConfig) -> Result<Self, TrainRcsError> {
        if config.hidden == 0 {
            return Err(TrainRcsError::InvalidConfig(
                "hidden size must be nonzero".into(),
            ));
        }
        if config.bits == 0 || config.bits > interface::quantize::MAX_BITS {
            return Err(TrainRcsError::InvalidConfig(format!(
                "AD/DA resolution must be in 1..={}, got {}",
                interface::quantize::MAX_BITS,
                config.bits
            )));
        }
        // What the DACs/ADCs deliver: B-bit quantized values.
        let quantized = data
            .map_inputs(|x| {
                x.iter()
                    .map(|&v| quantize_fraction(v, config.bits))
                    .collect()
            })?
            .map_targets(|_, y| {
                y.iter()
                    .map(|&v| quantize_fraction(v, config.bits))
                    .collect()
            })?;

        let mut mlp =
            MlpBuilder::new(&[quantized.input_dim(), config.hidden, quantized.output_dim()])
                .seed(config.seed)
                .build();
        Trainer::new(config.train).train(&mut mlp, &quantized);
        let analog = AnalogMlp::from_mlp(&mlp, config.device, &config.mapping)?;
        Ok(Self {
            mlp,
            analog,
            bits: config.bits,
            hidden: config.hidden,
        })
    }

    /// AD/DA resolution in bits.
    #[must_use]
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The architecture descriptor for cost estimation.
    #[must_use]
    pub fn topology(&self) -> AddaTopology {
        AddaTopology::new(
            self.mlp.input_dim(),
            self.hidden,
            self.mlp.output_dim(),
            self.bits,
        )
    }

    /// The digitally-trained network (before crossbar mapping).
    #[must_use]
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// The crossbar realization.
    #[must_use]
    pub fn analog(&self) -> &AnalogMlp {
        &self.analog
    }

    /// Full-system inference: DAC-quantize the input, run the analog
    /// network, ADC-quantize the output.
    ///
    /// # Errors
    ///
    /// Returns [`InferError::InputLength`] on a wrong-sized input.
    pub fn infer(&self, x: &[f64]) -> Result<Vec<f64>, InferError> {
        self.check_input(x)?;
        let dac: Vec<f64> = x.iter().map(|&v| quantize_fraction(v, self.bits)).collect();
        let out = self.analog.forward(&dac);
        Ok(out
            .iter()
            .map(|&v| quantize_fraction(v, self.bits))
            .collect())
    }

    /// [`infer`](Self::infer) against a caller-owned workspace (the
    /// allocation-free serving path); bit-identical to [`infer`](Self::infer).
    ///
    /// # Errors
    ///
    /// Returns [`InferError::InputLength`] on a wrong-sized input.
    pub fn infer_with(&self, x: &[f64], ws: &mut AnalogWorkspace) -> Result<Vec<f64>, InferError> {
        self.check_input(x)?;
        let dac: Vec<f64> = x.iter().map(|&v| quantize_fraction(v, self.bits)).collect();
        let out = self.analog.forward_with(&dac, ws);
        Ok(out
            .iter()
            .map(|&v| quantize_fraction(v, self.bits))
            .collect())
    }

    /// Inference with signal fluctuation on every analog voltage (the DAC
    /// outputs and all inter-layer signals). Process variation is a device
    /// state change — apply it with [`disturb`](Self::disturb) first.
    ///
    /// # Errors
    ///
    /// Returns [`InferError::InputLength`] on a wrong-sized input.
    pub fn infer_noisy<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        fluctuation: &SignalFluctuation,
        rng: &mut R,
    ) -> Result<Vec<f64>, InferError> {
        self.check_input(x)?;
        let dac: Vec<f64> = x.iter().map(|&v| quantize_fraction(v, self.bits)).collect();
        let out = self.analog.forward_noisy(&dac, fluctuation, rng);
        Ok(out
            .iter()
            .map(|&v| quantize_fraction(v, self.bits))
            .collect())
    }

    /// Apply process variation to every RRAM device.
    pub fn disturb<R: Rng + ?Sized>(&mut self, variation: &VariationModel, rng: &mut R) {
        self.analog.disturb(variation, rng);
    }

    /// Restore all devices to their programmed targets.
    pub fn restore(&mut self) {
        self.analog.restore();
    }

    fn check_input(&self, x: &[f64]) -> Result<(), InferError> {
        if x.len() != self.mlp.input_dim() {
            return Err(InferError::InputLength {
                expected: self.mlp.input_dim(),
                found: x.len(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for AddaRcs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AD/DA RCS {}", self.topology())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prng::rngs::StdRng;
    use prng::SeedableRng;

    fn expfit_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::generate(n, &mut rng, |r| {
            let x: f64 = r.gen();
            (vec![x], vec![(-x * x).exp()])
        })
        .unwrap()
    }

    fn quick_config() -> AddaConfig {
        AddaConfig {
            hidden: 8,
            train: TrainConfig {
                epochs: 150,
                learning_rate: 1.0,
                ..TrainConfig::default()
            },
            ..AddaConfig::default()
        }
    }

    #[test]
    fn trains_and_approximates_expfit() {
        let data = expfit_data(400, 1);
        let rcs = AddaRcs::train(&data, &quick_config()).unwrap();
        let mut total = 0.0;
        let test = expfit_data(100, 2);
        for (x, t) in test.iter() {
            let y = rcs.infer(x).unwrap();
            total += (y[0] - t[0]).powi(2);
        }
        let mse = total / 100.0;
        assert!(mse < 0.01, "AD/DA RCS MSE {mse}");
    }

    #[test]
    fn outputs_are_quantized_to_bits() {
        let data = expfit_data(100, 3);
        let rcs = AddaRcs::train(&data, &quick_config()).unwrap();
        let y = rcs.infer(&[0.37]).unwrap()[0];
        let levels = 256.0;
        assert!(
            (y * levels - (y * levels).round()).abs() < 1e-9,
            "output {y} not 8-bit"
        );
    }

    #[test]
    fn topology_reflects_config() {
        let data = expfit_data(50, 4);
        let rcs = AddaRcs::train(&data, &quick_config()).unwrap();
        let t = rcs.topology();
        assert_eq!((t.inputs, t.hidden, t.outputs, t.bits), (1, 8, 1, 8));
    }

    #[test]
    fn invalid_configs_rejected() {
        let data = expfit_data(10, 5);
        let bad_hidden = AddaConfig {
            hidden: 0,
            ..quick_config()
        };
        assert!(AddaRcs::train(&data, &bad_hidden).is_err());
        let bad_bits = AddaConfig {
            bits: 0,
            ..quick_config()
        };
        assert!(AddaRcs::train(&data, &bad_bits).is_err());
    }

    #[test]
    fn wrong_input_length_is_an_error() {
        let data = expfit_data(20, 6);
        let cfg = AddaConfig {
            train: TrainConfig {
                epochs: 2,
                ..TrainConfig::default()
            },
            ..AddaConfig::default()
        };
        let rcs = AddaRcs::train(&data, &cfg).unwrap();
        assert_eq!(
            rcs.infer(&[0.1, 0.2]).unwrap_err(),
            InferError::InputLength {
                expected: 1,
                found: 2
            }
        );
    }

    #[test]
    fn disturb_restore_roundtrip() {
        let data = expfit_data(50, 7);
        let mut rcs = AddaRcs::train(&data, &quick_config()).unwrap();
        let clean = rcs.infer(&[0.5]).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        rcs.disturb(&VariationModel::process_variation(0.6), &mut rng);
        // (The disturbed output may or may not requantize identically; check
        // the analog path directly.)
        let disturbed_analog = rcs.analog().forward(&[0.5]);
        rcs.restore();
        assert_eq!(rcs.infer(&[0.5]).unwrap(), clean);
        let clean_analog = rcs.analog().forward(&[0.5]);
        assert_ne!(disturbed_analog, clean_analog);
    }

    #[test]
    fn noisy_inference_stays_bounded() {
        let data = expfit_data(50, 8);
        let rcs = AddaRcs::train(&data, &quick_config()).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..20 {
            let y = rcs
                .infer_noisy(&[0.5], &SignalFluctuation::new(0.3), &mut rng)
                .unwrap();
            assert!((0.0..=1.0).contains(&y[0]));
        }
    }
}
