//! Serving integration: the trained architectures as [`runtime::Chip`]s,
//! and chip-pool manufacturing with per-chip write-noise draws.
//!
//! A deployment serves inference from *manufactured* chips: every chip is
//! programmed from the same trained weights but carries its own
//! program-and-verify (write-accuracy) noise draw. [`manufacture_chips`]
//! builds such a pool from any trained [`Rcs`]: chip `i` is disturbed
//! with a generator derived from `(root_seed, i)`, so chip `i` is the
//! same physical device on every run and for every pool size — the
//! serving-side face of the workspace's deterministic-parallelism rule.

use std::cell::RefCell;

use interface::{CostModel, Throughput};
use prng::rngs::StdRng;
use prng::SeedableRng;
use rram::VariationModel;
use runtime::{
    Chip, ChipCostSheet, ChipPool, DriftProfile, DriftingChip, Engine, Fleet, FleetConfig,
};

use crate::adda::AddaRcs;
use crate::analog::AnalogWorkspace;
use crate::cnn::{CnnRcs, CnnWorkspace};
use crate::digital::DigitalAnn;
use crate::eval::Rcs;
use crate::mei_arch::MeiRcs;
use crate::saab::Saab;

thread_local! {
    /// Per-worker analog scratch: `Chip::infer` takes `&self` (chips are
    /// shared across serving threads), so the workspace that makes the
    /// crossbar matvec allocation-free lives per thread, sized once by the
    /// largest layer the thread serves.
    static SERVE_WORKSPACE: RefCell<AnalogWorkspace> = RefCell::new(AnalogWorkspace::new());

    /// The CNN counterpart: conv tiling buffers plus head scratch.
    static CNN_SERVE_WORKSPACE: RefCell<CnnWorkspace> = RefCell::new(CnnWorkspace::new());
}

/// Translate an interface-crate [`interface::CostSheet`] (valued from the
/// paper's Eq (6)/(7) at the default mixed-signal throughput) into the
/// runtime's plain-numbers [`ChipCostSheet`]. This is the one bridge
/// between the physics silo and the serving-time accounting layer —
/// `runtime` cannot depend on `interface`, so the mapping lives here.
fn to_runtime_sheet(sheet: interface::CostSheet) -> ChipCostSheet {
    ChipCostSheet::new(
        sheet.area_um2,
        sheet.static_power_uw,
        sheet.dynamic_j_per_evaluation,
        sheet.ops_per_evaluation,
    )
}

impl Chip for MeiRcs {
    fn infer(&self, input: &[f64]) -> Vec<f64> {
        SERVE_WORKSPACE
            .with(|ws| MeiRcs::infer_with(self, input, &mut ws.borrow_mut()))
            .expect("dataset-validated input")
    }

    fn cost_sheet(&self) -> Option<ChipCostSheet> {
        let sheet =
            CostModel::dac2015().sheet_mei(&self.topology(), &Throughput::default_mixed_signal());
        Some(to_runtime_sheet(sheet))
    }

    fn wear(&self) -> Option<u64> {
        Some(self.analog().total_writes())
    }
}

impl Chip for AddaRcs {
    fn infer(&self, input: &[f64]) -> Vec<f64> {
        SERVE_WORKSPACE
            .with(|ws| AddaRcs::infer_with(self, input, &mut ws.borrow_mut()))
            .expect("dataset-validated input")
    }

    fn cost_sheet(&self) -> Option<ChipCostSheet> {
        let sheet =
            CostModel::dac2015().sheet_adda(&self.topology(), &Throughput::default_mixed_signal());
        Some(to_runtime_sheet(sheet))
    }
}

impl Chip for Saab {
    fn infer(&self, input: &[f64]) -> Vec<f64> {
        Saab::infer(self, input).expect("dataset-validated input")
    }

    // A SAAB chip is its learners side by side: one inference evaluates
    // every (non-pruned) learner, so the sheets sum in learner order.
    fn cost_sheet(&self) -> Option<ChipCostSheet> {
        let model = CostModel::dac2015();
        let throughput = Throughput::default_mixed_signal();
        let mut area_um2 = 0.0;
        let mut static_uw = 0.0;
        let mut dynamic_j = 0.0;
        let mut ops = 0.0;
        for learner in self.learners() {
            let sheet = model.sheet_mei(&learner.topology(), &throughput);
            area_um2 += sheet.area_um2;
            static_uw += sheet.static_power_uw;
            dynamic_j += sheet.dynamic_j_per_evaluation;
            ops += sheet.ops_per_evaluation;
        }
        Some(ChipCostSheet::new(area_um2, static_uw, dynamic_j, ops))
    }
}

impl Chip for CnnRcs {
    fn infer(&self, input: &[f64]) -> Vec<f64> {
        CNN_SERVE_WORKSPACE
            .with(|ws| CnnRcs::infer_with(self, input, &mut ws.borrow_mut()))
            .expect("dataset-validated input")
    }

    // The CNN chip is its conv tiles plus its head side by side: each
    // tile is costed as a 1-bit-input stage with a `tile_bits`-wide sense
    // interface (the Eq (6)/(7) machinery applied per tile), the head as
    // a regular MEI stack. One inference evaluates all of them.
    fn cost_sheet(&self) -> Option<ChipCostSheet> {
        let model = CostModel::dac2015();
        let throughput = Throughput::default_mixed_signal();
        let mut area_um2 = 0.0;
        let mut static_uw = 0.0;
        let mut dynamic_j = 0.0;
        let mut ops = 0.0;
        for topology in self
            .tile_topologies()
            .iter()
            .chain(std::iter::once(&self.head_topology()))
        {
            let sheet = model.sheet_mei(topology, &throughput);
            area_um2 += sheet.area_um2;
            static_uw += sheet.static_power_uw;
            dynamic_j += sheet.dynamic_j_per_evaluation;
            ops += sheet.ops_per_evaluation;
        }
        Some(ChipCostSheet::new(area_um2, static_uw, dynamic_j, ops))
    }

    fn wear(&self) -> Option<u64> {
        Some(CnnRcs::total_writes(self))
    }
}

// The digital baseline carries an explicit all-zero sheet rather than
// `None`: the paper publishes no area/power model for it, and inventing
// one would corrupt the mixed-signal comparisons — but an unaccounted
// chip silently lands in `chips − known_chips`, which reads as an
// accounting bug in fleet_cost-style reports. Zero cost states the truth
// ("present, free in this model") and keeps `known_chips == chips`.
impl Chip for DigitalAnn {
    fn infer(&self, input: &[f64]) -> Vec<f64> {
        DigitalAnn::infer(self, input)
    }

    fn cost_sheet(&self) -> Option<ChipCostSheet> {
        Some(ChipCostSheet::new(0.0, 0.0, 0.0, 0.0))
    }
}

/// Manufacture a pool of `chips` instances of a trained system: each chip
/// is a clone of `rcs` disturbed by lognormal write noise of level
/// `write_sigma` under its `(root_seed, chip_index)`-derived stream.
/// `write_sigma = 0` yields identical ideal chips.
///
/// # Panics
///
/// Panics if `chips` is zero.
pub fn manufacture_chips<T>(rcs: &T, chips: usize, write_sigma: f64, root_seed: u64) -> ChipPool<T>
where
    T: Rcs + Chip + Clone,
{
    let variation = VariationModel::process_variation(write_sigma);
    ChipPool::manufacture(root_seed, chips, |_, chip_seed| {
        let mut chip = rcs.clone();
        if !variation.is_ideal() {
            let mut rng = StdRng::seed_from_u64(chip_seed);
            chip.disturb(&variation, &mut rng);
        }
        chip
    })
}

/// Manufacture a pool (as [`manufacture_chips`]) and wrap it in a
/// serving [`Engine`] with the default least-loaded policy over the
/// input-length cost proxy. Rebind policy/cost model with the engine's
/// `with_*` builders; `.calibrated(...)` fits a measured cost model for
/// the size-aware policy.
///
/// # Panics
///
/// Panics if `chips` is zero.
pub fn manufacture_engine<T>(rcs: &T, chips: usize, write_sigma: f64, root_seed: u64) -> Engine<T>
where
    T: Rcs + Chip + Clone,
{
    Engine::new(manufacture_chips(rcs, chips, write_sigma, root_seed))
}

/// [`manufacture_engine`], but over type-erased chips — the form
/// `runtime::net::NetWorkload` takes, and the one that lets chips of
/// several trained systems share a pool.
///
/// # Panics
///
/// Panics if `chips` is zero.
pub fn manufacture_boxed_engine<T>(
    rcs: &T,
    chips: usize,
    write_sigma: f64,
    root_seed: u64,
) -> Engine<Box<dyn Chip>>
where
    T: Rcs + Chip + Clone + 'static,
{
    Engine::new(manufacture_chips(rcs, chips, write_sigma, root_seed).boxed())
}

/// Salt folded into a fleet's root seed before deriving per-pool
/// manufacturing seeds, so pool substreams never collide with any other
/// consumer of the same root seed (routing draws, chip write noise).
const FLEET_POOL_SALT: u64 = 0x4D45_495F_504F_4F4C; // "MEI_POOL"

/// Manufacture `pools` independent chip pools (as
/// [`manufacture_engine`], pool `p` seeded from
/// `substream(config.seed ^ SALT, p)`) and assemble them into a serving
/// [`Fleet`] routed under `config`. Pool `p` holds the same physical
/// devices on every run and for every fleet size — the fleet-level face
/// of the manufacturing determinism rule.
///
/// # Panics
///
/// Panics if `pools` or `chips_per_pool` is zero.
pub fn manufacture_fleet<T>(
    rcs: &T,
    pools: usize,
    chips_per_pool: usize,
    write_sigma: f64,
    config: FleetConfig,
) -> Fleet<T>
where
    T: Rcs + Chip + Clone,
{
    assert!(pools > 0, "a fleet needs a pool");
    let engines = (0..pools)
        .map(|p| {
            let pool_seed = prng::substream(config.seed ^ FLEET_POOL_SALT, p as u64);
            manufacture_engine(rcs, chips_per_pool, write_sigma, pool_seed)
        })
        .collect();
    Fleet::new(engines, config)
}

/// [`manufacture_fleet`], but over type-erased chips — the form
/// `runtime::net::NetWorkload::fleet` takes.
///
/// # Panics
///
/// Panics if `pools` or `chips_per_pool` is zero.
pub fn manufacture_boxed_fleet<T>(
    rcs: &T,
    pools: usize,
    chips_per_pool: usize,
    write_sigma: f64,
    config: FleetConfig,
) -> Fleet<Box<dyn Chip>>
where
    T: Rcs + Chip + Clone + 'static,
{
    assert!(pools > 0, "a fleet needs a pool");
    let engines = (0..pools)
        .map(|p| {
            let pool_seed = prng::substream(config.seed ^ FLEET_POOL_SALT, p as u64);
            Engine::new(manufacture_chips(rcs, chips_per_pool, write_sigma, pool_seed).boxed())
        })
        .collect();
    Fleet::new(engines, config)
}

/// Manufacture a pool (as [`manufacture_chips`]) and wrap every chip in
/// a [`DriftingChip`] with retention drift `profile`, each chip's drift
/// severity drawn from its `(root_seed, chip_index)` substream — the
/// same seed that drew its write noise, salted to a distinct stream. The
/// result is an [`Engine`] whose chips age deterministically as the
/// engine's serving window advances (`Engine::advance_window` /
/// `Engine::recalibrate_window`); at window 0 outputs are bit-identical
/// to [`manufacture_engine`] over the same arguments.
///
/// # Panics
///
/// Panics if `chips` is zero.
pub fn manufacture_drifting_engine<T>(
    rcs: &T,
    chips: usize,
    write_sigma: f64,
    root_seed: u64,
    profile: DriftProfile,
) -> Engine<DriftingChip<T>>
where
    T: Rcs + Chip + Clone,
{
    let variation = VariationModel::process_variation(write_sigma);
    let pool = ChipPool::manufacture(root_seed, chips, |_, chip_seed| {
        let mut chip = rcs.clone();
        if !variation.is_ideal() {
            let mut rng = StdRng::seed_from_u64(chip_seed);
            chip.disturb(&variation, &mut rng);
        }
        DriftingChip::new(chip, profile, chip_seed)
    });
    Engine::new(pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mei_arch::MeiConfig;
    use neural::Dataset;
    use prng::Rng;
    use runtime::Placement;

    fn expfit_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::generate(n, &mut rng, |r| {
            let x: f64 = r.gen();
            (vec![x], vec![(-x * x).exp()])
        })
        .unwrap()
    }

    #[test]
    fn chip_infer_matches_rcs_infer() {
        let data = expfit_data(200, 1);
        let rcs = MeiRcs::train(&data, &MeiConfig::quick_test()).unwrap();
        let direct = MeiRcs::infer(&rcs, &[0.3]).unwrap();
        let chip: &dyn Chip = &rcs;
        assert_eq!(chip.infer(&[0.3]), direct);
    }

    #[test]
    fn cnn_chips_serve_bill_and_report_wear() {
        let data = workloads::cnn_dataset(8, 8, 12, 5);
        let rcs = crate::cnn::CnnRcs::train(&data, &crate::cnn::CnnConfig::quick_test()).unwrap();
        let (x, _) = data.iter().next().unwrap();
        // Chip::infer matches the direct path and rides per-thread scratch.
        let chip: &dyn Chip = &rcs;
        assert_eq!(chip.infer(x), rcs.infer(x).unwrap());
        // The sheet sums the per-tile stages and the head, so it must
        // strictly exceed the head alone.
        let sheet = chip.cost_sheet().expect("CNN chips are accounted");
        let head_only = interface::CostModel::dac2015()
            .sheet_mei(&rcs.head_topology(), &Throughput::default_mixed_signal());
        assert!(sheet.area_um2 > head_only.area_um2);
        // Wear rolls up through the Chip trait, manufacture included:
        // write noise is programming (`program_clamped`), so every
        // manufactured chip has more pulses than the pristine master.
        assert_eq!(chip.wear(), Some(rcs.total_writes()));
        let pool = manufacture_chips(&rcs, 2, 0.05, 9);
        for made in pool.chips() {
            assert!(Chip::wear(made).unwrap() >= rcs.total_writes());
        }
        let outcome = pool.serve(
            &data.iter().map(|(x, _)| x.to_vec()).collect::<Vec<_>>(),
            Placement::RoundRobin,
        );
        assert_eq!(outcome.outputs.len(), data.len());
    }

    #[test]
    fn manufactured_chips_are_distinct_but_reproducible() {
        let data = expfit_data(200, 2);
        let rcs = MeiRcs::train(&data, &MeiConfig::quick_test()).unwrap();
        let pool_a = manufacture_chips(&rcs, 3, 0.05, 42);
        let pool_b = manufacture_chips(&rcs, 3, 0.05, 42);
        let x = [0.6];
        for (a, b) in pool_a.chips().iter().zip(pool_b.chips()) {
            // Reproducible: chip i identical across manufacture runs.
            assert_eq!(Chip::infer(a, &x), Chip::infer(b, &x));
        }
        // Distinct draws: some chip differs from the ideal weights.
        let ideal = Chip::infer(&rcs, &x);
        assert!(
            pool_a.chips().iter().any(|c| Chip::infer(c, &x) != ideal),
            "write noise should perturb at least one chip"
        );
    }

    #[test]
    fn zero_write_sigma_gives_ideal_chips() {
        let data = expfit_data(150, 3);
        let rcs = MeiRcs::train(&data, &MeiConfig::quick_test()).unwrap();
        let pool = manufacture_chips(&rcs, 2, 0.0, 7);
        let x = [0.25];
        let ideal = Chip::infer(&rcs, &x);
        for chip in pool.chips() {
            assert_eq!(Chip::infer(chip, &x), ideal);
        }
    }

    #[test]
    fn engine_and_enum_adapter_place_and_serve_identically() {
        let data = expfit_data(200, 5);
        let rcs = MeiRcs::train(&data, &MeiConfig::quick_test()).unwrap();
        let inputs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 10.0]).collect();
        let pool_outcome =
            manufacture_chips(&rcs, 3, 0.05, 9).serve(&inputs, Placement::LeastLoaded);
        // Engine default = LeastLoaded over the input-length proxy: the
        // exact placement (and therefore bits) the enum produced.
        let engine = manufacture_engine(&rcs, 3, 0.05, 9);
        assert_eq!(engine.serve(&inputs).outputs, pool_outcome.outputs);
        // The boxed engine is the same pool behind `dyn Chip`.
        let boxed = manufacture_boxed_engine(&rcs, 3, 0.05, 9);
        assert_eq!(boxed.serve(&inputs).outputs, pool_outcome.outputs);
    }

    #[test]
    fn drifting_engine_is_transparent_at_window_zero_and_ages_reproducibly() {
        let data = expfit_data(200, 6);
        let rcs = MeiRcs::train(&data, &MeiConfig::quick_test()).unwrap();
        let inputs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 8.0]).collect();
        let fresh = manufacture_engine(&rcs, 2, 0.05, 13).serve(&inputs);
        let profile = DriftProfile {
            latency_per_drift: 0.0,
            ..DriftProfile::aggressive()
        };
        let mut drifting = manufacture_drifting_engine(&rcs, 2, 0.05, 13, profile);
        // Window 0: the wrapper is bit-transparent.
        assert_eq!(drifting.serve(&inputs).outputs, fresh.outputs);
        // Aged: outputs move, but identically on an identically-built twin.
        let _ = drifting.advance_window();
        let _ = drifting.advance_window();
        let aged = drifting.serve(&inputs);
        assert_ne!(aged.outputs, fresh.outputs, "drift must act by window 2");
        let mut twin = manufacture_drifting_engine(&rcs, 2, 0.05, 13, profile);
        let _ = twin.advance_window();
        let _ = twin.advance_window();
        assert_eq!(twin.serve(&inputs).outputs, aged.outputs);
    }

    #[test]
    fn cost_sheets_carry_eq67_physics_into_the_runtime() {
        let data = expfit_data(200, 11);
        let rcs = MeiRcs::train(&data, &MeiConfig::quick_test()).unwrap();
        // The MEI chip's sheet is exactly the interface crate's Eq (7)
        // valuation at the default mixed-signal throughput.
        let sheet = Chip::cost_sheet(&rcs).expect("MEI chips are accounted");
        let expect = interface::CostModel::dac2015()
            .sheet_mei(&rcs.topology(), &Throughput::default_mixed_signal());
        assert_eq!(sheet.area_um2.to_bits(), expect.area_um2.to_bits());
        assert_eq!(sheet.leakage_uw.to_bits(), expect.static_power_uw.to_bits());
        assert_eq!(
            sheet.dynamic_j_per_inference.to_bits(),
            expect.dynamic_j_per_evaluation.to_bits()
        );
        // Write noise and drift do not change the silicon's bill.
        let pool = manufacture_chips(&rcs, 3, 0.1, 21);
        for chip in pool.chips() {
            assert_eq!(Chip::cost_sheet(chip), Some(sheet));
        }
        let acc = pool.accounting();
        assert_eq!((acc.chips, acc.known_chips), (3, 3));
        assert_eq!(acc.area_um2.to_bits(), (3.0 * sheet.area_um2).to_bits());
        // A SAAB chip bills the learner-order sum of its ensemble.
        let saab = Saab::train(
            &data,
            &MeiConfig::quick_test(),
            &crate::saab::SaabConfig {
                rounds: 2,
                compare_bits: 4,
                ..crate::saab::SaabConfig::default()
            },
        )
        .unwrap();
        let saab_sheet = Chip::cost_sheet(&saab).unwrap();
        let learner_area: f64 = saab
            .learners()
            .iter()
            .map(|l| {
                interface::CostModel::dac2015()
                    .sheet_mei(&l.topology(), &Throughput::default_mixed_signal())
                    .area_um2
            })
            .sum();
        assert_eq!(saab_sheet.area_um2.to_bits(), learner_area.to_bits());
        // The digital baseline has no published physics, but it must not
        // vanish from accounting: an explicit zero-cost sheet keeps
        // `known_chips == chips` while adding nothing to the bill.
        let ann = DigitalAnn::train(
            &data,
            4,
            &neural::TrainConfig {
                epochs: 20,
                learning_rate: 1.0,
                ..neural::TrainConfig::default()
            },
            0,
        )
        .unwrap();
        let ann_sheet = Chip::cost_sheet(&ann).expect("digital baseline is accounted");
        assert_eq!(ann_sheet, runtime::ChipCostSheet::new(0.0, 0.0, 0.0, 0.0));
        let digital_pool = runtime::ChipPool::from_chips(vec![ann]);
        let digital_acc = digital_pool.accounting();
        assert_eq!((digital_acc.chips, digital_acc.known_chips), (1, 1));
        assert_eq!(digital_acc.area_um2, 0.0);
        // Serving a manufactured engine reports measured energy.
        let outcome = manufacture_engine(&rcs, 2, 0.05, 33)
            .serve(&(0..6).map(|i| vec![i as f64 / 6.0]).collect::<Vec<_>>());
        let energy = outcome.stats.energy.expect("MEI chips bill energy");
        assert_eq!(energy.known_chips, 2);
        assert!(energy.joules > 0.0 && energy.j_per_request > 0.0);
    }

    #[test]
    fn manufactured_fleet_pools_are_distinct_and_reproducible() {
        let data = expfit_data(200, 8);
        let rcs = MeiRcs::train(&data, &MeiConfig::quick_test()).unwrap();
        // A heavy write sigma so the disturbance survives the chips'
        // output quantization; probe several inputs per chip.
        let config = runtime::FleetConfig::new(42);
        let fleet_a = manufacture_fleet(&rcs, 2, 2, 0.4, config);
        let fleet_b = manufacture_boxed_fleet(&rcs, 2, 2, 0.4, config);
        let probes: Vec<Vec<f64>> = (0..8).map(|i| vec![f64::from(i) / 8.0]).collect();
        let sample = |fleet: &Fleet<MeiRcs>, pool: usize| -> Vec<Vec<f64>> {
            fleet
                .engine(pool)
                .pool()
                .chips()
                .iter()
                .flat_map(|c| probes.iter().map(|x| Chip::infer(c, x)))
                .collect()
        };
        // Pool p, chip c is the same physical device in the plain and
        // boxed fleets (same substream), and across reruns.
        for p in 0..2 {
            let boxed: Vec<Vec<f64>> = fleet_b
                .engine(p)
                .pool()
                .chips()
                .iter()
                .flat_map(|c| probes.iter().map(|x| c.infer(x)))
                .collect();
            assert_eq!(sample(&fleet_a, p), boxed);
        }
        // Different pools hold different write-noise draws.
        assert_ne!(
            sample(&fleet_a, 0),
            sample(&fleet_a, 1),
            "pools must carry independent manufacturing draws"
        );
    }

    #[test]
    fn pool_serves_a_batch_through_mei_chips() {
        let data = expfit_data(250, 4);
        let rcs = MeiRcs::train(&data, &MeiConfig::quick_test()).unwrap();
        let pool = manufacture_chips(&rcs, 2, 0.02, 11);
        let inputs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 12.0]).collect();
        let outcome = pool.serve(&inputs, Placement::RoundRobin);
        assert_eq!(outcome.outputs.len(), 12);
        assert_eq!(outcome.stats.per_chip.len(), 2);
        for (input, out) in inputs.iter().zip(&outcome.outputs) {
            let expect = (-input[0] * input[0]).exp();
            assert!(
                (out[0] - expect).abs() < 0.4,
                "serving should stay near f(x)"
            );
        }
    }
}
