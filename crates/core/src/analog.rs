//! Executing a trained MLP on RRAM crossbar hardware.
//!
//! [`AnalogMlp`] is the physical realization of a [`neural::Mlp`]: every
//! dense layer becomes a differential crossbar pair (with the bias folded in
//! as a constant-`1` input row, as real RCS designs do), and the activation
//! is applied by the analog peripheral circuit. Process variation disturbs
//! the programmed devices; signal fluctuation perturbs the voltages entering
//! each layer.

use std::fmt;

use crossbar::{
    BitInput, DifferentialPair, IrDropConfig, MapWeightsError, MappingConfig, SignalFluctuation,
};
use neural::{Activation, Mlp};
use prng::Rng;
use rram::{DeviceParams, VariationModel};

/// Reusable scratch for [`AnalogMlp::forward_with`]: the activation
/// ping-pong buffers, the minus-array current scratch, and a packed-bit
/// lane buffer for the interface-bit fast path. One workspace per serving
/// thread removes every per-call allocation except the returned vector.
#[derive(Debug, Clone, Default)]
pub struct AnalogWorkspace {
    a: Vec<f64>,
    z: Vec<f64>,
    scratch: Vec<f64>,
    bits: BitInput,
}

impl AnalogWorkspace {
    /// An empty workspace; buffers grow to the largest layer they serve.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// One crossbar-mapped layer: a differential pair over the augmented
/// `[W | b]` matrix plus the peripheral activation.
#[derive(Debug, Clone)]
struct AnalogLayer {
    pair: DifferentialPair,
    activation: Activation,
}

/// A trained MLP programmed onto differential crossbar pairs.
///
/// ```
/// use mei::AnalogMlp;
/// use crossbar::MappingConfig;
/// use neural::MlpBuilder;
/// use rram::DeviceParams;
///
/// # fn main() -> Result<(), crossbar::MapWeightsError> {
/// let net = MlpBuilder::new(&[2, 4, 1]).seed(1).build();
/// let analog = AnalogMlp::from_mlp(&net, DeviceParams::hfox(), &MappingConfig::default())?;
/// let x = [0.3, 0.7];
/// let digital = net.forward(&x);
/// let physical = analog.forward(&x);
/// assert!((digital[0] - physical[0]).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AnalogMlp {
    layers: Vec<AnalogLayer>,
    input_dim: usize,
    output_dim: usize,
}

impl AnalogMlp {
    /// Program an MLP onto crossbar hardware.
    ///
    /// Each layer's weight matrix is augmented with its bias column (driven
    /// by a constant-1 input port) and mapped as a differential pair.
    ///
    /// # Errors
    ///
    /// Returns [`MapWeightsError`] if any layer's weights cannot be mapped
    /// (non-finite values; shape problems are impossible for a valid `Mlp`).
    pub fn from_mlp(
        mlp: &Mlp,
        params: DeviceParams,
        config: &MappingConfig,
    ) -> Result<Self, MapWeightsError> {
        let mut layers = Vec::with_capacity(mlp.layers().len());
        for layer in mlp.layers() {
            // Augment: out × (in + 1), last column is the bias.
            let mut augmented = layer.weights.to_rows();
            for (row, &b) in augmented.iter_mut().zip(&layer.biases) {
                row.push(b);
            }
            let pair = DifferentialPair::from_weights(&augmented, params, config)?;
            layers.push(AnalogLayer {
                pair,
                activation: layer.activation,
            });
        }
        Ok(Self {
            layers,
            input_dim: mlp.input_dim(),
            output_dim: mlp.output_dim(),
        })
    }

    /// Input dimensionality (excluding the internal bias port).
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output dimensionality.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Total RRAM device count across all layers (both arrays of each pair).
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.layers.iter().map(|l| l.pair.device_count()).sum()
    }

    /// Total write pulses across every layer's devices — the stack's
    /// endurance wear (see `rram::RramDevice::write_count`).
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.layers.iter().map(|l| l.pair.total_writes()).sum()
    }

    /// The worst-worn cell's write count across all layers.
    #[must_use]
    pub fn max_write_count(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.pair.max_write_count())
            .max()
            .unwrap_or(0)
    }

    /// Ideal forward pass (no noise, current device state).
    ///
    /// Routes each layer through the bit-packed kernel when its input is an
    /// exact interface-bit vector (MEI's whole first layer, bias included,
    /// is 0/1) — bit-identical to the scalar path either way.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_dim()`.
    #[must_use]
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut ws = AnalogWorkspace::new();
        self.forward_with(x, &mut ws)
    }

    /// [`forward`](Self::forward) against a caller-owned workspace: the
    /// serving hot path. Per-layer activation buffers, the minus-array
    /// current scratch, and the packed-bit lanes all live in `ws`, so a
    /// thread reusing its workspace allocates only the returned vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_dim()`.
    #[must_use]
    pub fn forward_with(&self, x: &[f64], ws: &mut AnalogWorkspace) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim, "analog input length");
        ws.a.clear();
        ws.a.extend_from_slice(x);
        for layer in &self.layers {
            ws.a.push(1.0); // bias port
            let outputs = layer.pair.outputs();
            ws.z.resize(outputs, 0.0);
            ws.scratch.resize(outputs, 0.0);
            if ws.bits.try_pack(&ws.a) {
                layer
                    .pair
                    .matvec_binary_into(&ws.bits, &mut ws.z, &mut ws.scratch);
            } else {
                layer.pair.matvec_into(&ws.a, &mut ws.z, &mut ws.scratch);
            }
            layer.activation.apply_in_place(&mut ws.z);
            std::mem::swap(&mut ws.a, &mut ws.z);
        }
        ws.a.clone()
    }

    /// Forward pass with lognormal signal fluctuation applied to the voltage
    /// vector entering every layer (including the bias port — it is a
    /// physical signal too).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_dim()`.
    #[must_use]
    pub fn forward_noisy<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        fluctuation: &SignalFluctuation,
        rng: &mut R,
    ) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim, "analog input length");
        if fluctuation.is_ideal() {
            return self.forward(x);
        }
        let mut a = x.to_vec();
        for layer in &self.layers {
            a.push(1.0);
            fluctuation.apply_in_place(&mut a, rng);
            let mut z = layer.pair.matvec(&a);
            layer.activation.apply_in_place(&mut z);
            a = z;
        }
        a
    }

    /// Forward pass through the wire-resistance (IR-drop) model of every
    /// layer — the effect the paper defers to future work, made measurable.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_dim()`.
    #[must_use]
    pub fn forward_ir(&self, x: &[f64], config: &IrDropConfig) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim, "analog input length");
        let mut a = x.to_vec();
        for layer in &self.layers {
            a.push(1.0);
            let mut z = layer.pair.matvec_ir(&a, config);
            layer.activation.apply_in_place(&mut z);
            a = z;
        }
        a
    }

    /// Disturb every device with a variation model (process variation).
    pub fn disturb<R: Rng + ?Sized>(&mut self, variation: &VariationModel, rng: &mut R) {
        for layer in &mut self.layers {
            layer.pair.disturb(variation, rng);
        }
    }

    /// Restore every device to its programmed target.
    pub fn restore(&mut self) {
        for layer in &mut self.layers {
            layer.pair.restore();
        }
    }

    /// Age every device by `seconds` under a retention model.
    pub fn age(&mut self, retention: &rram::RetentionModel, seconds: f64) {
        for layer in &mut self.layers {
            layer.pair.age(retention, seconds);
        }
    }
}

impl fmt::Display for AnalogMlp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "analog MLP {}→{} ({} layers, {} RRAM devices)",
            self.input_dim,
            self.output_dim,
            self.layers.len(),
            self.device_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::MlpBuilder;
    use prng::rngs::StdRng;
    use prng::SeedableRng;

    fn net() -> Mlp {
        MlpBuilder::new(&[3, 5, 2]).seed(7).build()
    }

    fn analog() -> AnalogMlp {
        AnalogMlp::from_mlp(&net(), DeviceParams::hfox(), &MappingConfig::default()).unwrap()
    }

    #[test]
    fn analog_forward_matches_digital_forward() {
        let digital = net();
        let physical = analog();
        for &x in &[[0.1, 0.5, 0.9], [0.0, 0.0, 0.0], [1.0, 1.0, 1.0]] {
            let d = digital.forward(&x);
            let p = physical.forward(&x);
            for (a, b) in d.iter().zip(&p) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn biases_are_realized() {
        // A zero-input forward pass still produces the bias response, which
        // differs across outputs for a random network.
        let p = analog();
        let y = p.forward(&[0.0, 0.0, 0.0]);
        let digital = net().forward(&[0.0, 0.0, 0.0]);
        for (a, b) in y.iter().zip(&digital) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn device_count_includes_bias_ports() {
        let p = analog();
        // Layer 1: 2·(3+1)·5 = 40; layer 2: 2·(5+1)·2 = 24.
        assert_eq!(p.device_count(), 64);
    }

    #[test]
    fn disturb_changes_output_restore_reverts() {
        let mut p = analog();
        let x = [0.2, 0.4, 0.6];
        let clean = p.forward(&x);
        let mut rng = StdRng::seed_from_u64(3);
        p.disturb(&VariationModel::process_variation(0.5), &mut rng);
        let noisy = p.forward(&x);
        assert_ne!(clean, noisy);
        p.restore();
        assert_eq!(p.forward(&x), clean);
    }

    #[test]
    fn signal_fluctuation_perturbs_output() {
        let p = analog();
        let x = [0.2, 0.4, 0.6];
        let mut rng = StdRng::seed_from_u64(4);
        let clean = p.forward_noisy(&x, &SignalFluctuation::ideal(), &mut rng);
        assert_eq!(clean, p.forward(&x));
        let noisy = p.forward_noisy(&x, &SignalFluctuation::new(0.2), &mut rng);
        assert_ne!(noisy, clean);
        // Sigmoid outputs remain bounded even under noise.
        assert!(noisy.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn deep_network_maps_correctly() {
        let deep = MlpBuilder::new(&[2, 6, 6, 3]).seed(11).build();
        let p =
            AnalogMlp::from_mlp(&deep, DeviceParams::hfox(), &MappingConfig::default()).unwrap();
        let x = [0.25, 0.75];
        let d = deep.forward(&x);
        let a = p.forward(&x);
        for (u, v) in d.iter().zip(&a) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "analog input length")]
    fn wrong_input_length_panics() {
        let _ = analog().forward(&[0.0, 0.0]);
    }

    #[test]
    fn ideal_wires_match_plain_forward() {
        let p = analog();
        let x = [0.2, 0.5, 0.8];
        assert_eq!(
            p.forward_ir(&x, &crossbar::IrDropConfig::ideal()),
            p.forward(&x)
        );
    }

    #[test]
    fn resistive_wires_perturb_the_output() {
        let p = analog();
        let x = [0.2, 0.5, 0.8];
        let clean = p.forward(&x);
        let dropped = p.forward_ir(&x, &crossbar::IrDropConfig::with_wire_resistance(50.0));
        assert_ne!(clean, dropped);
        // Sigmoid keeps even the degraded outputs bounded.
        assert!(dropped.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn display_mentions_devices() {
        assert!(analog().to_string().contains("RRAM devices"));
    }

    #[test]
    fn forward_with_reused_workspace_is_bit_identical() {
        let p = analog();
        let mut ws = AnalogWorkspace::new();
        // Binary inputs hit the packed path; fractional ones the scalar
        // path; a reused (dirty) workspace must never change the bits.
        for x in [[1.0, 0.0, 1.0], [0.1, 0.5, 0.9], [0.0, 0.0, 0.0]] {
            assert_eq!(p.forward_with(&x, &mut ws), p.forward(&x));
        }
        // The workspace also serves a differently-shaped network.
        let deep = MlpBuilder::new(&[2, 6, 6, 3]).seed(11).build();
        let q =
            AnalogMlp::from_mlp(&deep, DeviceParams::hfox(), &MappingConfig::default()).unwrap();
        assert_eq!(q.forward_with(&[1.0, 0.0], &mut ws), q.forward(&[1.0, 0.0]));
    }
}
