//! MEI: the merged-interface architecture (paper §3.1).
//!
//! Instead of approximating the function between DAC-converted analog
//! values, the RCS "directly learns the relationship between the binary
//! 0/1 arrays which represent the input and output digital data". Each bit
//! of the B-bit interface becomes its own crossbar port; outputs are
//! binarized by comparators working as 1-bit ADCs; and the training loss
//! weights each port by its bit significance (Eq (5)).

use std::fmt;

use crossbar::{Comparator, MappingConfig, SignalFluctuation};
use interface::cost::MeiTopology;
use interface::{BitCoding, InterfaceSpec};
use neural::{Dataset, Mlp, MlpBuilder, TrainConfig, Trainer};
use prng::Rng;
use rram::{DeviceParams, VariationModel};

use crate::analog::{AnalogMlp, AnalogWorkspace};
use crate::bitweights::msb_weighted_loss;
use crate::error::{InferError, TrainRcsError};

/// Configuration of a merged-interface RCS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeiConfig {
    /// Bits per input group (`B_r` on the input side; the paper uses 8).
    pub in_bits: usize,
    /// Bits per output group.
    pub out_bits: usize,
    /// Hidden-layer size (MEI typically needs a larger hidden layer than
    /// the AD/DA design; see Fig 3).
    pub hidden: usize,
    /// Use the Eq (5) MSB-weighted loss (`true`, the paper's proposal) or
    /// the plain Eq (4) loss (`false`, the "MEI unweighted" ablation).
    pub weighted_loss: bool,
    /// Wire coding of both interfaces. [`BitCoding::Binary`] is the paper's
    /// format; [`BitCoding::Gray`] is the Hamming-cliff-free extension
    /// studied by `ablation_encoding`.
    pub coding: BitCoding,
    /// Backprop hyperparameters.
    pub train: TrainConfig,
    /// RRAM cell parameters.
    pub device: DeviceParams,
    /// Weight-to-conductance mapping options.
    pub mapping: MappingConfig,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for MeiConfig {
    fn default() -> Self {
        Self {
            in_bits: 8,
            out_bits: 8,
            hidden: 32,
            weighted_loss: true,
            coding: BitCoding::Binary,
            train: TrainConfig::default(),
            device: DeviceParams::hfox(),
            mapping: MappingConfig::default(),
            seed: 0,
        }
    }
}

impl MeiConfig {
    /// A small, fast configuration for doc tests and smoke tests:
    /// 6-bit interfaces, 16 hidden nodes, a short training budget.
    #[must_use]
    pub fn quick_test() -> Self {
        Self {
            in_bits: 6,
            out_bits: 6,
            hidden: 16,
            train: TrainConfig {
                epochs: 120,
                learning_rate: 1.0,
                ..TrainConfig::default()
            },
            ..Self::default()
        }
    }
}

/// A merged-interface RCS.
///
/// The network's ports are the interface bits themselves:
/// `(I'·B_in) × H × (O'·B_out)` where `I'`/`O'` are the analog
/// dimensionalities of the application.
#[derive(Debug, Clone)]
pub struct MeiRcs {
    mlp: Mlp,
    analog: AnalogMlp,
    input_spec: InterfaceSpec,
    output_spec: InterfaceSpec,
    comparator: Comparator,
    config: MeiConfig,
}

impl MeiRcs {
    /// Train a merged-interface RCS on an analog-valued dataset (all values
    /// in `[0, 1]`); the encoder derives the binary dataset internally.
    ///
    /// # Errors
    ///
    /// Returns [`TrainRcsError`] on invalid configuration, a malformed
    /// dataset, or an unmappable trained network.
    pub fn train(data: &Dataset, config: &MeiConfig) -> Result<Self, TrainRcsError> {
        if config.hidden == 0 {
            return Err(TrainRcsError::InvalidConfig(
                "hidden size must be nonzero".into(),
            ));
        }
        let max = interface::quantize::MAX_BITS;
        if config.in_bits == 0
            || config.in_bits > max
            || config.out_bits == 0
            || config.out_bits > max
        {
            return Err(TrainRcsError::InvalidConfig(format!(
                "bit widths must be in 1..={max}: in={}, out={}",
                config.in_bits, config.out_bits
            )));
        }
        let input_spec =
            InterfaceSpec::new(data.input_dim(), config.in_bits).with_coding(config.coding);
        let output_spec =
            InterfaceSpec::new(data.output_dim(), config.out_bits).with_coding(config.coding);

        // The binary view of the dataset: every analog value becomes its
        // bit array.
        let encoded = data
            .map_inputs(|x| input_spec.encode(x))?
            .map_targets(|_, y| output_spec.encode(y))?;

        let mut mlp = MlpBuilder::new(&[input_spec.ports(), config.hidden, output_spec.ports()])
            .seed(config.seed)
            .build();

        let trainer = if config.weighted_loss {
            Trainer::with_loss(config.train, msb_weighted_loss(&output_spec))
        } else {
            Trainer::new(config.train)
        };
        trainer.train(&mut mlp, &encoded);

        Self::assemble(mlp, config, data.input_dim(), data.output_dim())
    }

    /// Build the physical system around an already-trained network (used by
    /// training and by deserialization).
    pub(crate) fn assemble(
        mlp: Mlp,
        config: &MeiConfig,
        in_groups: usize,
        out_groups: usize,
    ) -> Result<Self, TrainRcsError> {
        let input_spec = InterfaceSpec::new(in_groups, config.in_bits).with_coding(config.coding);
        let output_spec =
            InterfaceSpec::new(out_groups, config.out_bits).with_coding(config.coding);
        if mlp.input_dim() != input_spec.ports() || mlp.output_dim() != output_spec.ports() {
            return Err(TrainRcsError::DimensionMismatch {
                expected: format!("{}→{} ports", input_spec.ports(), output_spec.ports()),
                found: format!("{}→{}", mlp.input_dim(), mlp.output_dim()),
            });
        }
        let analog = AnalogMlp::from_mlp(&mlp, config.device, &config.mapping)?;
        Ok(Self {
            mlp,
            analog,
            input_spec,
            output_spec,
            comparator: Comparator::default(),
            config: *config,
        })
    }

    /// The input interface (`(I'·B_in)`).
    #[must_use]
    pub fn input_spec(&self) -> InterfaceSpec {
        self.input_spec
    }

    /// The output interface (`(O'·B_out)`).
    #[must_use]
    pub fn output_spec(&self) -> InterfaceSpec {
        self.output_spec
    }

    /// Hidden-layer size.
    #[must_use]
    pub fn hidden(&self) -> usize {
        self.config.hidden
    }

    /// The configuration this RCS was trained with.
    #[must_use]
    pub fn config(&self) -> &MeiConfig {
        &self.config
    }

    /// The architecture descriptor for cost estimation.
    #[must_use]
    pub fn topology(&self) -> MeiTopology {
        MeiTopology::new(
            self.input_spec.groups(),
            self.input_spec.bits(),
            self.config.hidden,
            self.output_spec.groups(),
            self.output_spec.bits(),
        )
    }

    /// The digitally-trained network.
    #[must_use]
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// The crossbar realization.
    #[must_use]
    pub fn analog(&self) -> &AnalogMlp {
        &self.analog
    }

    /// Binary-domain inference: 0/1 input ports to 0/1 output ports
    /// (comparator-thresholded).
    ///
    /// # Errors
    ///
    /// Returns [`InferError::InputLength`] if `bits.len()` differs from the
    /// input port count.
    pub fn infer_bits(&self, bits: &[f64]) -> Result<Vec<f64>, InferError> {
        self.check_bits(bits)?;
        Ok(self.comparator.bits(&self.analog.forward(bits)))
    }

    /// [`infer_bits`](Self::infer_bits) against a caller-owned workspace:
    /// the allocation-free serving hot path (the 0/1 input rides the
    /// bit-packed crossbar kernel; scratch lives in `ws`).
    ///
    /// # Errors
    ///
    /// Returns [`InferError::InputLength`] if `bits.len()` differs from the
    /// input port count.
    pub fn infer_bits_with(
        &self,
        bits: &[f64],
        ws: &mut AnalogWorkspace,
    ) -> Result<Vec<f64>, InferError> {
        self.check_bits(bits)?;
        Ok(self.comparator.bits(&self.analog.forward_with(bits, ws)))
    }

    /// Binary-domain inference under signal fluctuation on every analog
    /// voltage (the 0/1 drive levels included — they are physical signals).
    ///
    /// # Errors
    ///
    /// Returns [`InferError::InputLength`] on a wrong-sized input.
    pub fn infer_bits_noisy<R: Rng + ?Sized>(
        &self,
        bits: &[f64],
        fluctuation: &SignalFluctuation,
        rng: &mut R,
    ) -> Result<Vec<f64>, InferError> {
        self.check_bits(bits)?;
        Ok(self
            .comparator
            .bits(&self.analog.forward_noisy(bits, fluctuation, rng)))
    }

    /// Analog-domain convenience: encode the input, infer, decode the output.
    ///
    /// # Errors
    ///
    /// Returns [`InferError::InputLength`] on a wrong-sized input.
    pub fn infer(&self, x: &[f64]) -> Result<Vec<f64>, InferError> {
        if x.len() != self.input_spec.groups() {
            return Err(InferError::InputLength {
                expected: self.input_spec.groups(),
                found: x.len(),
            });
        }
        let bits = self.infer_bits(&self.input_spec.encode(x))?;
        Ok(self.output_spec.decode(&bits))
    }

    /// [`infer`](Self::infer) against a caller-owned workspace (see
    /// [`infer_bits_with`](Self::infer_bits_with)); bit-identical to
    /// [`infer`](Self::infer).
    ///
    /// # Errors
    ///
    /// Returns [`InferError::InputLength`] on a wrong-sized input.
    pub fn infer_with(&self, x: &[f64], ws: &mut AnalogWorkspace) -> Result<Vec<f64>, InferError> {
        if x.len() != self.input_spec.groups() {
            return Err(InferError::InputLength {
                expected: self.input_spec.groups(),
                found: x.len(),
            });
        }
        let bits = self.infer_bits_with(&self.input_spec.encode(x), ws)?;
        Ok(self.output_spec.decode(&bits))
    }

    /// Analog-domain inference under signal fluctuation.
    ///
    /// # Errors
    ///
    /// Returns [`InferError::InputLength`] on a wrong-sized input.
    pub fn infer_noisy<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        fluctuation: &SignalFluctuation,
        rng: &mut R,
    ) -> Result<Vec<f64>, InferError> {
        if x.len() != self.input_spec.groups() {
            return Err(InferError::InputLength {
                expected: self.input_spec.groups(),
                found: x.len(),
            });
        }
        let bits = self.infer_bits_noisy(&self.input_spec.encode(x), fluctuation, rng)?;
        Ok(self.output_spec.decode(&bits))
    }

    /// Analog-domain inference through the wire-resistance (IR-drop) model —
    /// the degradation the paper's 90 nm choice avoids, exposed for the
    /// `ablation_irdrop` study.
    ///
    /// # Errors
    ///
    /// Returns [`InferError::InputLength`] on a wrong-sized input.
    pub fn infer_ir(
        &self,
        x: &[f64],
        config: &crossbar::IrDropConfig,
    ) -> Result<Vec<f64>, InferError> {
        if x.len() != self.input_spec.groups() {
            return Err(InferError::InputLength {
                expected: self.input_spec.groups(),
                found: x.len(),
            });
        }
        let bits_in = self.input_spec.encode(x);
        let bits_out = self
            .comparator
            .bits(&self.analog.forward_ir(&bits_in, config));
        Ok(self.output_spec.decode(&bits_out))
    }

    /// Apply process variation to every RRAM device.
    pub fn disturb<R: Rng + ?Sized>(&mut self, variation: &VariationModel, rng: &mut R) {
        self.analog.disturb(variation, rng);
    }

    /// Restore all devices to their programmed targets.
    pub fn restore(&mut self) {
        self.analog.restore();
    }

    /// Age all devices by `seconds` under a retention model (drift; see
    /// `rram::retention`). `restore` refreshes the arrays.
    pub fn age(&mut self, retention: &rram::RetentionModel, seconds: f64) {
        self.analog.age(retention, seconds);
    }

    /// A physically-smaller RCS with `in_prune` LSB ports removed from every
    /// input group and `out_prune` from every output group (Algorithm 2,
    /// line 22).
    ///
    /// No retraining is needed: a pruned *input* port always carried bit 0
    /// of a truncated encoding, and a zero-voltage row contributes nothing,
    /// so deleting it (and its column of first-layer weights) computes
    /// exactly the same function the full array computes on truncated
    /// inputs. A pruned *output* port just drops its comparator and devices;
    /// the decode treats the missing LSBs as zero.
    ///
    /// # Errors
    ///
    /// Returns [`TrainRcsError::InvalidConfig`] if pruning would remove all
    /// bits of a group, or [`TrainRcsError::Mapping`] if remapping fails.
    pub fn pruned(&self, in_prune: usize, out_prune: usize) -> Result<MeiRcs, TrainRcsError> {
        if in_prune >= self.input_spec.bits() || out_prune >= self.output_spec.bits() {
            return Err(TrainRcsError::InvalidConfig(format!(
                "cannot prune {in_prune}/{out_prune} bits from a {}/{}-bit interface",
                self.input_spec.bits(),
                self.output_spec.bits()
            )));
        }
        if in_prune == 0 && out_prune == 0 {
            return Ok(self.clone());
        }
        let new_in = self.input_spec.prune_lsbs(in_prune);
        let new_out = self.output_spec.prune_lsbs(out_prune);

        // Rebuild the first layer without the pruned input columns and the
        // last layer without the pruned output rows.
        let layers = self.mlp.layers();
        let keep_in: Vec<usize> = (0..self.input_spec.groups())
            .flat_map(|g| {
                let base = g * self.input_spec.bits();
                (0..new_in.bits()).map(move |b| base + b)
            })
            .collect();
        let first = &layers[0];
        let first_rows: Vec<Vec<f64>> = first
            .weights
            .to_rows()
            .into_iter()
            .map(|row| keep_in.iter().map(|&c| row[c]).collect())
            .collect();
        let mut new_first = neural::Layer::zeros(keep_in.len(), first.outputs(), first.activation);
        new_first.weights = neural::Matrix::from_rows(&first_rows);
        new_first.biases = first.biases.clone();

        let keep_out: Vec<usize> = (0..self.output_spec.groups())
            .flat_map(|g| {
                let base = g * self.output_spec.bits();
                (0..new_out.bits()).map(move |b| base + b)
            })
            .collect();
        let last = layers.last().expect("non-empty MLP");
        let last_rows: Vec<Vec<f64>> = keep_out
            .iter()
            .map(|&r| last.weights.row(r).to_vec())
            .collect();
        let mut new_last = neural::Layer::zeros(last.inputs(), keep_out.len(), last.activation);
        new_last.weights = neural::Matrix::from_rows(&last_rows);
        new_last.biases = keep_out.iter().map(|&r| last.biases[r]).collect();

        let mut new_layers = vec![new_first];
        new_layers.extend(layers[1..layers.len() - 1].iter().cloned());
        new_layers.push(new_last);
        let mlp = Mlp::from_layers(new_layers);
        let analog = AnalogMlp::from_mlp(&mlp, self.config.device, &self.config.mapping)?;
        Ok(MeiRcs {
            mlp,
            analog,
            input_spec: new_in,
            output_spec: new_out,
            comparator: self.comparator,
            config: self.config,
        })
    }

    fn check_bits(&self, bits: &[f64]) -> Result<(), InferError> {
        if bits.len() != self.input_spec.ports() {
            return Err(InferError::InputLength {
                expected: self.input_spec.ports(),
                found: bits.len(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for MeiRcs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MEI RCS {}", self.topology())
    }
}

// Index loops in the tests mirror the bit-position subscripts.
#[allow(clippy::needless_range_loop)]
#[cfg(test)]
mod tests {
    use super::*;
    use prng::rngs::StdRng;
    use prng::SeedableRng;

    fn expfit_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::generate(n, &mut rng, |r| {
            let x: f64 = r.gen();
            (vec![x], vec![(-x * x).exp()])
        })
        .unwrap()
    }

    fn quick_rcs(seed: u64) -> MeiRcs {
        let data = expfit_data(500, seed);
        MeiRcs::train(&data, &MeiConfig::quick_test()).unwrap()
    }

    #[test]
    fn trains_and_approximates_expfit() {
        let rcs = quick_rcs(1);
        let test = expfit_data(200, 99);
        let mut total = 0.0;
        for (x, t) in test.iter() {
            let y = rcs.infer(x).unwrap();
            total += (y[0] - t[0]).powi(2);
        }
        let mse = total / 200.0;
        assert!(mse < 0.02, "MEI MSE {mse}");
    }

    #[test]
    fn binary_outputs_are_binary() {
        let rcs = quick_rcs(2);
        let bits = rcs.infer_bits(&rcs.input_spec().encode(&[0.4])).unwrap();
        assert_eq!(bits.len(), 6);
        assert!(bits.iter().all(|&b| b == 0.0 || b == 1.0));
    }

    #[test]
    fn topology_matches_config() {
        let rcs = quick_rcs(3);
        let t = rcs.topology();
        assert_eq!(t.layer_sizes(), [6, 16, 6]);
        assert_eq!(format!("{t}"), "(1·6)×16×(1·6)");
    }

    #[test]
    fn weighted_loss_reduces_msb_errors() {
        // Train weighted and unweighted MEI on the same data/seed; the
        // weighted variant should make fewer MSB mistakes on a test set.
        let data = expfit_data(600, 4);
        let test = expfit_data(300, 5);
        let msb_errors = |rcs: &MeiRcs| -> usize {
            test.iter()
                .map(|(x, t)| {
                    let out = rcs.infer_bits(&rcs.input_spec().encode(x)).unwrap();
                    let want = rcs.output_spec().encode(t);
                    usize::from(out[0] != want[0])
                })
                .sum()
        };
        let weighted = MeiRcs::train(&data, &MeiConfig::quick_test()).unwrap();
        let unweighted = MeiRcs::train(
            &data,
            &MeiConfig {
                weighted_loss: false,
                ..MeiConfig::quick_test()
            },
        )
        .unwrap();
        assert!(
            msb_errors(&weighted) <= msb_errors(&unweighted),
            "weighted {} vs unweighted {}",
            msb_errors(&weighted),
            msb_errors(&unweighted)
        );
    }

    #[test]
    fn infer_errors_on_wrong_lengths() {
        let rcs = quick_rcs(6);
        assert!(rcs.infer(&[0.1, 0.2]).is_err());
        assert!(rcs.infer_bits(&[0.0; 3]).is_err());
    }

    #[test]
    fn pruned_input_matches_truncated_full_network() {
        let rcs = quick_rcs(7);
        let pruned = rcs.pruned(2, 0).unwrap();
        assert_eq!(pruned.input_spec().bits(), 4);
        // Feeding the full network a truncated encoding (pruned bits zeroed)
        // must equal the pruned network on the short encoding.
        for &x in &[0.13, 0.5, 0.86] {
            let mut full_bits = rcs.input_spec().encode(&[x]);
            for b in 4..6 {
                full_bits[b] = 0.0;
            }
            let full_out = rcs.infer_bits(&full_bits).unwrap();
            let short = pruned.input_spec().encode(&[x]);
            // The 4-bit direct encoding *rounds*, the truncation floors;
            // compare on the floored bits.
            let floored: Vec<f64> = full_bits[..4].to_vec();
            assert_eq!(short.len(), 4);
            let pruned_out = pruned.infer_bits(&floored).unwrap();
            assert_eq!(full_out, pruned_out, "x={x}");
        }
    }

    #[test]
    fn pruned_output_drops_lsb_ports() {
        let rcs = quick_rcs(8);
        let pruned = rcs.pruned(0, 3).unwrap();
        assert_eq!(pruned.output_spec().bits(), 3);
        let bits_in = rcs.input_spec().encode(&[0.3]);
        let full = rcs.infer_bits(&bits_in).unwrap();
        let short = pruned.infer_bits(&bits_in).unwrap();
        assert_eq!(&full[..3], &short[..]);
    }

    #[test]
    fn pruning_everything_rejected() {
        let rcs = quick_rcs(9);
        assert!(rcs.pruned(6, 0).is_err());
        assert!(rcs.pruned(0, 6).is_err());
    }

    #[test]
    fn zero_pruning_is_identity() {
        let rcs = quick_rcs(10);
        let same = rcs.pruned(0, 0).unwrap();
        let x = [0.42];
        assert_eq!(rcs.infer(&x).unwrap(), same.infer(&x).unwrap());
    }

    #[test]
    fn noisy_binary_inference_is_reasonably_stable() {
        // MEI's claim: binary signals tolerate fluctuation well. At a mild
        // noise level most outputs should match the clean ones.
        let rcs = quick_rcs(11);
        let bits_in = rcs.input_spec().encode(&[0.6]);
        let clean = rcs.infer_bits(&bits_in).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let mut matches = 0;
        let trials = 50;
        for _ in 0..trials {
            let noisy = rcs
                .infer_bits_noisy(&bits_in, &SignalFluctuation::new(0.05), &mut rng)
                .unwrap();
            if noisy == clean {
                matches += 1;
            }
        }
        assert!(matches > trials / 2, "only {matches}/{trials} stable");
    }

    #[test]
    fn invalid_configs_rejected() {
        let data = expfit_data(20, 13);
        for cfg in [
            MeiConfig {
                hidden: 0,
                ..MeiConfig::quick_test()
            },
            MeiConfig {
                in_bits: 0,
                ..MeiConfig::quick_test()
            },
            MeiConfig {
                out_bits: 99,
                ..MeiConfig::quick_test()
            },
        ] {
            assert!(MeiRcs::train(&data, &cfg).is_err());
        }
    }

    #[test]
    fn display_mentions_topology() {
        assert!(quick_rcs(14).to_string().contains("MEI RCS"));
    }

    #[test]
    fn gray_coded_mei_trains_and_outperforms_binary_on_smooth_task() {
        // The Hamming-cliff effect: a smooth function's binary code targets
        // flip many bits at code boundaries, a Gray code's exactly one.
        let data = expfit_data(500, 15);
        let test = expfit_data(200, 16);
        let binary = MeiRcs::train(&data, &MeiConfig::quick_test()).unwrap();
        let gray = MeiRcs::train(
            &data,
            &MeiConfig {
                coding: interface::BitCoding::Gray,
                ..MeiConfig::quick_test()
            },
        )
        .unwrap();
        assert_eq!(gray.input_spec().coding(), interface::BitCoding::Gray);
        let mse = |rcs: &MeiRcs| {
            test.iter()
                .map(|(x, t)| (rcs.infer(x).unwrap()[0] - t[0]).powi(2))
                .sum::<f64>()
                / test.len() as f64
        };
        assert!(
            mse(&gray) <= mse(&binary),
            "gray {} vs binary {}",
            mse(&gray),
            mse(&binary)
        );
    }

    #[test]
    fn gray_coded_outputs_decode_to_representable_values() {
        let data = expfit_data(300, 17);
        let cfg = MeiConfig {
            coding: interface::BitCoding::Gray,
            ..MeiConfig::quick_test()
        };
        let rcs = MeiRcs::train(&data, &cfg).unwrap();
        let y = rcs.infer(&[0.4]).unwrap()[0];
        let levels = 64.0; // 6-bit quick config
        assert!((y * levels - (y * levels).round()).abs() < 1e-9);
    }

    #[test]
    fn gray_pruning_preserves_coding() {
        let data = expfit_data(300, 18);
        let cfg = MeiConfig {
            coding: interface::BitCoding::Gray,
            ..MeiConfig::quick_test()
        };
        let rcs = MeiRcs::train(&data, &cfg).unwrap();
        let pruned = rcs.pruned(1, 1).unwrap();
        assert_eq!(pruned.input_spec().coding(), interface::BitCoding::Gray);
        assert_eq!(pruned.output_spec().coding(), interface::BitCoding::Gray);
    }
}
