//! Design space exploration (paper Algorithm 2 and §4).
//!
//! Converts a traditional AD/DA RCS into a merged-interface design under
//! accuracy *and* robustness requirements, trading the saved area/power
//! for SAAB learners or a wider hidden layer:
//!
//! 1. search a proper hidden-layer size by the error change rate (Eq 8);
//! 2. bound the ensemble size by the original architecture's area/power
//!    budget (Eq 9, `K_max`);
//! 3. grow a SAAB ensemble learner by learner, each round also training a
//!    single RCS with the equivalent `H·K` hidden layer and keeping the
//!    better of the two (lines 13–19);
//! 4. prune interface LSBs within the quality guarantee (line 22).

use std::fmt;

use interface::cost::{AddaTopology, CostModel};
use neural::Dataset;
use rram::NonIdealFactors;

use crate::error::TrainRcsError;
use crate::eval::{evaluate_mse, mse_scorer, robustness, Rcs};
use crate::mei_arch::{MeiConfig, MeiRcs};
use crate::prune::prune_to_requirement;
use crate::saab::{Saab, SaabConfig, SaabTrainer};

/// How the hidden-layer search grows the candidate size (Algorithm 2,
/// line 1: "linear or exponential searching steps").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HiddenGrowth {
    /// Add a fixed number of nodes per step.
    Linear(usize),
    /// Double the size per step.
    Exponential,
}

impl HiddenGrowth {
    fn next(&self, hidden: usize) -> usize {
        match self {
            HiddenGrowth::Linear(step) => hidden + step.max(&1),
            HiddenGrowth::Exponential => hidden * 2,
        }
    }
}

/// Configuration of the exploration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DseConfig {
    /// Starting hidden size `H_i`.
    pub initial_hidden: usize,
    /// Growth schedule of the hidden search.
    pub growth: HiddenGrowth,
    /// Upper bound on the hidden size.
    pub max_hidden: usize,
    /// Change-rate threshold `η` stopping the hidden search (Eq 8; the paper
    /// suggests 5%).
    pub change_rate_threshold: f64,
    /// Accuracy requirement `ε`: maximum clean test MSE.
    pub max_error: f64,
    /// Robustness requirement (the paper's `γ` recast as an error bound):
    /// maximum mean test MSE under the non-ideal factors.
    pub max_noisy_error: f64,
    /// The non-ideal factor levels `σ`.
    pub factors: NonIdealFactors,
    /// Monte-Carlo trials per robustness evaluation.
    pub robustness_trials: usize,
    /// `B_C` for the SAAB error relaxation.
    pub compare_bits: usize,
    /// Prune interface LSBs after selection (line 22).
    pub prune: bool,
    /// Seed for every stochastic step.
    pub seed: u64,
    /// Worker threads for SAAB learner scoring and sharded backprop inside
    /// the exploration; `0` means "auto". Results are bit-identical for
    /// any value.
    pub threads: usize,
}

impl Default for DseConfig {
    fn default() -> Self {
        Self {
            initial_hidden: 8,
            growth: HiddenGrowth::Exponential,
            max_hidden: 256,
            change_rate_threshold: 0.05,
            max_error: 0.01,
            max_noisy_error: 0.02,
            factors: NonIdealFactors::ideal(),
            robustness_trials: 10,
            compare_bits: 5,
            prune: true,
            seed: 0,
            threads: 0,
        }
    }
}

/// The design the exploration selected.
///
/// (The variants intentionally hold the full systems by value — the result
/// is created once per exploration, so the size difference is irrelevant.)
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum DseDesign {
    /// A single merged-interface RCS.
    Single(MeiRcs),
    /// A SAAB ensemble.
    Ensemble(Saab),
}

impl DseDesign {
    /// Number of RCS arrays in the design.
    #[must_use]
    pub fn learner_count(&self) -> usize {
        match self {
            DseDesign::Single(_) => 1,
            DseDesign::Ensemble(s) => s.len(),
        }
    }

    /// A reference to the design as an evaluable [`Rcs`].
    pub fn as_rcs_mut(&mut self) -> &mut dyn Rcs {
        match self {
            DseDesign::Single(r) => r,
            DseDesign::Ensemble(s) => s,
        }
    }

    /// A shared reference to the design as an evaluable [`Rcs`].
    #[must_use]
    pub fn as_rcs(&self) -> &dyn Rcs {
        match self {
            DseDesign::Single(r) => r,
            DseDesign::Ensemble(s) => s,
        }
    }
}

/// The exploration outcome.
#[derive(Debug, Clone)]
pub struct DseResult {
    /// The selected design (the best found, even when infeasible).
    pub design: DseDesign,
    /// Whether both requirements were met ("Mission Impossible" otherwise).
    pub feasible: bool,
    /// Clean test MSE of the selected design.
    pub error: f64,
    /// Mean test MSE under the non-ideal factors.
    pub noisy_error: f64,
    /// Hidden size selected by the Eq (8) search.
    pub hidden: usize,
    /// Ensemble budget from Eq (9).
    pub k_max: usize,
    /// Fractional area saved relative to the AD/DA architecture (accounting
    /// for all learners).
    pub area_saving: f64,
    /// Fractional power saved.
    pub power_saving: f64,
    /// Human-readable trace of every decision.
    pub log: Vec<String>,
}

impl fmt::Display for DseResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} design: {} learner(s), hidden {}, MSE {:.5} (noisy {:.5}), area saved {:.1}%, power saved {:.1}%",
            if self.feasible { "feasible" } else { "INFEASIBLE" },
            self.design.learner_count(),
            self.hidden,
            self.error,
            self.noisy_error,
            100.0 * self.area_saving,
            100.0 * self.power_saving,
        )
    }
}

/// Run the Algorithm 2 exploration.
///
/// `adda` describes the traditional architecture being replaced (its cost is
/// the budget); `mei_base` carries the training hyperparameters, device and
/// bit-width choices (its `hidden` field is overridden by the search).
///
/// # Errors
///
/// Propagates training and configuration errors.
pub fn explore(
    train: &Dataset,
    test: &Dataset,
    adda: &AddaTopology,
    mei_base: &MeiConfig,
    config: &DseConfig,
    cost: &CostModel,
) -> Result<DseResult, TrainRcsError> {
    if config.initial_hidden == 0 || config.max_hidden < config.initial_hidden {
        return Err(TrainRcsError::InvalidConfig(
            "hidden search bounds must satisfy 0 < initial ≤ max".into(),
        ));
    }
    let mut log = Vec::new();

    // ---- Line 1: hidden-layer search by error change rate (Eq 8). ----
    let train_at = |hidden: usize, seed: u64| -> Result<MeiRcs, TrainRcsError> {
        let mut cfg = *mei_base;
        cfg.hidden = hidden;
        cfg.seed = seed;
        cfg.train.seed = seed;
        cfg.train.threads = config.threads;
        MeiRcs::train(train, &cfg)
    };
    let mut hidden = config.initial_hidden;
    let mut rcs = train_at(hidden, config.seed)?;
    let mut mse = evaluate_mse(&rcs, test);
    log.push(format!("hidden search: H={hidden} → MSE {mse:.6}"));
    loop {
        let next = config.growth.next(hidden);
        if next > config.max_hidden {
            log.push(format!(
                "hidden search stopped at cap {}",
                config.max_hidden
            ));
            break;
        }
        let candidate = train_at(next, config.seed)?;
        let next_mse = evaluate_mse(&candidate, test);
        let eta = ((next_mse - mse) / mse).abs();
        log.push(format!(
            "hidden search: H={next} → MSE {next_mse:.6} (η={eta:.3})"
        ));
        if next_mse < mse {
            rcs = candidate;
            mse = next_mse;
            hidden = next;
        }
        if eta < config.change_rate_threshold {
            log.push(format!(
                "change rate below {} — H={hidden} selected",
                config.change_rate_threshold
            ));
            break;
        }
        if next_mse >= mse && next != hidden {
            // Growing stopped helping; keep the smaller design.
            log.push(format!("no improvement at H={next} — H={hidden} selected"));
            break;
        }
    }

    // ---- Line 2: the Eq (9) ensemble budget. ----
    let mei_topology = rcs.topology();
    let k_max = cost.k_max(adda, &mei_topology);
    log.push(format!("K_max = {k_max} (area/power budget of {adda})"));

    // ---- Lines 3–6: does a single RCS already satisfy both requirements?
    let noisy = |r: &mut dyn Rcs| {
        robustness(
            r,
            test,
            &config.factors,
            config.robustness_trials,
            config.seed,
            mse_scorer,
        )
        .mean
    };
    let mut rcs_for_noise = rcs.clone();
    let mut noisy_error = noisy(&mut rcs_for_noise);
    log.push(format!("single RCS: MSE {mse:.6}, noisy {noisy_error:.6}"));

    let mut design = DseDesign::Single(rcs.clone());
    let mut error = mse;
    let mut feasible = mse <= config.max_error && noisy_error <= config.max_noisy_error;

    // ---- Lines 9–20: grow SAAB vs a wider single network. ----
    if !feasible && k_max >= 2 {
        let saab_cfg = SaabConfig {
            rounds: k_max,
            compare_bits: config.compare_bits.min(mei_base.out_bits),
            factors: config.factors,
            samples_per_round: None,
            group_error_tolerance: 0.0,
            seed: config.seed,
            threads: config.threads,
        };
        let mut trainer = SaabTrainer::new(
            train,
            &{
                let mut cfg = *mei_base;
                cfg.hidden = hidden;
                cfg
            },
            &saab_cfg,
        )?;

        for k in 2..=k_max {
            let _ = trainer.boost()?;
            if trainer.learner_count() == 0 {
                continue;
            }
            let mut ensemble = trainer.ensemble();
            let ens_error = evaluate_mse(&ensemble, test);
            let ens_noisy = noisy(&mut ensemble);
            log.push(format!(
                "K={k}: SAAB({}) MSE {ens_error:.6}, noisy {ens_noisy:.6}",
                trainer.learner_count()
            ));

            // Line 18: the equivalent single RCS with hidden H·K.
            let wide_hidden = (hidden * k).min(config.max_hidden.max(hidden * k));
            let wide = train_at(wide_hidden, config.seed.wrapping_add(k as u64))?;
            let wide_error = evaluate_mse(&wide, test);
            let mut wide_for_noise = wide.clone();
            let wide_noisy = noisy(&mut wide_for_noise);
            log.push(format!(
                "K={k}: wide single (H={wide_hidden}) MSE {wide_error:.6}, noisy {wide_noisy:.6}"
            ));

            // Line 19: keep the better candidate; prefer the single network
            // when performance is similar (it saves output-side hardware).
            let saab_score = ens_error + ens_noisy;
            let wide_score = wide_error + wide_noisy;
            let (cand, cand_err, cand_noisy): (DseDesign, f64, f64) =
                if wide_score <= saab_score * 1.05 {
                    (DseDesign::Single(wide), wide_error, wide_noisy)
                } else {
                    (DseDesign::Ensemble(ensemble), ens_error, ens_noisy)
                };
            if cand_err + cand_noisy < error + noisy_error {
                design = cand;
                error = cand_err;
                noisy_error = cand_noisy;
            }
            if error <= config.max_error && noisy_error <= config.max_noisy_error {
                feasible = true;
                log.push(format!("requirements met at K={k}"));
                break;
            }
        }
        if !feasible {
            log.push("Mission Impossible: requirements unmet within K_max".into());
        }
    } else if !feasible {
        log.push("Mission Impossible: no ensemble budget (K_max < 2)".into());
    }

    // ---- Line 22: prune interface LSBs within the quality guarantee. ----
    if config.prune {
        let budget = if feasible {
            config.max_error
        } else {
            error.max(config.max_error)
        };
        match &design {
            DseDesign::Single(r) => {
                let report = prune_to_requirement(r, test, budget)?;
                if report.inputs_pruned + report.outputs_pruned > 0 {
                    log.push(format!(
                        "pruned {} input / {} output LSBs → {}",
                        report.inputs_pruned,
                        report.outputs_pruned,
                        report.rcs.topology()
                    ));
                    error = report.mse;
                    design = DseDesign::Single(report.rcs);
                }
            }
            DseDesign::Ensemble(s) => {
                // Uniform pruning across learners, verified at ensemble level.
                let mut best: Option<(Saab, usize, f64)> = None;
                for p in 1..s.output_spec().bits() {
                    let candidate = s.pruned(0, p)?;
                    let m = evaluate_mse(&candidate, test);
                    if m <= budget {
                        best = Some((candidate, p, m));
                    } else {
                        break;
                    }
                }
                if let Some((pruned, p, m)) = best {
                    log.push(format!("pruned {p} output LSBs from every learner"));
                    error = m;
                    design = DseDesign::Ensemble(pruned);
                }
            }
        }
    }

    let (final_topology, learners) = match &design {
        DseDesign::Single(r) => (r.topology(), 1),
        DseDesign::Ensemble(s) => (s.learners()[0].topology(), s.len()),
    };
    let area_saving = 1.0 - learners as f64 * cost.area_mei(&final_topology) / cost.area_adda(adda);
    let power_saving =
        1.0 - learners as f64 * cost.power_mei(&final_topology) / cost.power_adda(adda);

    Ok(DseResult {
        design,
        feasible,
        error,
        noisy_error,
        hidden,
        k_max,
        area_saving,
        power_saving,
        log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prng::rngs::StdRng;
    use prng::{Rng, SeedableRng};

    fn expfit_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::generate(n, &mut rng, |r| {
            let x: f64 = r.gen();
            (vec![x], vec![(-x * x).exp()])
        })
        .unwrap()
    }

    fn quick_mei() -> MeiConfig {
        MeiConfig::quick_test()
    }

    fn quick_dse() -> DseConfig {
        DseConfig {
            initial_hidden: 8,
            max_hidden: 32,
            max_error: 0.02,
            max_noisy_error: 0.05,
            robustness_trials: 2,
            compare_bits: 4,
            ..DseConfig::default()
        }
    }

    #[test]
    fn growth_schedules() {
        assert_eq!(HiddenGrowth::Linear(4).next(8), 12);
        assert_eq!(HiddenGrowth::Exponential.next(8), 16);
        assert_eq!(
            HiddenGrowth::Linear(0).next(8),
            9,
            "zero step still advances"
        );
    }

    #[test]
    fn explore_finds_feasible_expfit_design() {
        let train = expfit_data(500, 1);
        let test = expfit_data(200, 2);
        let adda = AddaTopology::new(1, 8, 1, 8);
        let result = explore(
            &train,
            &test,
            &adda,
            &quick_mei(),
            &quick_dse(),
            &CostModel::dac2015(),
        )
        .unwrap();
        assert!(result.feasible, "log: {:?}", result.log);
        assert!(result.error <= 0.02);
        assert!(result.area_saving > 0.0, "MEI should save area");
        assert!(!result.log.is_empty());
    }

    #[test]
    fn impossible_requirements_are_reported() {
        let train = expfit_data(300, 3);
        let test = expfit_data(100, 4);
        let adda = AddaTopology::new(1, 8, 1, 8);
        let cfg = DseConfig {
            max_error: 1e-12, // unreachable
            max_noisy_error: 1e-12,
            ..quick_dse()
        };
        let result = explore(
            &train,
            &test,
            &adda,
            &quick_mei(),
            &cfg,
            &CostModel::dac2015(),
        )
        .unwrap();
        assert!(!result.feasible);
        assert!(result.log.iter().any(|l| l.contains("Mission Impossible")));
    }

    #[test]
    fn invalid_bounds_rejected() {
        let train = expfit_data(50, 5);
        let test = expfit_data(20, 6);
        let adda = AddaTopology::new(1, 8, 1, 8);
        let cfg = DseConfig {
            initial_hidden: 16,
            max_hidden: 8,
            ..quick_dse()
        };
        assert!(explore(
            &train,
            &test,
            &adda,
            &quick_mei(),
            &cfg,
            &CostModel::dac2015()
        )
        .is_err());
    }

    #[test]
    fn result_display_is_informative() {
        let train = expfit_data(300, 7);
        let test = expfit_data(100, 8);
        let adda = AddaTopology::new(1, 8, 1, 8);
        let result = explore(
            &train,
            &test,
            &adda,
            &quick_mei(),
            &quick_dse(),
            &CostModel::dac2015(),
        )
        .unwrap();
        let s = result.to_string();
        assert!(s.contains("MSE") && s.contains("saved"));
    }

    #[test]
    fn design_accessors() {
        let train = expfit_data(300, 9);
        let test = expfit_data(100, 10);
        let adda = AddaTopology::new(1, 8, 1, 8);
        let mut result = explore(
            &train,
            &test,
            &adda,
            &quick_mei(),
            &quick_dse(),
            &CostModel::dac2015(),
        )
        .unwrap();
        assert!(result.design.learner_count() >= 1);
        let y = result.design.as_rcs().predict(&[0.5]);
        assert_eq!(y.len(), 1);
        let _ = result.design.as_rcs_mut();
    }
}
