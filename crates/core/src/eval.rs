//! Uniform evaluation across architectures: the [`Rcs`] trait and the
//! Monte-Carlo robustness protocol of paper §5.3.

use std::fmt;

use crossbar::SignalFluctuation;
use neural::Dataset;
use prng::rngs::StdRng;
use prng::{RngCore, SeedableRng};
use rram::{NonIdealFactors, VariationModel};
use runtime::ThreadPool;

use crate::adda::AddaRcs;
use crate::digital::DigitalAnn;
use crate::mei_arch::MeiRcs;

/// Anything that can be evaluated like an RCS: the digital baseline, the
/// AD/DA architecture, MEI, and SAAB ensembles.
///
/// All predictions are in the *analog* domain (`[0, 1]` application values);
/// each implementation handles its own interface conversion internally.
pub trait Rcs {
    /// Output dimensionality in analog values.
    fn output_dim(&self) -> usize;

    /// Noise-free prediction.
    ///
    /// # Panics
    ///
    /// Implementations panic on wrong input lengths (they are driven by
    /// datasets that were validated up front).
    fn predict(&self, x: &[f64]) -> Vec<f64>;

    /// Prediction with signal fluctuation on the analog/binary drive
    /// signals. Digital systems ignore the fluctuation.
    fn predict_noisy(
        &self,
        x: &[f64],
        fluctuation: &SignalFluctuation,
        rng: &mut dyn RngCore,
    ) -> Vec<f64>;

    /// Apply process variation to the device state (no-op for digital).
    fn disturb(&mut self, variation: &VariationModel, rng: &mut dyn RngCore);

    /// Restore the ideal device state (no-op for digital).
    fn restore(&mut self);
}

impl Rcs for DigitalAnn {
    fn output_dim(&self) -> usize {
        self.mlp().output_dim()
    }

    fn predict(&self, x: &[f64]) -> Vec<f64> {
        self.infer(x)
    }

    fn predict_noisy(
        &self,
        x: &[f64],
        _fluctuation: &SignalFluctuation,
        _rng: &mut dyn RngCore,
    ) -> Vec<f64> {
        self.infer(x)
    }

    fn disturb(&mut self, _variation: &VariationModel, _rng: &mut dyn RngCore) {}

    fn restore(&mut self) {}
}

impl Rcs for AddaRcs {
    fn output_dim(&self) -> usize {
        self.mlp().output_dim()
    }

    fn predict(&self, x: &[f64]) -> Vec<f64> {
        self.infer(x).expect("dataset-validated input")
    }

    fn predict_noisy(
        &self,
        x: &[f64],
        fluctuation: &SignalFluctuation,
        rng: &mut dyn RngCore,
    ) -> Vec<f64> {
        self.infer_noisy(x, fluctuation, rng)
            .expect("dataset-validated input")
    }

    fn disturb(&mut self, variation: &VariationModel, rng: &mut dyn RngCore) {
        AddaRcs::disturb(self, variation, rng);
    }

    fn restore(&mut self) {
        AddaRcs::restore(self);
    }
}

impl Rcs for MeiRcs {
    fn output_dim(&self) -> usize {
        self.output_spec().groups()
    }

    fn predict(&self, x: &[f64]) -> Vec<f64> {
        self.infer(x).expect("dataset-validated input")
    }

    fn predict_noisy(
        &self,
        x: &[f64],
        fluctuation: &SignalFluctuation,
        rng: &mut dyn RngCore,
    ) -> Vec<f64> {
        self.infer_noisy(x, fluctuation, rng)
            .expect("dataset-validated input")
    }

    fn disturb(&mut self, variation: &VariationModel, rng: &mut dyn RngCore) {
        MeiRcs::disturb(self, variation, rng);
    }

    fn restore(&mut self) {
        MeiRcs::restore(self);
    }
}

/// Mean per-port squared error of an RCS over a dataset (the "MSE" columns
/// of Table 1).
#[must_use]
pub fn evaluate_mse(rcs: &dyn Rcs, data: &Dataset) -> f64 {
    neural::dataset_mse(|x| rcs.predict(x), data)
}

/// Evaluate an arbitrary scorer (e.g. a `workloads::ErrorMetric`) over the
/// RCS's predictions on a dataset.
///
/// The scorer receives `(predictions, targets)`.
pub fn evaluate_metric<F>(rcs: &dyn Rcs, data: &Dataset, scorer: F) -> f64
where
    F: FnOnce(&[Vec<f64>], &[Vec<f64>]) -> f64,
{
    let predictions: Vec<Vec<f64>> = data.iter().map(|(x, _)| rcs.predict(x)).collect();
    let targets: Vec<Vec<f64>> = data.targets().to_vec();
    scorer(&predictions, &targets)
}

/// Statistics over the Monte-Carlo robustness trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessReport {
    /// Mean score across trials.
    pub mean: f64,
    /// Standard deviation across trials.
    pub std_dev: f64,
    /// Best (lowest) trial score.
    pub min: f64,
    /// Worst (highest) trial score.
    pub max: f64,
    /// Number of trials.
    pub trials: usize,
}

impl fmt::Display for RobustnessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} over {} trials (min {:.4}, max {:.4})",
            self.mean, self.std_dev, self.trials, self.min, self.max
        )
    }
}

/// The paper's robustness protocol (§5.3): under a fixed non-ideal-factor
/// level, re-sample the device variation each trial, score the whole test
/// set with per-sample signal fluctuation, restore, and aggregate across
/// `trials` repetitions.
///
/// The scorer receives `(predictions, targets)` and returns the trial's
/// error; with `NonIdealFactors::ideal()` every trial is identical.
///
/// # Panics
///
/// Panics if `trials` is zero.
pub fn robustness<F>(
    rcs: &mut dyn Rcs,
    data: &Dataset,
    factors: &NonIdealFactors,
    trials: usize,
    seed: u64,
    mut scorer: F,
) -> RobustnessReport
where
    F: FnMut(&[Vec<f64>], &[Vec<f64>]) -> f64,
{
    assert!(trials > 0, "robustness needs at least one trial");
    let mut rng = StdRng::seed_from_u64(seed);
    let variation = VariationModel::process_variation(factors.process_variation);
    let fluctuation = SignalFluctuation::new(factors.signal_fluctuation);
    let targets: Vec<Vec<f64>> = data.targets().to_vec();

    let mut scores = Vec::with_capacity(trials);
    for _ in 0..trials {
        if !variation.is_ideal() {
            rcs.disturb(&variation, &mut rng);
        }
        let predictions: Vec<Vec<f64>> = data
            .iter()
            .map(|(x, _)| rcs.predict_noisy(x, &fluctuation, &mut rng))
            .collect();
        scores.push(scorer(&predictions, &targets));
        if !variation.is_ideal() {
            rcs.restore();
        }
    }

    report_from_scores(&scores)
}

/// Aggregate per-trial scores into a [`RobustnessReport`].
fn report_from_scores(scores: &[f64]) -> RobustnessReport {
    let trials = scores.len();
    let mean = scores.iter().sum::<f64>() / trials as f64;
    let var = scores.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / trials as f64;
    RobustnessReport {
        mean,
        std_dev: var.sqrt(),
        min: scores.iter().cloned().fold(f64::INFINITY, f64::min),
        max: scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        trials,
    }
}

/// The Monte-Carlo robustness protocol of [`robustness`], parallelized
/// over trials on a [`ThreadPool`].
///
/// Unlike [`robustness`], which threads one generator through the trial
/// loop, every trial here derives its own stream from
/// `(seed, trial_index)` via [`prng::substream`] and disturbs its own
/// clone of the system — so the report is **bit-identical for every
/// thread count** (including 1) and across runs, per the workspace's
/// deterministic-parallelism rule (DESIGN.md, "Parallel execution"). The
/// two protocols draw different streams, so their reports differ
/// numerically while agreeing statistically.
///
/// # Panics
///
/// Panics if `trials` is zero.
pub fn robustness_par<T, S>(
    pool: &ThreadPool,
    rcs: &T,
    data: &Dataset,
    factors: &NonIdealFactors,
    trials: usize,
    seed: u64,
    scorer: S,
) -> RobustnessReport
where
    T: Rcs + Clone + Send + Sync,
    S: Fn(&[Vec<f64>], &[Vec<f64>]) -> f64 + Sync,
{
    assert!(trials > 0, "robustness needs at least one trial");
    let variation = VariationModel::process_variation(factors.process_variation);
    let fluctuation = SignalFluctuation::new(factors.signal_fluctuation);
    let targets: Vec<Vec<f64>> = data.targets().to_vec();

    let trial_slots = vec![(); trials];
    let scores = pool.par_map(&trial_slots, |trial, ()| {
        let mut rng = StdRng::seed_from_u64(prng::substream(seed, trial as u64));
        let mut chip = rcs.clone();
        if !variation.is_ideal() {
            chip.disturb(&variation, &mut rng);
        }
        let predictions: Vec<Vec<f64>> = data
            .iter()
            .map(|(x, _)| chip.predict_noisy(x, &fluctuation, &mut rng))
            .collect();
        scorer(&predictions, &targets)
    });

    report_from_scores(&scores)
}

/// One point of a robustness sweep: the σ level and its Monte-Carlo report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The swept non-ideal-factor level.
    pub sigma: f64,
    /// The Monte-Carlo statistics at that level.
    pub report: RobustnessReport,
}

/// Sweep one non-ideal factor across `levels` (the Fig 5 protocol):
/// `factor_of` maps each level to the σ-vector (e.g.
/// [`NonIdealFactors::process_only`]), and every level is evaluated with
/// [`robustness`] under the same seed so levels differ only by σ.
///
/// # Panics
///
/// Panics if `levels` is empty or `trials` is zero.
pub fn sweep_robustness<F, S>(
    rcs: &mut dyn Rcs,
    data: &Dataset,
    levels: &[f64],
    factor_of: F,
    trials: usize,
    seed: u64,
    mut scorer: S,
) -> Vec<SweepPoint>
where
    F: Fn(f64) -> NonIdealFactors,
    S: FnMut(&[Vec<f64>], &[Vec<f64>]) -> f64,
{
    assert!(!levels.is_empty(), "sweep needs at least one level");
    levels
        .iter()
        .map(|&sigma| SweepPoint {
            sigma,
            report: robustness(rcs, data, &factor_of(sigma), trials, seed, &mut scorer),
        })
        .collect()
}

/// [`sweep_robustness`] on the parallel protocol: every level is
/// evaluated with [`robustness_par`] under the same seed, so levels
/// differ only by σ and the whole sweep is bit-identical for any thread
/// count.
///
/// # Panics
///
/// Panics if `levels` is empty or `trials` is zero.
// One argument over clippy's limit, to stay parallel to sweep_robustness.
#[allow(clippy::too_many_arguments)]
pub fn sweep_robustness_par<T, F, S>(
    pool: &ThreadPool,
    rcs: &T,
    data: &Dataset,
    levels: &[f64],
    factor_of: F,
    trials: usize,
    seed: u64,
    scorer: S,
) -> Vec<SweepPoint>
where
    T: Rcs + Clone + Send + Sync,
    F: Fn(f64) -> NonIdealFactors,
    S: Fn(&[Vec<f64>], &[Vec<f64>]) -> f64 + Sync,
{
    assert!(!levels.is_empty(), "sweep needs at least one level");
    levels
        .iter()
        .map(|&sigma| SweepPoint {
            sigma,
            report: robustness_par(pool, rcs, data, &factor_of(sigma), trials, seed, &scorer),
        })
        .collect()
}

/// Mean-squared-error scorer for [`robustness`] — the default when no
/// application metric applies.
#[must_use]
pub fn mse_scorer(predictions: &[Vec<f64>], targets: &[Vec<f64>]) -> f64 {
    let mut total = 0.0;
    for (p, t) in predictions.iter().zip(targets) {
        let se: f64 = p.iter().zip(t).map(|(a, b)| (a - b) * (a - b)).sum();
        total += se / t.len() as f64;
    }
    total / predictions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adda::AddaConfig;
    use crate::mei_arch::MeiConfig;
    use neural::TrainConfig;
    use prng::Rng;

    fn expfit_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::generate(n, &mut rng, |r| {
            let x: f64 = r.gen();
            (vec![x], vec![(-x * x).exp()])
        })
        .unwrap()
    }

    fn quick_train() -> TrainConfig {
        TrainConfig {
            epochs: 100,
            learning_rate: 1.0,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn digital_ann_is_noise_immune() {
        let data = expfit_data(200, 1);
        let mut ann = DigitalAnn::train(&data, 6, &quick_train(), 0).unwrap();
        let clean = evaluate_mse(&ann, &data);
        let report = robustness(
            &mut ann,
            &data,
            &NonIdealFactors::new(0.5, 0.5),
            5,
            7,
            mse_scorer,
        );
        assert!((report.mean - clean).abs() < 1e-12);
        // Identical trials up to variance-accumulation rounding.
        assert!(report.std_dev < 1e-15);
    }

    #[test]
    fn noisy_trials_degrade_analog_rcs() {
        let data = expfit_data(200, 2);
        let mut rcs = AddaRcs::train(
            &data,
            &AddaConfig {
                train: quick_train(),
                ..AddaConfig::default()
            },
        )
        .unwrap();
        let clean = evaluate_mse(&rcs, &data);
        let noisy = robustness(
            &mut rcs,
            &data,
            &NonIdealFactors::new(0.3, 0.2),
            10,
            3,
            mse_scorer,
        );
        assert!(
            noisy.mean > clean,
            "noise must hurt: {clean} vs {}",
            noisy.mean
        );
        assert!(noisy.std_dev > 0.0);
        assert!(noisy.min <= noisy.mean && noisy.mean <= noisy.max);
        // Device state restored after the report.
        assert!((evaluate_mse(&rcs, &data) - clean).abs() < 1e-12);
    }

    #[test]
    fn robustness_is_seeded() {
        let data = expfit_data(100, 3);
        let mut rcs = MeiRcs::train(&data, &MeiConfig::quick_test()).unwrap();
        let sigma = NonIdealFactors::new(0.2, 0.1);
        let a = robustness(&mut rcs, &data, &sigma, 4, 11, mse_scorer);
        let b = robustness(&mut rcs, &data, &sigma, 4, 11, mse_scorer);
        assert_eq!(a, b);
    }

    #[test]
    fn evaluate_metric_passes_predictions_through() {
        let data = expfit_data(50, 4);
        let ann = DigitalAnn::train(&data, 4, &quick_train(), 1).unwrap();
        let count = evaluate_metric(&ann, &data, |p, t| {
            assert_eq!(p.len(), t.len());
            p.len() as f64
        });
        assert_eq!(count, 50.0);
    }

    #[test]
    fn ideal_factors_give_zero_variance() {
        let data = expfit_data(80, 5);
        let mut rcs = MeiRcs::train(&data, &MeiConfig::quick_test()).unwrap();
        let report = robustness(&mut rcs, &data, &NonIdealFactors::ideal(), 3, 0, mse_scorer);
        assert_eq!(report.std_dev, 0.0);
        assert_eq!(report.min, report.max);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let data = expfit_data(10, 6);
        let mut ann = DigitalAnn::train(&data, 2, &quick_train(), 0).unwrap();
        let _ = robustness(&mut ann, &data, &NonIdealFactors::ideal(), 0, 0, mse_scorer);
    }

    #[test]
    fn sweep_is_monotone_for_analog_rcs() {
        let data = expfit_data(120, 7);
        let mut rcs = MeiRcs::train(&data, &MeiConfig::quick_test()).unwrap();
        let points = sweep_robustness(
            &mut rcs,
            &data,
            &[0.0, 0.1, 0.4],
            NonIdealFactors::process_only,
            8,
            3,
            mse_scorer,
        );
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].sigma, 0.0);
        assert!(points[0].report.mean <= points[2].report.mean);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_sweep_rejected() {
        let data = expfit_data(20, 8);
        let mut ann = DigitalAnn::train(&data, 2, &quick_train(), 0).unwrap();
        let _ = sweep_robustness(
            &mut ann,
            &data,
            &[],
            NonIdealFactors::process_only,
            1,
            0,
            mse_scorer,
        );
    }

    #[test]
    fn parallel_robustness_is_thread_count_invariant() {
        let data = expfit_data(80, 9);
        let rcs = MeiRcs::train(&data, &MeiConfig::quick_test()).unwrap();
        let sigma = NonIdealFactors::new(0.2, 0.1);
        let serial = robustness_par(&ThreadPool::new(1), &rcs, &data, &sigma, 6, 17, mse_scorer);
        for threads in [2, 4, 8] {
            let parallel = robustness_par(
                &ThreadPool::new(threads),
                &rcs,
                &data,
                &sigma,
                6,
                17,
                mse_scorer,
            );
            assert_eq!(serial.mean.to_bits(), parallel.mean.to_bits());
            assert_eq!(serial.std_dev.to_bits(), parallel.std_dev.to_bits());
            assert_eq!(serial.min.to_bits(), parallel.min.to_bits());
            assert_eq!(serial.max.to_bits(), parallel.max.to_bits());
        }
    }

    #[test]
    fn parallel_robustness_agrees_statistically_with_serial() {
        let data = expfit_data(100, 10);
        let mut rcs = MeiRcs::train(&data, &MeiConfig::quick_test()).unwrap();
        let sigma = NonIdealFactors::new(0.2, 0.1);
        let a = robustness(&mut rcs, &data, &sigma, 12, 5, mse_scorer);
        let b = robustness_par(&ThreadPool::new(4), &rcs, &data, &sigma, 12, 5, mse_scorer);
        // Different streams, same distribution: means within a few σ.
        let spread = (a.std_dev + b.std_dev).max(1e-6);
        assert!(
            (a.mean - b.mean).abs() < 6.0 * spread,
            "serial {a} vs parallel {b}"
        );
        // And the device state is untouched (clones absorbed the disturbs).
        let clean = evaluate_mse(&rcs, &data);
        let again = evaluate_mse(&rcs, &data);
        assert_eq!(clean.to_bits(), again.to_bits());
    }

    #[test]
    fn parallel_sweep_matches_pointwise_calls() {
        let data = expfit_data(60, 11);
        let rcs = MeiRcs::train(&data, &MeiConfig::quick_test()).unwrap();
        let pool = ThreadPool::new(3);
        let points = sweep_robustness_par(
            &pool,
            &rcs,
            &data,
            &[0.0, 0.2],
            NonIdealFactors::process_only,
            4,
            7,
            mse_scorer,
        );
        assert_eq!(points.len(), 2);
        let lone = robustness_par(
            &pool,
            &rcs,
            &data,
            &NonIdealFactors::process_only(0.2),
            4,
            7,
            mse_scorer,
        );
        assert_eq!(points[1].report, lone);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn parallel_zero_trials_rejected() {
        let data = expfit_data(10, 12);
        let ann = DigitalAnn::train(&data, 2, &quick_train(), 0).unwrap();
        let _ = robustness_par(
            &ThreadPool::new(2),
            &ann,
            &data,
            &NonIdealFactors::ideal(),
            0,
            0,
            mse_scorer,
        );
    }

    #[test]
    fn report_display_has_stats() {
        let r = RobustnessReport {
            mean: 0.1,
            std_dev: 0.01,
            min: 0.08,
            max: 0.12,
            trials: 9,
        };
        let s = r.to_string();
        assert!(s.contains("0.1") && s.contains('9'));
    }
}
