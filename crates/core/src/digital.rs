//! The "Digital ANN" baseline: the paper's ideal CPU implementation with
//! 32-bit floating-point numbers (we use `f64`; the difference is far below
//! every other error source in the comparison).

use std::fmt;

use neural::{Dataset, Mlp, MlpBuilder, TrainConfig, TrainReport, Trainer};

use crate::error::TrainRcsError;

/// The floating-point ANN baseline of Table 1's "Digital" column.
///
/// ```no_run
/// use mei::DigitalAnn;
/// use neural::{Dataset, TrainConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let data = Dataset::new(vec![vec![0.5]], vec![vec![0.5]])?;
/// let ann = DigitalAnn::train(&data, 8, &TrainConfig::default(), 0)?;
/// let y = ann.infer(&[0.5]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DigitalAnn {
    mlp: Mlp,
    report: TrainReport,
}

impl DigitalAnn {
    /// Train a 3-layer `I×hidden×O` ANN on the dataset (dimensions taken
    /// from the data).
    ///
    /// # Errors
    ///
    /// Returns [`TrainRcsError::InvalidConfig`] if `hidden` is zero.
    pub fn train(
        data: &Dataset,
        hidden: usize,
        config: &TrainConfig,
        seed: u64,
    ) -> Result<Self, TrainRcsError> {
        if hidden == 0 {
            return Err(TrainRcsError::InvalidConfig(
                "hidden size must be nonzero".into(),
            ));
        }
        let mut mlp = MlpBuilder::new(&[data.input_dim(), hidden, data.output_dim()])
            .seed(seed)
            .build();
        let report = Trainer::new(*config).train(&mut mlp, data);
        Ok(Self { mlp, report })
    }

    /// Wrap an already-trained network.
    #[must_use]
    pub fn from_mlp(mlp: Mlp, report: TrainReport) -> Self {
        Self { mlp, report }
    }

    /// Forward pass.
    #[must_use]
    pub fn infer(&self, x: &[f64]) -> Vec<f64> {
        self.mlp.forward(x)
    }

    /// The underlying network.
    #[must_use]
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// The training report.
    #[must_use]
    pub fn report(&self) -> &TrainReport {
        &self.report
    }
}

impl fmt::Display for DigitalAnn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "digital ANN: {}", self.mlp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prng::rngs::StdRng;
    use prng::{Rng, SeedableRng};

    fn expfit_data(n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(2);
        Dataset::generate(n, &mut rng, |r| {
            let x: f64 = r.gen();
            (vec![x], vec![(-x * x).exp()])
        })
        .unwrap()
    }

    #[test]
    fn digital_ann_fits_expfit_tightly() {
        let data = expfit_data(400);
        let cfg = TrainConfig {
            epochs: 300,
            learning_rate: 1.0,
            ..TrainConfig::default()
        };
        let ann = DigitalAnn::train(&data, 8, &cfg, 1).unwrap();
        let mse = neural::mlp_mse(ann.mlp(), &data);
        assert!(mse < 1e-3, "digital baseline MSE {mse}");
    }

    #[test]
    fn zero_hidden_rejected() {
        let data = expfit_data(10);
        let err = DigitalAnn::train(&data, 0, &TrainConfig::default(), 0).unwrap_err();
        assert!(matches!(err, TrainRcsError::InvalidConfig(_)));
    }

    #[test]
    fn infer_matches_underlying_mlp() {
        let data = expfit_data(50);
        let cfg = TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        };
        let ann = DigitalAnn::train(&data, 4, &cfg, 3).unwrap();
        assert_eq!(ann.infer(&[0.3]), ann.mlp().forward(&[0.3]));
        assert!(ann.report().epochs_run == 10);
    }

    #[test]
    fn display_nonempty() {
        let data = expfit_data(10);
        let cfg = TrainConfig {
            epochs: 1,
            ..TrainConfig::default()
        };
        let ann = DigitalAnn::train(&data, 2, &cfg, 0).unwrap();
        assert!(ann.to_string().contains("digital ANN"));
    }
}
