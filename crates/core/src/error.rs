//! Error types shared across the crate.

use std::error::Error;
use std::fmt;

use crossbar::MapWeightsError;
use neural::DatasetError;

/// Error training or constructing an RCS.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainRcsError {
    /// The training dataset is malformed.
    Dataset(DatasetError),
    /// The trained weights could not be mapped onto crossbar conductances.
    Mapping(MapWeightsError),
    /// The dataset dimensions don't match the requested topology.
    DimensionMismatch {
        /// What was expected (e.g. "2 inputs").
        expected: String,
        /// What the dataset provided.
        found: String,
    },
    /// A configuration value is out of range.
    InvalidConfig(String),
}

impl fmt::Display for TrainRcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainRcsError::Dataset(e) => write!(f, "invalid training dataset: {e}"),
            TrainRcsError::Mapping(e) => write!(f, "weight mapping failed: {e}"),
            TrainRcsError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            TrainRcsError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for TrainRcsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TrainRcsError::Dataset(e) => Some(e),
            TrainRcsError::Mapping(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DatasetError> for TrainRcsError {
    fn from(e: DatasetError) -> Self {
        TrainRcsError::Dataset(e)
    }
}

impl From<MapWeightsError> for TrainRcsError {
    fn from(e: MapWeightsError) -> Self {
        TrainRcsError::Mapping(e)
    }
}

/// Error running inference on an RCS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferError {
    /// The input vector has the wrong length.
    InputLength {
        /// Expected length.
        expected: usize,
        /// Provided length.
        found: usize,
    },
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::InputLength { expected, found } => {
                write!(f, "input vector has length {found}, expected {expected}")
            }
        }
    }
}

impl Error for InferError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = TrainRcsError::DimensionMismatch {
            expected: "2 inputs".into(),
            found: "3 inputs".into(),
        };
        assert!(e.to_string().contains("2 inputs"));
        let e = InferError::InputLength {
            expected: 4,
            found: 2,
        };
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn conversions_preserve_source() {
        let src = DatasetError::Empty;
        let e: TrainRcsError = src.into();
        assert!(Error::source(&e).is_some());
        let e: TrainRcsError = MapWeightsError::EmptyMatrix.into();
        assert!(e.to_string().contains("mapping"));
    }
}
