//! Persistence for trained merged-interface systems.
//!
//! A trained [`MeiRcs`] round-trips through a text container that embeds the
//! interface geometry, the device parameters the crossbars were programmed
//! with, and the `neural::io` network body — so a design found by the DSE
//! can be checked in and re-deployed without retraining:
//!
//! ```text
//! meircs v1
//! interface <in_groups> <in_bits> <out_groups> <out_bits> <coding>
//! hidden <H>
//! device <g_on> <g_off> <levels|continuous> <rate> <v_th> <window_exp>
//! weighted_loss <true|false>
//! --- network ---
//! mlp v1
//! …
//! ```

use std::error::Error;
use std::fmt;

use interface::BitCoding;
use neural::{Mlp, ParseMlpError};
use rram::{DeviceParams, QuantizationMode};

use crate::error::TrainRcsError;
use crate::mei_arch::{MeiConfig, MeiRcs};

/// Error reading a serialized [`MeiRcs`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParseRcsError {
    /// The header line is missing or has the wrong magic/version.
    BadHeader,
    /// A structural line is malformed.
    BadStructure(String),
    /// The embedded network is malformed.
    Network(ParseMlpError),
    /// The network shape contradicts the declared interfaces.
    ShapeMismatch(String),
    /// Remapping the weights onto crossbars failed.
    Rebuild(String),
}

impl fmt::Display for ParseRcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseRcsError::BadHeader => {
                write!(f, "missing or unsupported header (want `meircs v1`)")
            }
            ParseRcsError::BadStructure(s) => write!(f, "malformed line: {s}"),
            ParseRcsError::Network(e) => write!(f, "embedded network: {e}"),
            ParseRcsError::ShapeMismatch(s) => write!(f, "shape mismatch: {s}"),
            ParseRcsError::Rebuild(s) => write!(f, "could not rebuild crossbars: {s}"),
        }
    }
}

impl Error for ParseRcsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseRcsError::Network(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseMlpError> for ParseRcsError {
    fn from(e: ParseMlpError) -> Self {
        ParseRcsError::Network(e)
    }
}

fn coding_name(c: BitCoding) -> &'static str {
    match c {
        BitCoding::Binary => "binary",
        BitCoding::Gray => "gray",
    }
}

fn coding_from(s: &str) -> Result<BitCoding, ParseRcsError> {
    match s {
        "binary" => Ok(BitCoding::Binary),
        "gray" => Ok(BitCoding::Gray),
        other => Err(ParseRcsError::BadStructure(format!(
            "unknown coding `{other}`"
        ))),
    }
}

impl MeiRcs {
    /// Serialize this system (interfaces, device parameters, trained
    /// weights) to the `meircs v1` text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let cfg = self.config();
        let dev = cfg.device;
        let levels = match dev.quantization {
            QuantizationMode::Continuous => "continuous".to_string(),
            QuantizationMode::Levels(n) => n.to_string(),
        };
        format!(
            "meircs v1\ninterface {} {} {} {} {}\nhidden {}\ndevice {:?} {:?} {} {:?} {:?} {}\nweighted_loss {}\n--- network ---\n{}",
            self.input_spec().groups(),
            self.input_spec().bits(),
            self.output_spec().groups(),
            self.output_spec().bits(),
            coding_name(self.input_spec().coding()),
            self.hidden(),
            dev.g_on,
            dev.g_off,
            levels,
            dev.program_rate,
            dev.v_threshold,
            dev.window_exponent,
            cfg.weighted_loss,
            self.mlp().to_text(),
        )
    }

    /// Parse a system from the `meircs v1` text format, reprogramming fresh
    /// crossbars from the stored weights.
    ///
    /// # Errors
    ///
    /// Returns [`ParseRcsError`] on malformed input or if the stored shape
    /// is inconsistent.
    pub fn from_text(text: &str) -> Result<MeiRcs, ParseRcsError> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some("meircs v1") {
            return Err(ParseRcsError::BadHeader);
        }
        let structural = |line: Option<&str>, prefix: &str| -> Result<Vec<String>, ParseRcsError> {
            let line = line.ok_or_else(|| ParseRcsError::BadStructure("unexpected EOF".into()))?;
            let body = line
                .strip_prefix(prefix)
                .ok_or_else(|| ParseRcsError::BadStructure(line.to_string()))?;
            Ok(body.split_whitespace().map(ToString::to_string).collect())
        };

        let iface = structural(lines.next(), "interface ")?;
        if iface.len() != 5 {
            return Err(ParseRcsError::BadStructure(format!(
                "interface {}",
                iface.join(" ")
            )));
        }
        let parse_usize = |s: &str| -> Result<usize, ParseRcsError> {
            s.parse()
                .map_err(|_| ParseRcsError::BadStructure(s.to_string()))
        };
        let parse_f64 = |s: &str| -> Result<f64, ParseRcsError> {
            s.parse()
                .map_err(|_| ParseRcsError::BadStructure(s.to_string()))
        };
        let in_groups = parse_usize(&iface[0])?;
        let in_bits = parse_usize(&iface[1])?;
        let out_groups = parse_usize(&iface[2])?;
        let out_bits = parse_usize(&iface[3])?;
        let coding = coding_from(&iface[4])?;

        let hidden = parse_usize(
            structural(lines.next(), "hidden ")?
                .first()
                .ok_or_else(|| ParseRcsError::BadStructure("hidden".into()))?,
        )?;

        let dev = structural(lines.next(), "device ")?;
        if dev.len() != 6 {
            return Err(ParseRcsError::BadStructure(format!(
                "device {}",
                dev.join(" ")
            )));
        }
        let quantization = if dev[2] == "continuous" {
            QuantizationMode::Continuous
        } else {
            QuantizationMode::Levels(
                dev[2]
                    .parse()
                    .map_err(|_| ParseRcsError::BadStructure(dev[2].clone()))?,
            )
        };
        let device = DeviceParams {
            g_on: parse_f64(&dev[0])?,
            g_off: parse_f64(&dev[1])?,
            quantization,
            program_rate: parse_f64(&dev[3])?,
            v_threshold: parse_f64(&dev[4])?,
            window_exponent: parse_usize(&dev[5])? as u32,
        };
        if !device.is_valid() {
            return Err(ParseRcsError::BadStructure(
                "invalid device parameters".into(),
            ));
        }

        let weighted = structural(lines.next(), "weighted_loss ")?;
        let weighted_loss = match weighted.first().map(String::as_str) {
            Some("true") => true,
            Some("false") => false,
            _ => return Err(ParseRcsError::BadStructure("weighted_loss".into())),
        };

        let sep = lines.next();
        if sep.map(str::trim) != Some("--- network ---") {
            return Err(ParseRcsError::BadStructure(
                "missing network separator".into(),
            ));
        }
        let body: String = lines.collect::<Vec<_>>().join("\n");
        let mlp = Mlp::from_text(&body)?;

        if mlp.input_dim() != in_groups * in_bits || mlp.output_dim() != out_groups * out_bits {
            return Err(ParseRcsError::ShapeMismatch(format!(
                "network {}×…×{} vs interfaces ({in_groups}·{in_bits}) / ({out_groups}·{out_bits})",
                mlp.input_dim(),
                mlp.output_dim()
            )));
        }

        let config = MeiConfig {
            in_bits,
            out_bits,
            hidden,
            weighted_loss,
            coding,
            device,
            ..MeiConfig::default()
        };
        MeiRcs::from_trained(mlp, &config, in_groups, out_groups)
            .map_err(|e| ParseRcsError::Rebuild(e.to_string()))
    }
}

impl MeiRcs {
    /// Build a system around an already-trained network — the constructor
    /// deserialization uses, public so externally-trained weights (or
    /// hand-crafted ones in tests) can be deployed onto crossbars too.
    ///
    /// # Errors
    ///
    /// Returns [`TrainRcsError::DimensionMismatch`] if the network's port
    /// counts don't match `in_groups·in_bits` / `out_groups·out_bits`, or a
    /// mapping error if the weights cannot be programmed.
    pub fn from_trained(
        mlp: Mlp,
        config: &MeiConfig,
        in_groups: usize,
        out_groups: usize,
    ) -> Result<MeiRcs, TrainRcsError> {
        MeiRcs::assemble(mlp, config, in_groups, out_groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::Dataset;
    use prng::rngs::StdRng;
    use prng::{Rng, SeedableRng};

    fn trained() -> MeiRcs {
        let mut rng = StdRng::seed_from_u64(3);
        let data = Dataset::generate(300, &mut rng, |r| {
            let x: f64 = r.gen();
            (vec![x], vec![(-x * x).exp()])
        })
        .unwrap();
        let mut cfg = MeiConfig::quick_test();
        cfg.train.epochs = 40;
        MeiRcs::train(&data, &cfg).unwrap()
    }

    #[test]
    fn roundtrip_preserves_behaviour() {
        let rcs = trained();
        let text = rcs.to_text();
        let back = MeiRcs::from_text(&text).unwrap();
        for &x in &[0.1, 0.33, 0.5, 0.77, 0.95] {
            assert_eq!(rcs.infer(&[x]).unwrap(), back.infer(&[x]).unwrap(), "x={x}");
        }
        assert_eq!(rcs.topology(), back.topology());
        assert_eq!(rcs.input_spec().coding(), back.input_spec().coding());
    }

    #[test]
    fn gray_coding_survives_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        let data = Dataset::generate(200, &mut rng, |r| {
            let x: f64 = r.gen();
            (vec![x], vec![x])
        })
        .unwrap();
        let mut cfg = MeiConfig::quick_test();
        cfg.coding = BitCoding::Gray;
        cfg.train.epochs = 20;
        let rcs = MeiRcs::train(&data, &cfg).unwrap();
        let back = MeiRcs::from_text(&rcs.to_text()).unwrap();
        assert_eq!(back.input_spec().coding(), BitCoding::Gray);
        assert_eq!(rcs.infer(&[0.5]).unwrap(), back.infer(&[0.5]).unwrap());
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(matches!(
            MeiRcs::from_text(""),
            Err(ParseRcsError::BadHeader)
        ));
        assert!(matches!(
            MeiRcs::from_text("nope"),
            Err(ParseRcsError::BadHeader)
        ));
        assert!(matches!(
            MeiRcs::from_text("meircs v1\ninterface 1 2 3"),
            Err(ParseRcsError::BadStructure(_))
        ));
        let rcs = trained();
        let text = rcs.to_text();
        // Corrupt the interface so the embedded network no longer fits.
        let bad = text.replace("interface 1 6 1 6", "interface 1 5 1 6");
        assert!(matches!(
            MeiRcs::from_text(&bad),
            Err(ParseRcsError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            ParseRcsError::BadHeader,
            ParseRcsError::BadStructure("x".into()),
            ParseRcsError::Network(ParseMlpError::BadHeader),
            ParseRcsError::ShapeMismatch("y".into()),
            ParseRcsError::Rebuild("z".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
