//! The exponential bit-significance weights of paper Eq (5).
//!
//! "We set larger weights to the MSBs while the least significant bits will
//! be given smaller weights. For example, we exponentially increase the
//! weight of each bit and set the MSB and LSB weights in an 8-bit output
//! array to 2⁰ and 2⁻⁷" (§3.1).
//!
//! Eq (5) squares the weighted error, `(w_p·(t_p − o_p))²`, so the
//! *penalty* a port pays is proportional to `w_p²`. We therefore set
//! `w_p = 2^(−b/2)` for bit `b`, making the effective quadratic penalty
//! ratio across an 8-bit group exactly `2⁰ : 2⁻¹ : … : 2⁻⁷` — the range the
//! paper quotes — and, equally important, keeping the LSB gradient at
//! `2⁻⁷` of the MSB's rather than `2⁻¹⁴` (which would freeze the LSB ports
//! at their random initialization and corrupt the decoded output). The
//! penalty per bit then matches each bit's place value, which is the
//! weighting that minimizes the decoded analog error.

use interface::InterfaceSpec;
use neural::WeightedMse;

/// Per-port weights for a grouped binary interface: within each group the
/// MSB gets weight `1` and each following bit `1/√2` of the previous, so the
/// *squared* (effective) penalty halves per bit — `2⁰ … 2^-(B-1)` across a
/// B-bit group. Groups are independent and identical.
///
/// ```
/// use interface::InterfaceSpec;
/// use mei::exponential_bit_weights;
///
/// let w = exponential_bit_weights(&InterfaceSpec::new(1, 3));
/// // Squared weights are 1, 1/2, 1/4.
/// assert!((w[1] * w[1] - 0.5).abs() < 1e-12);
/// assert!((w[2] * w[2] - 0.25).abs() < 1e-12);
/// ```
#[must_use]
pub fn exponential_bit_weights(spec: &InterfaceSpec) -> Vec<f64> {
    let mut weights = Vec::with_capacity(spec.ports());
    for _ in 0..spec.groups() {
        for b in 0..spec.bits() {
            weights.push(0.5f64.powf(b as f64 / 2.0));
        }
    }
    weights
}

/// The Eq (5) loss over a grouped interface: exponential bit weights wrapped
/// in a [`WeightedMse`].
#[must_use]
pub fn msb_weighted_loss(spec: &InterfaceSpec) -> WeightedMse {
    WeightedMse::new(exponential_bit_weights(spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_bit_penalties_span_paper_range() {
        let w = exponential_bit_weights(&InterfaceSpec::new(1, 8));
        assert_eq!(w.len(), 8);
        assert_eq!(w[0], 1.0); // MSB penalty: 2^0
                               // LSB *squared* weight (the Eq (5) penalty) is 2^-7.
        assert!((w[7] * w[7] - 0.5f64.powi(7)).abs() < 1e-12);
    }

    #[test]
    fn weights_strictly_decrease_within_group() {
        let w = exponential_bit_weights(&InterfaceSpec::new(1, 6));
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
            // Effective penalty halves per bit.
            assert!((pair[0] * pair[0] / (pair[1] * pair[1]) - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn groups_repeat_identically() {
        let w = exponential_bit_weights(&InterfaceSpec::new(3, 4));
        assert_eq!(w.len(), 12);
        assert_eq!(&w[0..4], &w[4..8]);
        assert_eq!(&w[4..8], &w[8..12]);
    }

    #[test]
    fn loss_penalizes_msb_error_more() {
        let loss = msb_weighted_loss(&InterfaceSpec::new(1, 6));
        let target = vec![1.0; 6];
        let mut msb_wrong = target.clone();
        msb_wrong[0] = 0.0;
        let mut lsb_wrong = target.clone();
        lsb_wrong[5] = 0.0;
        // Penalty ratio MSB:LSB = 2^5 = 32.
        let ratio = loss.loss(&target, &msb_wrong) / loss.loss(&target, &lsb_wrong);
        assert!((ratio - 32.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn single_bit_interface_is_uniform() {
        let w = exponential_bit_weights(&InterfaceSpec::new(5, 1));
        assert_eq!(w, vec![1.0; 5]);
    }
}
