//! SAAB: Serial Array Adaptive Boosting (paper Algorithm 1).
//!
//! An AdaBoost variant customized for merged-interface RCS:
//!
//! * the per-learner error `ε_k` compares only the most significant `B_C`
//!   bits of each output group (relaxed error, line 6);
//! * the evaluation injects the non-ideal factors `σ` so "sensitive"
//!   samples count as hard ones (line 6);
//! * training samples for each new learner are drawn from the boosted
//!   distribution `p_n` (line 4);
//! * the ensemble answers by `α`-weighted voting over the learners' output
//!   bit patterns (line 10).

use std::collections::HashMap;
use std::fmt;

use crossbar::SignalFluctuation;
use interface::InterfaceSpec;
use neural::Dataset;
use prng::rngs::StdRng;
use prng::{RngCore, SeedableRng};
use rram::{NonIdealFactors, VariationModel};
use runtime::ThreadPool;

use crate::error::{InferError, TrainRcsError};
use crate::mei_arch::{MeiConfig, MeiRcs};

/// Error floor preventing `α → ∞` when a learner is perfect on the
/// weighted sample.
const EPSILON_FLOOR: f64 = 1e-6;

/// Configuration of a SAAB run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaabConfig {
    /// Number of boosting rounds `K` (learners trained).
    pub rounds: usize,
    /// `B_C`: most significant bits per output group compared when scoring
    /// a learner (the paper suggests 4–6 of 8).
    pub compare_bits: usize,
    /// Non-ideal factors injected while scoring learners (line 6).
    pub factors: NonIdealFactors,
    /// Training samples drawn per round (`None` = the dataset size).
    pub samples_per_round: Option<usize>,
    /// Fraction of output *groups* allowed to miss their top `B_C` bits
    /// while the sample still counts as correct. `0.0` (the default) is the
    /// paper's strict rule; wide-output benchmarks (e.g. JPEG's 64 groups)
    /// need a nonzero tolerance for any learner to beat chance — the same
    /// relaxation motivation the paper gives for `B_C` itself.
    pub group_error_tolerance: f64,
    /// RNG seed for resampling and noisy evaluation.
    pub seed: u64,
    /// Worker threads for per-sample learner scoring (line 6's noisy
    /// evaluation over the whole dataset) and for each learner's sharded
    /// backprop ([`neural::TrainConfig::threads`]); `0` means "auto"
    /// ([`std::thread::available_parallelism`], the default). Per the
    /// deterministic-parallelism rule every sample derives its stream from
    /// `(round_seed, sample_index)`, so the trained ensemble is
    /// bit-identical for every thread count.
    pub threads: usize,
}

impl Default for SaabConfig {
    fn default() -> Self {
        Self {
            rounds: 3,
            compare_bits: 5,
            factors: NonIdealFactors::ideal(),
            samples_per_round: None,
            group_error_tolerance: 0.0,
            seed: 0,
            threads: 0,
        }
    }
}

/// What one boosting round produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoostOutcome {
    /// A learner was added with the given weighted error and vote weight.
    Added {
        /// Weighted error `ε_k` under the non-ideal factors.
        error: f64,
        /// Vote weight `α_k = ½·ln((1−ε)/ε)`.
        alpha: f64,
    },
    /// The learner's weighted error reached 0.5 and it was discarded; the
    /// sample distribution was reset to uniform (AdaBoost.M1 handling).
    Discarded {
        /// The offending weighted error.
        error: f64,
    },
}

/// Incremental SAAB state: owns the boosted sample distribution so the
/// design space exploration can add one learner at a time (Algorithm 2,
/// lines 13–17).
#[derive(Debug)]
pub struct SaabTrainer {
    data: Dataset,
    encoded_targets: Vec<Vec<f64>>,
    mei_config: MeiConfig,
    config: SaabConfig,
    sample_weights: Vec<f64>,
    learners: Vec<(MeiRcs, f64)>,
    rng: StdRng,
    rounds_attempted: usize,
}

impl SaabTrainer {
    /// Start a SAAB run over an analog-valued dataset.
    ///
    /// # Errors
    ///
    /// Returns [`TrainRcsError::InvalidConfig`] if `compare_bits` is zero or
    /// exceeds the output bit width, or `rounds` is zero.
    pub fn new(
        data: &Dataset,
        mei_config: &MeiConfig,
        config: &SaabConfig,
    ) -> Result<Self, TrainRcsError> {
        if config.rounds == 0 {
            return Err(TrainRcsError::InvalidConfig(
                "SAAB needs at least one round".into(),
            ));
        }
        if config.compare_bits == 0 || config.compare_bits > mei_config.out_bits {
            return Err(TrainRcsError::InvalidConfig(format!(
                "compare_bits must be in 1..={}, got {}",
                mei_config.out_bits, config.compare_bits
            )));
        }
        if !(0.0..1.0).contains(&config.group_error_tolerance) {
            return Err(TrainRcsError::InvalidConfig(format!(
                "group error tolerance must be in [0, 1), got {}",
                config.group_error_tolerance
            )));
        }
        let output_spec = InterfaceSpec::new(data.output_dim(), mei_config.out_bits);
        let encoded_targets: Vec<Vec<f64>> = data
            .targets()
            .iter()
            .map(|y| output_spec.encode(y))
            .collect();
        Ok(Self {
            data: data.clone(),
            encoded_targets,
            mei_config: *mei_config,
            config: *config,
            sample_weights: vec![1.0 / data.len() as f64; data.len()],
            learners: Vec::new(),
            rng: StdRng::seed_from_u64(config.seed),
            rounds_attempted: 0,
        })
    }

    /// Learners accepted so far.
    #[must_use]
    pub fn learner_count(&self) -> usize {
        self.learners.len()
    }

    /// The current (unnormalized) sample weights `w_n`.
    #[must_use]
    pub fn sample_weights(&self) -> &[f64] {
        &self.sample_weights
    }

    /// Run one boosting round (Algorithm 1, lines 3–8).
    ///
    /// # Errors
    ///
    /// Propagates training errors from the underlying [`MeiRcs::train`].
    pub fn boost(&mut self) -> Result<BoostOutcome, TrainRcsError> {
        self.rounds_attempted += 1;
        // Line 3–4: normalize the distribution and draw this round's sample.
        // The first round's distribution is uniform, whose expectation is the
        // original dataset itself — train on it directly rather than on a
        // bootstrap draw, so the anchor learner sees every sample once.
        let n = self.config.samples_per_round.unwrap_or(self.data.len());
        let uniform = self.sample_weights.windows(2).all(|w| w[0] == w[1]);
        let round_data = if uniform && n >= self.data.len() {
            self.data.clone()
        } else {
            self.data
                .resample_weighted(&self.sample_weights, n, &mut self.rng)
        };

        // Line 5: train the new learner (fresh init per round).
        let mut cfg = self.mei_config;
        cfg.seed = self
            .mei_config
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(self.rounds_attempted as u64));
        cfg.train.seed = cfg.seed;
        cfg.train.threads = self.config.threads;
        let mut learner = MeiRcs::train(&round_data, &cfg)?;

        // Line 6: weighted error under the non-ideal factors, comparing the
        // top B_C bits of every output group.
        let correct = self.evaluate_correctness(&mut learner);
        let total_weight: f64 = self.sample_weights.iter().sum();
        let mut epsilon = 0.0;
        for (w, ok) in self.sample_weights.iter().zip(&correct) {
            if !ok {
                epsilon += w / total_weight;
            }
        }

        if epsilon >= 0.5 {
            // A learner no better than chance would get a non-positive vote;
            // discard it and restart from the uniform distribution.
            let uniform = 1.0 / self.data.len() as f64;
            self.sample_weights.fill(uniform);
            return Ok(BoostOutcome::Discarded { error: epsilon });
        }
        let epsilon_safe = epsilon.max(EPSILON_FLOOR);

        // Line 7: the learner's vote weight.
        let alpha = 0.5 * ((1.0 - epsilon_safe) / epsilon_safe).ln();

        // Line 8: re-weight the samples.
        for (w, ok) in self.sample_weights.iter_mut().zip(&correct) {
            *w *= if *ok { (-alpha).exp() } else { alpha.exp() };
        }

        self.learners.push((learner, alpha));
        Ok(BoostOutcome::Added {
            error: epsilon,
            alpha,
        })
    }

    /// The ensemble built from the accepted learners.
    ///
    /// # Panics
    ///
    /// Panics if no learner has been accepted yet.
    #[must_use]
    pub fn ensemble(&self) -> Saab {
        assert!(!self.learners.is_empty(), "no accepted learners yet");
        Saab {
            learners: self.learners.clone(),
        }
    }

    /// Per-sample correctness of a learner on the top `B_C` bits of every
    /// output group, evaluated under the configured non-ideal factors.
    ///
    /// Scoring is embarrassingly parallel over samples and runs on
    /// [`SaabConfig::threads`] workers: the trainer's stream contributes
    /// one draw (the round's evaluation seed), and sample `i` derives its
    /// own generator from `(eval_seed, i)` — so the correctness vector,
    /// and with it the whole boosted ensemble, is bit-identical for every
    /// thread count.
    fn evaluate_correctness(&mut self, learner: &mut MeiRcs) -> Vec<bool> {
        let factors = self.config.factors;
        let variation = VariationModel::process_variation(factors.process_variation);
        let fluctuation = SignalFluctuation::new(factors.signal_fluctuation);
        if !variation.is_ideal() {
            learner.disturb(&variation, &mut self.rng);
        }
        let eval_seed = self.rng.next_u64();
        let out_bits = learner.output_spec().bits();
        let groups = learner.output_spec().groups();
        let bc = self.config.compare_bits.min(out_bits);
        let allowed_wrong = (self.config.group_error_tolerance * groups as f64).floor() as usize;
        let in_spec = learner.input_spec();
        let pool = ThreadPool::new(self.config.threads);
        let encoded_targets = &self.encoded_targets;
        let scored: &MeiRcs = learner;
        let correct: Vec<bool> = pool.par_map(self.data.inputs(), |i, x| {
            let target_bits = &encoded_targets[i];
            let mut rng: StdRng = prng::substream_rng(eval_seed, i as u64);
            let bits_in = in_spec.encode(x);
            let out = scored
                .infer_bits_noisy(&bits_in, &fluctuation, &mut rng)
                .expect("validated input");
            let wrong_groups = (0..groups)
                .filter(|g| {
                    let base = g * out_bits;
                    (0..bc).any(|b| out[base + b] != target_bits[base + b])
                })
                .count();
            wrong_groups <= allowed_wrong
        });
        if !variation.is_ideal() {
            learner.restore();
        }
        correct
    }
}

/// A trained SAAB ensemble: `K` merged-interface RCSs voting with weights
/// `α_k` (Algorithm 1, line 10).
#[derive(Debug, Clone)]
pub struct Saab {
    learners: Vec<(MeiRcs, f64)>,
}

impl Saab {
    /// Train a complete ensemble by running `config.rounds` boosting rounds.
    ///
    /// Discarded rounds (learners at chance level) do not add learners; the
    /// final ensemble holds only accepted ones.
    ///
    /// # Errors
    ///
    /// Returns [`TrainRcsError`] if configuration or training fails, or if
    /// *no* round produced an acceptable learner.
    pub fn train(
        data: &Dataset,
        mei_config: &MeiConfig,
        config: &SaabConfig,
    ) -> Result<Self, TrainRcsError> {
        let mut trainer = SaabTrainer::new(data, mei_config, config)?;
        for _ in 0..config.rounds {
            let _ = trainer.boost()?;
        }
        if trainer.learner_count() == 0 {
            return Err(TrainRcsError::InvalidConfig(
                "every SAAB round was discarded (learners at chance level)".into(),
            ));
        }
        Ok(trainer.ensemble())
    }

    /// Number of learners.
    #[must_use]
    pub fn len(&self) -> usize {
        self.learners.len()
    }

    /// Whether the ensemble is empty (never true for a trained ensemble).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.learners.is_empty()
    }

    /// The vote weights `α_k`.
    #[must_use]
    pub fn alphas(&self) -> Vec<f64> {
        self.learners.iter().map(|(_, a)| *a).collect()
    }

    /// The individual learners.
    #[must_use]
    pub fn learners(&self) -> Vec<&MeiRcs> {
        self.learners.iter().map(|(l, _)| l).collect()
    }

    /// The shared input interface.
    ///
    /// # Panics
    ///
    /// Panics if the ensemble is empty.
    #[must_use]
    pub fn input_spec(&self) -> InterfaceSpec {
        self.learners[0].0.input_spec()
    }

    /// The shared output interface.
    ///
    /// # Panics
    ///
    /// Panics if the ensemble is empty.
    #[must_use]
    pub fn output_spec(&self) -> InterfaceSpec {
        self.learners[0].0.output_spec()
    }

    /// Binary-domain ensemble inference: every learner predicts in parallel
    /// (physically), then the digital side tallies the `α`-weighted vote
    /// over complete output bit patterns.
    ///
    /// # Errors
    ///
    /// Returns [`InferError::InputLength`] on a wrong-sized input.
    pub fn infer_bits(&self, bits: &[f64]) -> Result<Vec<f64>, InferError> {
        self.vote(|learner, rng_unused| {
            let _ = rng_unused;
            learner.infer_bits(bits)
        })
    }

    /// Binary-domain inference with signal fluctuation inside each learner.
    ///
    /// # Errors
    ///
    /// Returns [`InferError::InputLength`] on a wrong-sized input.
    pub fn infer_bits_noisy<R: prng::Rng + ?Sized>(
        &self,
        bits: &[f64],
        fluctuation: &SignalFluctuation,
        rng: &mut R,
    ) -> Result<Vec<f64>, InferError> {
        let mut outputs = Vec::with_capacity(self.learners.len());
        for (learner, alpha) in &self.learners {
            outputs.push((learner.infer_bits_noisy(bits, fluctuation, rng)?, *alpha));
        }
        Ok(self.tally(outputs))
    }

    /// Analog-domain convenience: encode, vote, decode.
    ///
    /// # Errors
    ///
    /// Returns [`InferError::InputLength`] on a wrong-sized input.
    pub fn infer(&self, x: &[f64]) -> Result<Vec<f64>, InferError> {
        if x.len() != self.input_spec().groups() {
            return Err(InferError::InputLength {
                expected: self.input_spec().groups(),
                found: x.len(),
            });
        }
        let bits = self.infer_bits(&self.input_spec().encode(x))?;
        Ok(self.output_spec().decode(&bits))
    }

    /// Analog-domain noisy inference.
    ///
    /// # Errors
    ///
    /// Returns [`InferError::InputLength`] on a wrong-sized input.
    pub fn infer_noisy<R: prng::Rng + ?Sized>(
        &self,
        x: &[f64],
        fluctuation: &SignalFluctuation,
        rng: &mut R,
    ) -> Result<Vec<f64>, InferError> {
        if x.len() != self.input_spec().groups() {
            return Err(InferError::InputLength {
                expected: self.input_spec().groups(),
                found: x.len(),
            });
        }
        let bits = self.infer_bits_noisy(&self.input_spec().encode(x), fluctuation, rng)?;
        Ok(self.output_spec().decode(&bits))
    }

    /// Apply process variation to every learner.
    pub fn disturb<R: prng::Rng + ?Sized>(&mut self, variation: &VariationModel, rng: &mut R) {
        for (learner, _) in &mut self.learners {
            learner.disturb(variation, rng);
        }
    }

    /// Restore every learner's devices.
    pub fn restore(&mut self) {
        for (learner, _) in &mut self.learners {
            learner.restore();
        }
    }

    /// A uniformly-pruned ensemble: every learner loses the same LSB ports
    /// (see [`MeiRcs::pruned`]).
    ///
    /// # Errors
    ///
    /// Propagates the per-learner pruning errors.
    pub fn pruned(&self, in_prune: usize, out_prune: usize) -> Result<Saab, TrainRcsError> {
        let learners = self
            .learners
            .iter()
            .map(|(l, a)| Ok((l.pruned(in_prune, out_prune)?, *a)))
            .collect::<Result<Vec<_>, TrainRcsError>>()?;
        Ok(Saab { learners })
    }

    fn vote<F>(&self, mut predict: F) -> Result<Vec<f64>, InferError>
    where
        F: FnMut(&MeiRcs, &mut dyn RngCore) -> Result<Vec<f64>, InferError>,
    {
        let mut dummy = StdRng::seed_from_u64(0);
        let mut outputs = Vec::with_capacity(self.learners.len());
        for (learner, alpha) in &self.learners {
            outputs.push((predict(learner, &mut dummy)?, *alpha));
        }
        Ok(self.tally(outputs))
    }

    /// `argmax_y Σ_k α_k·[R_k(x) = y]` with deterministic tie-breaking,
    /// applied to every output *group* independently — each output number is
    /// its own digital word, so the voting hardware tallies each word
    /// separately (for single-group outputs this is exactly the paper's
    /// line 10).
    fn tally(&self, outputs: Vec<(Vec<f64>, f64)>) -> Vec<f64> {
        let bits = self.output_spec().bits();
        let ports = self.output_spec().ports();
        let mut result = Vec::with_capacity(ports);
        for base in (0..ports).step_by(bits) {
            let group: Vec<(&[f64], f64)> = outputs
                .iter()
                .map(|(out, alpha)| (&out[base..base + bits], *alpha))
                .collect();
            result.extend(tally_group(&group));
        }
        result
    }
}

/// Weighted vote over one output word: `argmax_y Σ_k α_k·[R_k(x) = y]`,
/// ties broken deterministically by the larger bit pattern.
fn tally_group(patterns: &[(&[f64], f64)]) -> Vec<f64> {
    let mut votes: HashMap<Vec<u8>, f64> = HashMap::new();
    for (bits, alpha) in patterns {
        let key: Vec<u8> = bits.iter().map(|&b| u8::from(b >= 0.5)).collect();
        *votes.entry(key).or_insert(0.0) += alpha;
    }
    votes
        .into_iter()
        .max_by(|(ka, wa), (kb, wb)| {
            wa.partial_cmp(wb)
                .expect("finite weights")
                .then_with(|| ka.cmp(kb))
        })
        .expect("at least one learner")
        .0
        .into_iter()
        .map(f64::from)
        .collect()
}

impl fmt::Display for Saab {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SAAB ensemble of {} MEI RCSs", self.len())
    }
}

impl crate::eval::Rcs for Saab {
    fn output_dim(&self) -> usize {
        self.output_spec().groups()
    }

    fn predict(&self, x: &[f64]) -> Vec<f64> {
        self.infer(x).expect("dataset-validated input")
    }

    fn predict_noisy(
        &self,
        x: &[f64],
        fluctuation: &SignalFluctuation,
        rng: &mut dyn RngCore,
    ) -> Vec<f64> {
        self.infer_noisy(x, fluctuation, rng)
            .expect("dataset-validated input")
    }

    fn disturb(&mut self, variation: &VariationModel, rng: &mut dyn RngCore) {
        Saab::disturb(self, variation, rng);
    }

    fn restore(&mut self) {
        Saab::restore(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate_mse, Rcs};
    use prng::Rng;

    fn expfit_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::generate(n, &mut rng, |r| {
            let x: f64 = r.gen();
            (vec![x], vec![(-x * x).exp()])
        })
        .unwrap()
    }

    fn quick_saab(rounds: usize) -> SaabConfig {
        SaabConfig {
            rounds,
            compare_bits: 4,
            ..SaabConfig::default()
        }
    }

    #[test]
    fn trainer_validates_config() {
        let data = expfit_data(50, 1);
        let mei = MeiConfig::quick_test();
        assert!(SaabTrainer::new(&data, &mei, &quick_saab(0)).is_err());
        assert!(SaabTrainer::new(
            &data,
            &mei,
            &SaabConfig {
                compare_bits: 0,
                ..quick_saab(1)
            }
        )
        .is_err());
        assert!(SaabTrainer::new(
            &data,
            &mei,
            &SaabConfig {
                compare_bits: 7,
                ..quick_saab(1)
            } // out_bits = 6
        )
        .is_err());
    }

    #[test]
    fn boosting_adds_learners_and_reweights() {
        let data = expfit_data(300, 2);
        let mut trainer =
            SaabTrainer::new(&data, &MeiConfig::quick_test(), &quick_saab(2)).unwrap();
        let before: Vec<f64> = trainer.sample_weights().to_vec();
        match trainer.boost().unwrap() {
            BoostOutcome::Added { error, alpha } => {
                assert!(error < 0.5);
                assert!(alpha > 0.0);
            }
            BoostOutcome::Discarded { error } => panic!("first learner discarded at ε={error}"),
        }
        assert_eq!(trainer.learner_count(), 1);
        assert_ne!(trainer.sample_weights(), before.as_slice());
    }

    #[test]
    fn misclassified_samples_gain_weight() {
        let data = expfit_data(300, 3);
        let mut trainer =
            SaabTrainer::new(&data, &MeiConfig::quick_test(), &quick_saab(1)).unwrap();
        let uniform = trainer.sample_weights()[0];
        trainer.boost().unwrap();
        let weights = trainer.sample_weights();
        // Weights split into exactly two levels: e^{-α}·u (correct) and
        // e^{α}·u (wrong), with wrong > uniform > correct.
        let min = weights.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = weights.iter().cloned().fold(0.0, f64::max);
        assert!(min < uniform, "correct samples should lose weight");
        assert!(max > uniform, "hard samples should gain weight");
    }

    #[test]
    fn ensemble_votes_and_matches_reasonable_accuracy() {
        let data = expfit_data(500, 4);
        let saab = Saab::train(&data, &MeiConfig::quick_test(), &quick_saab(3)).unwrap();
        assert!(!saab.is_empty());
        assert!(saab.alphas().iter().all(|&a| a > 0.0));
        let test = expfit_data(150, 5);
        let mse = evaluate_mse(&saab, &test);
        assert!(mse < 0.05, "ensemble MSE {mse}");
    }

    #[test]
    fn ensemble_is_at_least_as_good_as_worst_learner() {
        let data = expfit_data(500, 6);
        let test = expfit_data(150, 7);
        let saab = Saab::train(&data, &MeiConfig::quick_test(), &quick_saab(3)).unwrap();
        let ensemble_mse = evaluate_mse(&saab, &test);
        let worst = saab
            .learners()
            .iter()
            .map(|l| evaluate_mse(*l, &test))
            .fold(0.0f64, f64::max);
        assert!(
            ensemble_mse <= worst * 1.5 + 1e-6,
            "ensemble {ensemble_mse} much worse than worst learner {worst}"
        );
    }

    #[test]
    fn voting_follows_alpha_weights() {
        // Two-learner scenario: outputs differ, and the tally must pick the
        // heavier learner's bits.
        let a: (&[f64], f64) = (&[1.0, 0.0], 2.0);
        let b: (&[f64], f64) = (&[0.0, 1.0], 0.5);
        assert_eq!(tally_group(&[a, b]), vec![1.0, 0.0]);
        // Two light learners agreeing outvote one heavy learner.
        let c: (&[f64], f64) = (&[0.0, 1.0], 1.6);
        assert_eq!(tally_group(&[a, b, c]), vec![0.0, 1.0]);
    }

    #[test]
    fn tally_tie_break_is_deterministic() {
        let a: (&[f64], f64) = (&[1.0, 0.0], 1.0);
        let b: (&[f64], f64) = (&[0.0, 1.0], 1.0);
        let first = tally_group(&[a, b]);
        for _ in 0..5 {
            assert_eq!(tally_group(&[a, b]), first);
        }
    }

    #[test]
    fn groups_vote_independently() {
        // Learner A is right on group 0, learner B on group 1; per-group
        // voting should combine the best of both when weights tie toward
        // each (here equal α, tie-break favours the larger pattern per
        // group — so each group resolves independently of the other).
        let data = expfit_data(300, 20);
        let saab = Saab::train(
            &data,
            &MeiConfig::quick_test(),
            &SaabConfig {
                rounds: 2,
                compare_bits: 4,
                ..SaabConfig::default()
            },
        )
        .unwrap();
        // Single-group output here; just confirm ensemble output decodes to
        // the same width as a learner's.
        let bits = saab.infer_bits(&saab.input_spec().encode(&[0.5])).unwrap();
        assert_eq!(bits.len(), saab.output_spec().ports());
    }

    #[test]
    fn noisy_factors_in_scoring_change_weights() {
        let data = expfit_data(200, 8);
        let mei = MeiConfig::quick_test();
        let clean = SaabConfig {
            rounds: 1,
            compare_bits: 4,
            ..SaabConfig::default()
        };
        let noisy = SaabConfig {
            factors: NonIdealFactors::new(0.3, 0.2),
            ..clean
        };
        let mut t1 = SaabTrainer::new(&data, &mei, &clean).unwrap();
        let mut t2 = SaabTrainer::new(&data, &mei, &noisy).unwrap();
        let o1 = t1.boost().unwrap();
        let o2 = t2.boost().unwrap();
        let e1 = match o1 {
            BoostOutcome::Added { error, .. } | BoostOutcome::Discarded { error } => error,
        };
        let e2 = match o2 {
            BoostOutcome::Added { error, .. } | BoostOutcome::Discarded { error } => error,
        };
        assert!(
            e2 >= e1,
            "noisy scoring should not reduce error: {e1} vs {e2}"
        );
    }

    #[test]
    fn training_is_bit_identical_for_every_thread_count() {
        let data = expfit_data(250, 30);
        let train_at = |threads: usize| {
            let saab = Saab::train(
                &data,
                &MeiConfig::quick_test(),
                &SaabConfig {
                    threads,
                    factors: NonIdealFactors::new(0.2, 0.1),
                    ..quick_saab(2)
                },
            )
            .unwrap();
            let alphas: Vec<u64> = saab.alphas().iter().map(|a| a.to_bits()).collect();
            let probe: Vec<u64> = saab
                .infer(&[0.4])
                .unwrap()
                .iter()
                .map(|y| y.to_bits())
                .collect();
            (alphas, probe)
        };
        let serial = train_at(1);
        for threads in [2, 8] {
            assert_eq!(train_at(threads), serial, "threads = {threads}");
        }
    }

    #[test]
    fn saab_implements_rcs_with_restore() {
        let data = expfit_data(200, 9);
        let mut saab = Saab::train(&data, &MeiConfig::quick_test(), &quick_saab(2)).unwrap();
        let clean = evaluate_mse(&saab, &data);
        let mut rng = StdRng::seed_from_u64(10);
        Rcs::disturb(&mut saab, &VariationModel::process_variation(0.4), &mut rng);
        Rcs::restore(&mut saab);
        assert!((evaluate_mse(&saab, &data) - clean).abs() < 1e-12);
    }

    #[test]
    fn pruned_ensemble_shrinks_every_learner() {
        let data = expfit_data(200, 11);
        let saab = Saab::train(&data, &MeiConfig::quick_test(), &quick_saab(2)).unwrap();
        let pruned = saab.pruned(1, 2).unwrap();
        assert_eq!(pruned.input_spec().bits(), 5);
        assert_eq!(pruned.output_spec().bits(), 4);
        assert_eq!(pruned.len(), saab.len());
    }

    #[test]
    fn display_mentions_size() {
        let data = expfit_data(150, 12);
        let saab = Saab::train(&data, &MeiConfig::quick_test(), &quick_saab(1)).unwrap();
        assert!(saab.to_string().contains("SAAB ensemble of 1"));
    }
}
