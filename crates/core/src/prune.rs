//! LSB pruning (paper §4.3 and Algorithm 2, line 22).
//!
//! MEI exposes every interface bit as its own port, so ports "of little
//! importance" can simply be removed:
//!
//! * **inputs** — all groups are treated the same; the LSB of every group is
//!   removed together, the pruned architecture is tested, and the process
//!   repeats until the performance requirement would be violated;
//! * **outputs** — pruned after the input layer is fixed, guided by the rule
//!   that a bit whose place value is well below the RCS's RMS error carries
//!   no information (the paper's "remove the 2⁻⁸ bit once the MSE is ~2⁻¹⁰
//!   or larger").

use neural::Dataset;

use crate::error::TrainRcsError;
use crate::eval::evaluate_mse;
use crate::mei_arch::MeiRcs;

/// Result of a pruning search.
#[derive(Debug, Clone)]
pub struct PruneReport {
    /// The pruned architecture.
    pub rcs: MeiRcs,
    /// LSBs removed from every input group.
    pub inputs_pruned: usize,
    /// LSBs removed from every output group.
    pub outputs_pruned: usize,
    /// Test MSE of the pruned architecture.
    pub mse: f64,
}

/// How many output LSBs the paper's rule of thumb suggests dropping for a
/// given test MSE: a bit of place value `2^-b` is prunable when
/// `2^-b ≤ 4·√MSE` — e.g. MSE `2⁻¹⁰` (√ = `2⁻⁵`) allows pruning the `2⁻⁸`
/// bit of an 8-bit output, matching the §4.3 example.
#[must_use]
pub fn suggested_output_pruning(mse: f64, bits: usize) -> usize {
    if mse <= 0.0 {
        return 0;
    }
    let threshold = 4.0 * mse.sqrt();
    let mut prunable = 0;
    // Bit b (1-indexed from the MSB) has place value 2^-b; scan from the LSB.
    for b in (1..=bits).rev() {
        if 0.5f64.powi(b as i32) <= threshold {
            prunable += 1;
        } else {
            break;
        }
    }
    // Never suggest removing every bit.
    prunable.min(bits - 1)
}

/// Greedily prune input-group LSBs, then output-group LSBs, keeping the
/// test MSE within `max_mse` (Algorithm 2's quality guarantee).
///
/// # Errors
///
/// Propagates remapping errors from [`MeiRcs::pruned`].
pub fn prune_to_requirement(
    rcs: &MeiRcs,
    test: &Dataset,
    max_mse: f64,
) -> Result<PruneReport, TrainRcsError> {
    let base_mse = evaluate_mse(rcs, test);

    // Input pruning: all groups together, one LSB at a time.
    let mut inputs_pruned = 0;
    let mut best = rcs.clone();
    let mut best_mse = base_mse;
    for p in 1..rcs.input_spec().bits() {
        let candidate = rcs.pruned(p, 0)?;
        let mse = evaluate_mse(&candidate, test);
        if mse <= max_mse {
            inputs_pruned = p;
            best = candidate;
            best_mse = mse;
        } else {
            break;
        }
    }

    // Output pruning on top of the fixed input layer, seeded by the rule of
    // thumb and verified on the test set.
    let mut outputs_pruned = 0;
    let suggestion = suggested_output_pruning(best_mse, best.output_spec().bits());
    for p in 1..=suggestion {
        let candidate = best.pruned(0, p - outputs_pruned)?;
        let mse = evaluate_mse(&candidate, test);
        if mse <= max_mse {
            outputs_pruned = p;
            best = candidate;
            best_mse = mse;
        } else {
            break;
        }
    }

    Ok(PruneReport {
        rcs: best,
        inputs_pruned,
        outputs_pruned,
        mse: best_mse,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mei_arch::MeiConfig;
    use prng::rngs::StdRng;
    use prng::{Rng, SeedableRng};

    fn expfit_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::generate(n, &mut rng, |r| {
            let x: f64 = r.gen();
            (vec![x], vec![(-x * x).exp()])
        })
        .unwrap()
    }

    #[test]
    fn rule_of_thumb_matches_paper_example() {
        // MSE ≈ 2⁻¹⁰ on an 8-bit output: the 2⁻⁸ LSB is prunable.
        let p = suggested_output_pruning(0.5f64.powi(10), 8);
        assert!(p >= 1, "paper example prunes at least the LSB, got {p}");
        // A tiny MSE prunes nothing.
        assert_eq!(suggested_output_pruning(1e-12, 8), 0);
        // Huge MSE never suggests removing all bits.
        assert_eq!(suggested_output_pruning(1.0, 8), 7);
        assert_eq!(suggested_output_pruning(0.0, 8), 0);
    }

    #[test]
    fn suggestion_is_monotone_in_mse() {
        let mut last = 0;
        for exp in (2..20).rev() {
            let s = suggested_output_pruning(0.5f64.powi(exp), 8);
            assert!(s >= last || s == last, "pruning suggestion not monotone");
            last = s;
        }
    }

    #[test]
    fn pruning_respects_requirement() {
        let train = expfit_data(500, 1);
        let test = expfit_data(200, 2);
        let rcs = MeiRcs::train(&train, &MeiConfig::quick_test()).unwrap();
        let base = evaluate_mse(&rcs, &test);
        // A generous budget allows pruning; the result must stay within it.
        let budget = (base * 4.0).max(0.01);
        let report = prune_to_requirement(&rcs, &test, budget).unwrap();
        assert!(report.mse <= budget);
        assert!(report.rcs.input_spec().bits() <= rcs.input_spec().bits());
        assert!(report.rcs.output_spec().bits() <= rcs.output_spec().bits());
    }

    #[test]
    fn tight_budget_prunes_nothing() {
        let train = expfit_data(400, 3);
        let test = expfit_data(150, 4);
        let rcs = MeiRcs::train(&train, &MeiConfig::quick_test()).unwrap();
        let base = evaluate_mse(&rcs, &test);
        // A budget exactly at the base error: any pruning that increases the
        // error is rejected.
        let report = prune_to_requirement(&rcs, &test, base).unwrap();
        assert!(report.mse <= base + 1e-12);
    }

    #[test]
    fn generous_budget_prunes_aggressively() {
        let train = expfit_data(400, 5);
        let test = expfit_data(150, 6);
        let rcs = MeiRcs::train(&train, &MeiConfig::quick_test()).unwrap();
        let report = prune_to_requirement(&rcs, &test, 0.25).unwrap();
        assert!(
            report.inputs_pruned + report.outputs_pruned > 0,
            "a 0.25 MSE budget should allow pruning something"
        );
    }
}
