//! The CNN workload: a binarized conv layer tiled over crossbars feeding
//! a merged-interface classification head.
//!
//! The serving stack has three stages:
//!
//! 1. **Tiled analog conv** ([`crossbar::TiledConv`]) — the ternary conv
//!    layer sharded across differential-pair tiles, each tile sensing its
//!    integer partial sums digitally so the fold is bit-identical at any
//!    tile count (and equal to the digital twin).
//! 2. **Binarization** — the `>0` activation turns the integer feature
//!    map into interface bits.
//! 3. **MEI head** — an [`AnalogMlp`] whose input ports *are* the feature
//!    bits and whose output is a [`InterfaceSpec`]-coded class vector
//!    thresholded by comparators, exactly the [`MeiRcs`] pattern.
//!
//! Training mirrors the split. The conv layer is learned with
//! straight-through SGD ([`neural::conv::train_ste`]); each patch column
//! carries a gradient **significance weight derived from its tile's
//! sense-interface bits** ([`tile_significance`]) — the conv-layer
//! analogue of MEI's Eq (5) bit-significance loss, applied per tile. The
//! head is then trained on the frozen binary features through the
//! existing data-parallel [`Trainer`] with the MSB-weighted loss over the
//! output interface.
//!
//! [`MeiRcs`]: crate::MeiRcs

use std::fmt;

use crossbar::conv::{tile_ranges, ConvShape, ConvWorkspace, TiledConv};
use crossbar::{Comparator, MappingConfig, SignalFluctuation};
use interface::cost::MeiTopology;
use interface::{BitCoding, InterfaceSpec};
use neural::conv::{binarize, train_ste, BinConv, ConvSpec, SteConfig, SteReport};
use neural::{Dataset, Mlp, MlpBuilder, TrainConfig, Trainer};
use prng::Rng;
use rram::{DeviceParams, RetentionModel, VariationModel};

use crate::analog::{AnalogMlp, AnalogWorkspace};
use crate::bitweights::msb_weighted_loss;
use crate::error::{InferError, TrainRcsError};

/// Configuration of a CNN RCS.
#[derive(Debug, Clone, PartialEq)]
pub struct CnnConfig {
    /// Input channels.
    pub in_channels: usize,
    /// Input image height.
    pub in_h: usize,
    /// Input image width.
    pub in_w: usize,
    /// Conv filters (output channels).
    pub filters: usize,
    /// Square kernel edge length.
    pub kernel: usize,
    /// Conv stride.
    pub stride: usize,
    /// Crossbar tiles the conv's patch dimension is sharded over
    /// (clamped to the patch length).
    pub tiles: usize,
    /// Hidden-layer size of the classification head.
    pub hidden: usize,
    /// Interface bits per class score on the head output.
    pub out_bits: usize,
    /// Use the Eq (5) MSB-weighted loss on the head (`true`, the MEI
    /// proposal) or the plain loss (`false`).
    pub weighted_loss: bool,
    /// Wire coding of the output interface.
    pub coding: BitCoding,
    /// Straight-through hyperparameters for the conv stage. When its
    /// `significance` field is `None`, training derives it from the
    /// tiling via [`tile_significance`]; an explicit value wins.
    pub ste: SteConfig,
    /// Backprop hyperparameters for the head.
    pub train: TrainConfig,
    /// RRAM cell parameters.
    pub device: DeviceParams,
    /// Weight-to-conductance mapping options.
    pub mapping: MappingConfig,
    /// Weight-initialization seed (conv and head).
    pub seed: u64,
}

impl Default for CnnConfig {
    fn default() -> Self {
        Self {
            in_channels: 1,
            in_h: 8,
            in_w: 8,
            filters: 6,
            kernel: 3,
            stride: 1,
            tiles: 3,
            hidden: 32,
            out_bits: 6,
            weighted_loss: true,
            coding: BitCoding::Binary,
            ste: SteConfig::default(),
            train: TrainConfig::default(),
            device: DeviceParams::hfox(),
            mapping: MappingConfig::default(),
            seed: 0,
        }
    }
}

impl CnnConfig {
    /// A small, fast configuration for doc tests and smoke tests: 8×8
    /// inputs, 4 filters, 2 tiles, a short training budget.
    #[must_use]
    pub fn quick_test() -> Self {
        Self {
            filters: 4,
            tiles: 2,
            hidden: 20,
            out_bits: 4,
            ste: SteConfig {
                epochs: 40,
                ..SteConfig::default()
            },
            train: TrainConfig {
                epochs: 80,
                learning_rate: 0.5,
                ..TrainConfig::default()
            },
            ..Self::default()
        }
    }

    /// The crossbar-side conv geometry.
    #[must_use]
    pub fn shape(&self) -> ConvShape {
        ConvShape {
            in_channels: self.in_channels,
            in_h: self.in_h,
            in_w: self.in_w,
            filters: self.filters,
            kernel: self.kernel,
            stride: self.stride,
        }
    }

    /// The digital-twin conv geometry (same numbers, dependency-free
    /// mirror type).
    #[must_use]
    pub fn spec(&self) -> ConvSpec {
        ConvSpec {
            in_channels: self.in_channels,
            in_h: self.in_h,
            in_w: self.in_w,
            filters: self.filters,
            kernel: self.kernel,
            stride: self.stride,
        }
    }
}

/// Per-patch-column STE gradient significance under the planned tiling:
/// a column in a tile whose sense interface spans `b` bits weighs
/// `2^(b − b_max)` — columns behind wider (more significant) tile
/// interfaces get proportionally larger gradient, the per-tile analogue
/// of the Eq (5) bit-significance weights.
///
/// # Panics
///
/// Panics if `patch_len` or `tiles` is zero.
#[must_use]
pub fn tile_significance(patch_len: usize, tiles: usize) -> Vec<f64> {
    let ranges = tile_ranges(patch_len, tiles);
    let bits: Vec<i32> = ranges
        .iter()
        .map(|&(_, len)| (usize::BITS - (2 * len).leading_zeros()) as i32)
        .collect();
    let max_bits = bits.iter().copied().max().expect("at least one tile");
    let mut sig = vec![0.0; patch_len];
    for (&(start, len), &b) in ranges.iter().zip(&bits) {
        let w = f64::exp2(f64::from(b - max_bits));
        for s in &mut sig[start..start + len] {
            *s = w;
        }
    }
    sig
}

/// Reusable scratch for [`CnnRcs::infer_with`]: conv tiling buffers plus
/// the head's analog workspace.
#[derive(Debug, Clone, Default)]
pub struct CnnWorkspace {
    conv: ConvWorkspace,
    head: AnalogWorkspace,
    features: Vec<f64>,
}

impl CnnWorkspace {
    /// An empty workspace; buffers grow to the largest model they serve.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// A served CNN: tiled analog conv → binarize → merged-interface head.
#[derive(Debug, Clone)]
pub struct CnnRcs {
    conv: TiledConv,
    twin: BinConv,
    head_mlp: Mlp,
    head: AnalogMlp,
    output_spec: InterfaceSpec,
    comparator: Comparator,
    config: CnnConfig,
    classes: usize,
    ste_report: SteReport,
}

impl CnnRcs {
    /// Train a CNN RCS on a binary-image classification dataset: inputs
    /// are `{0,1}` pixel vectors of `in_channels × in_h × in_w`, targets
    /// one-hot class vectors (their width sets the class count).
    ///
    /// # Errors
    ///
    /// Returns [`TrainRcsError`] on an invalid configuration, a
    /// mis-shaped dataset, or an unmappable trained network.
    pub fn train(data: &Dataset, config: &CnnConfig) -> Result<Self, TrainRcsError> {
        let shape = config
            .shape()
            .validated()
            .map_err(|e| TrainRcsError::InvalidConfig(e.to_string()))?;
        if config.hidden == 0 {
            return Err(TrainRcsError::InvalidConfig(
                "hidden size must be nonzero".into(),
            ));
        }
        let max = interface::quantize::MAX_BITS;
        if config.out_bits == 0 || config.out_bits > max {
            return Err(TrainRcsError::InvalidConfig(format!(
                "out_bits must be in 1..={max}: {}",
                config.out_bits
            )));
        }
        if config.tiles == 0 {
            return Err(TrainRcsError::InvalidConfig("tiles must be nonzero".into()));
        }
        if data.input_dim() != shape.input_len() {
            return Err(TrainRcsError::DimensionMismatch {
                expected: format!("{}-pixel inputs", shape.input_len()),
                found: format!("{}", data.input_dim()),
            });
        }
        let classes = data.output_dim();

        // Stage 1: straight-through conv training, with each patch
        // column's gradient weighted by its tile's interface bits (an
        // explicit config override wins — e.g. uniform weights to make
        // the twin invariant to the serving tile count).
        let significance = config
            .ste
            .significance
            .clone()
            .unwrap_or_else(|| tile_significance(shape.patch_len(), config.tiles));
        let ste = SteConfig {
            significance: Some(significance),
            seed: config.seed,
            ..config.ste.clone()
        };
        let (twin, ste_report) = train_ste(config.spec(), classes, data, &ste)
            .map_err(|e| TrainRcsError::InvalidConfig(e.to_string()))?;

        // Stage 2: shard the learned ternary filters across the tiles.
        let conv = TiledConv::new(
            shape,
            &twin.ternary_weights(),
            config.tiles,
            config.device,
            &config.mapping,
        )
        .map_err(|e| match e {
            crossbar::ConvError::Mapping(m) => TrainRcsError::Mapping(m),
            other => TrainRcsError::InvalidConfig(other.to_string()),
        })?;

        // Stage 3: the head sees the frozen binary features; its targets
        // are the interface-coded one-hot class vectors. Trained through
        // the existing data-parallel Trainer, MSB-weighted as in MEI.
        let output_spec = InterfaceSpec::new(classes, config.out_bits).with_coding(config.coding);
        let encoded = data
            .map_inputs(|x| twin.features(x))?
            .map_targets(|_, y| output_spec.encode(y))?;
        let mut head_mlp = MlpBuilder::new(&[
            config.spec().feature_len(),
            config.hidden,
            output_spec.ports(),
        ])
        .seed(config.seed)
        .build();
        let trainer = if config.weighted_loss {
            Trainer::with_loss(config.train, msb_weighted_loss(&output_spec))
        } else {
            Trainer::new(config.train)
        };
        trainer.train(&mut head_mlp, &encoded);
        let head = AnalogMlp::from_mlp(&head_mlp, config.device, &config.mapping)?;

        Ok(Self {
            conv,
            twin,
            head_mlp,
            head,
            output_spec,
            comparator: Comparator::default(),
            config: config.clone(),
            classes,
            ste_report,
        })
    }

    /// The analog conv stage.
    #[must_use]
    pub fn conv(&self) -> &TiledConv {
        &self.conv
    }

    /// The digital twin of the conv stage (shadow + ternary weights).
    #[must_use]
    pub fn twin(&self) -> &BinConv {
        &self.twin
    }

    /// The analog head.
    #[must_use]
    pub fn head(&self) -> &AnalogMlp {
        &self.head
    }

    /// The digitally-trained head network.
    #[must_use]
    pub fn head_mlp(&self) -> &Mlp {
        &self.head_mlp
    }

    /// The class-score output interface.
    #[must_use]
    pub fn output_spec(&self) -> InterfaceSpec {
        self.output_spec
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The configuration this RCS was trained with.
    #[must_use]
    pub fn config(&self) -> &CnnConfig {
        &self.config
    }

    /// The conv-stage training report.
    #[must_use]
    pub fn ste_report(&self) -> &SteReport {
        &self.ste_report
    }

    /// Expected input length (`in_channels × in_h × in_w`).
    #[must_use]
    pub fn input_len(&self) -> usize {
        self.conv.shape().input_len()
    }

    /// Total RRAM devices (conv tiles + head).
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.conv.device_count() + self.head.device_count()
    }

    /// Total digital interface bits of the conv tile boundary (per-tile
    /// ADC width × filters, summed over tiles).
    #[must_use]
    pub fn tile_interface_bits(&self) -> usize {
        self.conv.interface_bits()
    }

    /// The head's architecture descriptor for cost estimation: input
    /// ports are the 1-bit feature lines, output the coded class scores.
    #[must_use]
    pub fn head_topology(&self) -> MeiTopology {
        MeiTopology::new(
            self.config.spec().feature_len(),
            1,
            self.config.hidden,
            self.classes,
            self.config.out_bits,
        )
    }

    /// Per-tile architecture descriptors: tile `t` is a `len(t)`-port
    /// 1-bit-input stage driving `filters` columns sensed at
    /// [`TiledConv::tile_bits`] bits each.
    #[must_use]
    pub fn tile_topologies(&self) -> Vec<MeiTopology> {
        (0..self.conv.tile_count())
            .map(|t| {
                let (_, len) = self.conv.tile_range(t);
                MeiTopology::new(
                    len,
                    1,
                    self.conv.shape().filters,
                    self.conv.shape().filters,
                    self.conv.tile_bits(t),
                )
            })
            .collect()
    }

    fn check_input(&self, x: &[f64]) -> Result<(), InferError> {
        if x.len() != self.input_len() {
            return Err(InferError::InputLength {
                expected: self.input_len(),
                found: x.len(),
            });
        }
        Ok(())
    }

    fn decode_head(&self, analog_out: &[f64]) -> Vec<f64> {
        self.output_spec.decode(&self.comparator.bits(analog_out))
    }

    /// Analog inference: tiled conv, binarize, head, comparator, decode.
    /// Returns the `classes` decoded scores in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`InferError::InputLength`] on a wrong-sized input.
    pub fn infer(&self, x: &[f64]) -> Result<Vec<f64>, InferError> {
        let mut ws = CnnWorkspace::new();
        self.infer_with(x, &mut ws)
    }

    /// [`infer`](Self::infer) against a caller-owned workspace — the
    /// allocation-light serving hot path. Bit-identical to
    /// [`infer`](Self::infer).
    ///
    /// # Errors
    ///
    /// Returns [`InferError::InputLength`] on a wrong-sized input.
    pub fn infer_with(&self, x: &[f64], ws: &mut CnnWorkspace) -> Result<Vec<f64>, InferError> {
        self.check_input(x)?;
        ws.features = self.conv.forward_with(x, &mut ws.conv);
        for v in &mut ws.features {
            *v = binarize(*v);
        }
        let out = self.head.forward_with(&ws.features, &mut ws.head);
        Ok(self.decode_head(&out))
    }

    /// Analog inference with signal fluctuation on the head's analog
    /// voltages. The conv tile boundary is digital (integer-sensed), so
    /// fluctuation is modeled on the head stage where signals are
    /// continuous.
    ///
    /// # Errors
    ///
    /// Returns [`InferError::InputLength`] on a wrong-sized input.
    pub fn infer_noisy<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        fluctuation: &SignalFluctuation,
        rng: &mut R,
    ) -> Result<Vec<f64>, InferError> {
        self.check_input(x)?;
        let features: Vec<f64> = self.conv.forward(x).iter().map(|&v| binarize(v)).collect();
        let out = self.head.forward_noisy(&features, fluctuation, rng);
        Ok(self.decode_head(&out))
    }

    /// The all-digital twin path: ternary conv + FP head, same comparator
    /// and decode. On clean (undisturbed) arrays this matches
    /// [`infer`](Self::infer) bitwise — the conv stages agree exactly by
    /// integer sensing, and the head's analog error is far below the
    /// comparator threshold.
    ///
    /// # Errors
    ///
    /// Returns [`InferError::InputLength`] on a wrong-sized input.
    pub fn infer_digital(&self, x: &[f64]) -> Result<Vec<f64>, InferError> {
        self.check_input(x)?;
        let features = self.twin.features(x);
        let out = self.head_mlp.forward(&features);
        Ok(self.decode_head(&out))
    }

    /// Argmax class of [`infer`](Self::infer) (ties to the lowest index).
    ///
    /// # Errors
    ///
    /// Returns [`InferError::InputLength`] on a wrong-sized input.
    pub fn classify(&self, x: &[f64]) -> Result<usize, InferError> {
        Ok(argmax(&self.infer(x)?))
    }

    /// Fraction of `data` classified into its one-hot argmax class.
    #[must_use]
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        let mut ws = CnnWorkspace::new();
        let mut correct = 0usize;
        for (x, t) in data.iter() {
            let scores = self
                .infer_with(x, &mut ws)
                .expect("dataset-validated input");
            correct += usize::from(argmax(&scores) == argmax(t));
        }
        correct as f64 / data.len() as f64
    }

    /// Total write pulses across conv tiles and head — the chip's
    /// endurance wear.
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.conv.total_writes() + self.head.total_writes()
    }

    /// The worst-worn cell's write count across conv tiles and head.
    #[must_use]
    pub fn max_write_count(&self) -> u64 {
        self.conv.max_write_count().max(self.head.max_write_count())
    }

    /// Apply process variation to every RRAM device (conv tiles first,
    /// then the head — a fixed draw order keeps this deterministic).
    pub fn disturb<R: Rng + ?Sized>(&mut self, variation: &VariationModel, rng: &mut R) {
        self.conv.disturb(variation, rng);
        self.head.disturb(variation, rng);
    }

    /// Restore all devices to their programmed targets.
    pub fn restore(&mut self) {
        self.conv.restore();
        self.head.restore();
    }

    /// Age all devices by `seconds` under a retention model.
    pub fn age(&mut self, retention: &RetentionModel, seconds: f64) {
        self.conv.age(retention, seconds);
        self.head.age(retention, seconds);
    }
}

/// Index of the largest value (ties to the lowest index).
#[must_use]
pub fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

impl fmt::Display for CnnRcs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CNN RCS {} → head {}", self.conv, self.head_topology())
    }
}

impl crate::eval::Rcs for CnnRcs {
    fn output_dim(&self) -> usize {
        self.classes
    }

    fn predict(&self, x: &[f64]) -> Vec<f64> {
        self.infer(x).expect("dataset-validated input")
    }

    fn predict_noisy(
        &self,
        x: &[f64],
        fluctuation: &SignalFluctuation,
        rng: &mut dyn prng::RngCore,
    ) -> Vec<f64> {
        self.infer_noisy(x, fluctuation, rng)
            .expect("dataset-validated input")
    }

    fn disturb(&mut self, variation: &VariationModel, rng: &mut dyn prng::RngCore) {
        CnnRcs::disturb(self, variation, rng);
    }

    fn restore(&mut self) {
        CnnRcs::restore(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Rcs;
    use prng::rngs::StdRng;
    use prng::SeedableRng;
    use workloads::cnn_dataset;

    fn quick_data() -> Dataset {
        cnn_dataset(8, 8, 20, 7)
    }

    fn quick_rcs() -> CnnRcs {
        CnnRcs::train(&quick_data(), &CnnConfig::quick_test()).unwrap()
    }

    #[test]
    fn trains_and_classifies_above_chance() {
        let rcs = quick_rcs();
        let test = cnn_dataset(8, 8, 15, 99);
        let acc = rcs.accuracy(&test);
        assert!(acc > 0.6, "CNN accuracy {acc}");
    }

    #[test]
    fn analog_matches_digital_twin_on_clean_arrays() {
        let rcs = quick_rcs();
        let data = cnn_dataset(8, 8, 5, 3);
        for (x, _) in data.iter() {
            assert_eq!(rcs.infer(x).unwrap(), rcs.infer_digital(x).unwrap());
        }
    }

    #[test]
    fn tile_count_is_a_pure_perf_knob() {
        let data = quick_data();
        let base = CnnConfig::quick_test();
        let outputs = |tiles: usize| {
            let rcs = CnnRcs::train(
                &data,
                &CnnConfig {
                    tiles,
                    // The tiling also shapes the STE significance; pin it
                    // uniform so only the serving shard count varies.
                    ste: SteConfig {
                        significance: Some(vec![1.0; base.spec().patch_len()]),
                        ..base.ste.clone()
                    },
                    ..base.clone()
                },
            )
            .unwrap();
            let test = cnn_dataset(8, 8, 4, 11);
            test.iter()
                .map(|(x, _)| rcs.infer(x).unwrap())
                .collect::<Vec<_>>()
        };
        // Different tile counts train the same twin only when the
        // significance is pinned; with it pinned, serving is bit-identical.
        let one = outputs(1);
        assert_eq!(one, outputs(2));
        assert_eq!(one, outputs(9));
    }

    #[test]
    fn tile_significance_tracks_interface_bits() {
        // 9 columns over 2 tiles: (5, 4) columns → 4 bits each → all 1.0.
        assert_eq!(tile_significance(9, 2), vec![1.0; 9]);
        // 10 columns over 3 tiles: (4, 3, 3) → bits (4, 3, 3) → the wide
        // tile dominates.
        let sig = tile_significance(10, 3);
        assert_eq!(&sig[..4], &[1.0; 4]);
        assert_eq!(&sig[4..], &[0.5; 6]);
    }

    #[test]
    fn wear_accounting_rolls_up_conv_and_head() {
        let mut rcs = quick_rcs();
        assert_eq!(rcs.total_writes(), rcs.device_count() as u64);
        assert_eq!(rcs.max_write_count(), 1);
        let mut rng = StdRng::seed_from_u64(5);
        rcs.disturb(&VariationModel::process_variation(0.05), &mut rng);
        assert_eq!(rcs.total_writes(), 2 * rcs.device_count() as u64);
        rcs.restore();
        assert_eq!(rcs.total_writes(), 2 * rcs.device_count() as u64);
    }

    #[test]
    fn rcs_trait_plumbs_through() {
        let mut rcs = quick_rcs();
        let data = cnn_dataset(8, 8, 2, 13);
        let (x, _) = data.iter().next().unwrap();
        assert_eq!(Rcs::output_dim(&rcs), 3);
        let clean = Rcs::predict(&rcs, x);
        assert_eq!(clean.len(), 3);
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = Rcs::predict_noisy(&rcs, x, &SignalFluctuation::new(0.01), &mut rng);
        assert_eq!(noisy.len(), 3);
        Rcs::disturb(
            &mut rcs,
            &VariationModel::process_variation(0.02),
            &mut StdRng::seed_from_u64(2),
        );
        Rcs::restore(&mut rcs);
        assert_eq!(Rcs::predict(&rcs, x), clean);
    }

    #[test]
    fn topologies_expose_per_tile_interface_bits() {
        let rcs = quick_rcs();
        assert_eq!(rcs.tile_topologies().len(), 2);
        assert!(rcs.tile_interface_bits() > 0);
        let head = rcs.head_topology();
        assert_eq!(head.layer_sizes()[0], rcs.config().spec().feature_len());
    }

    #[test]
    fn invalid_configs_rejected() {
        let data = quick_data();
        for cfg in [
            CnnConfig {
                hidden: 0,
                ..CnnConfig::quick_test()
            },
            CnnConfig {
                out_bits: 0,
                ..CnnConfig::quick_test()
            },
            CnnConfig {
                tiles: 0,
                ..CnnConfig::quick_test()
            },
            CnnConfig {
                kernel: 19,
                ..CnnConfig::quick_test()
            },
            CnnConfig {
                in_w: 5,
                ..CnnConfig::quick_test()
            },
        ] {
            assert!(CnnRcs::train(&data, &cfg).is_err(), "{cfg:?}");
        }
    }

    #[test]
    fn infer_errors_on_wrong_lengths() {
        let rcs = quick_rcs();
        assert!(matches!(
            rcs.infer(&[0.0; 3]),
            Err(InferError::InputLength {
                expected: 64,
                found: 3
            })
        ));
        assert!(rcs.infer_digital(&[1.0; 2]).is_err());
        assert!(rcs.classify(&[1.0; 65]).is_err());
    }

    #[test]
    fn argmax_ties_to_lowest_index() {
        assert_eq!(argmax(&[0.3, 0.7, 0.7]), 1);
        assert_eq!(argmax(&[1.0]), 0);
    }

    #[test]
    fn display_mentions_both_stages() {
        let s = quick_rcs().to_string();
        assert!(s.contains("CNN RCS"), "{s}");
        assert!(s.contains("head"), "{s}");
    }
}
