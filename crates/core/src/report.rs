//! Markdown report generation for a trained system.
//!
//! Downstream users evaluating a candidate MEI deployment want one artifact
//! that captures accuracy, cost, and physical diagnostics together;
//! [`system_report`] renders exactly that, suitable for dropping into a PR
//! or design review.

use std::fmt::Write as _;

use interface::cost::{AddaTopology, CostModel};
use neural::Dataset;

use crate::diagnostics::{analog_fidelity, comparator_margins};
use crate::eval::{evaluate_mse, mse_scorer, robustness};
use crate::mei_arch::MeiRcs;
use crate::NonIdealFactors;

/// Options controlling the report's evaluations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportConfig {
    /// The traditional architecture the design replaces (for the cost
    /// comparison).
    pub baseline: AddaTopology,
    /// Non-ideal factor level for the robustness row.
    pub factors: NonIdealFactors,
    /// Monte-Carlo trials for the robustness row.
    pub trials: usize,
    /// Probe count for the analog-fidelity row.
    pub fidelity_probes: usize,
    /// Seed for every stochastic evaluation.
    pub seed: u64,
}

impl Default for ReportConfig {
    fn default() -> Self {
        Self {
            baseline: AddaTopology::new(1, 8, 1, 8),
            factors: NonIdealFactors::new(0.1, 0.05),
            trials: 20,
            fidelity_probes: 50,
            seed: 0,
        }
    }
}

/// Render a markdown report for a trained merged-interface system over a
/// held-out test set.
///
/// # Panics
///
/// Panics if the test set's dimensions don't match the system.
#[must_use]
pub fn system_report(rcs: &MeiRcs, test: &Dataset, config: &ReportConfig) -> String {
    let cost = CostModel::dac2015();
    let topology = rcs.topology();
    let mse = evaluate_mse(rcs, test);
    let mut noisy_rcs = rcs.clone();
    let noisy = robustness(
        &mut noisy_rcs,
        test,
        &config.factors,
        config.trials,
        config.seed,
        mse_scorer,
    );
    let fidelity = analog_fidelity(rcs, config.fidelity_probes, config.seed);
    let margins = comparator_margins(rcs, test);

    let mut out = String::new();
    let _ = writeln!(out, "# MEI system report: {topology}");
    let _ = writeln!(out);
    let _ = writeln!(out, "| metric | value |");
    let _ = writeln!(out, "|---|---|");
    let _ = writeln!(
        out,
        "| topology | `{topology}` ({} coding) |",
        rcs.input_spec().coding()
    );
    let _ = writeln!(out, "| RRAM devices | {} |", rcs.analog().device_count());
    let _ = writeln!(out, "| test MSE (clean) | {mse:.6} |");
    let _ = writeln!(
        out,
        "| test MSE under σ = ({:.2}, {:.2}) | {:.6} ± {:.6} ({} trials) |",
        config.factors.process_variation,
        config.factors.signal_fluctuation,
        noisy.mean,
        noisy.std_dev,
        noisy.trials
    );
    let _ = writeln!(
        out,
        "| area vs `{}` | {:.0} µm² ({:.1}% saved) |",
        config.baseline,
        cost.area_mei(&topology),
        100.0 * cost.area_saving(&config.baseline, &topology)
    );
    let _ = writeln!(
        out,
        "| power vs `{}` | {:.0} µW ({:.1}% saved) |",
        config.baseline,
        cost.power_mei(&topology),
        100.0 * cost.power_saving(&config.baseline, &topology)
    );
    let _ = writeln!(
        out,
        "| Eq (9) ensemble budget | K_max = {} |",
        cost.k_max(&config.baseline, &topology)
    );
    let _ = writeln!(
        out,
        "| analog fidelity | max \\|Δ\\| = {:.2e} over {} probes |",
        fidelity.max_deviation, fidelity.probes
    );
    let _ = writeln!(
        out,
        "| comparator margins | min {:.4}, mean {:.4}, {:.1}% fragile |",
        margins.min,
        margins.mean,
        100.0 * margins.fragile_fraction
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mei_arch::MeiConfig;
    use prng::rngs::StdRng;
    use prng::{Rng, SeedableRng};

    fn expfit_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::generate(n, &mut rng, |r| {
            let x: f64 = r.gen();
            (vec![x], vec![(-x * x).exp()])
        })
        .unwrap()
    }

    #[test]
    fn report_contains_every_section() {
        let data = expfit_data(200, 1);
        let mut cfg = MeiConfig::quick_test();
        cfg.train.epochs = 30;
        let rcs = MeiRcs::train(&data, &cfg).unwrap();
        let report = system_report(
            &rcs,
            &expfit_data(80, 2),
            &ReportConfig {
                trials: 3,
                fidelity_probes: 10,
                ..ReportConfig::default()
            },
        );
        for needle in [
            "# MEI system report",
            "RRAM devices",
            "test MSE (clean)",
            "area vs",
            "power vs",
            "K_max",
            "analog fidelity",
            "comparator margins",
        ] {
            assert!(report.contains(needle), "missing `{needle}` in:\n{report}");
        }
        // It is a valid markdown table body.
        assert!(report.lines().filter(|l| l.starts_with('|')).count() >= 9);
    }

    #[test]
    fn report_is_deterministic() {
        let data = expfit_data(150, 3);
        let mut cfg = MeiConfig::quick_test();
        cfg.train.epochs = 20;
        let rcs = MeiRcs::train(&data, &cfg).unwrap();
        let test = expfit_data(50, 4);
        let rc = ReportConfig {
            trials: 2,
            fidelity_probes: 5,
            ..ReportConfig::default()
        };
        assert_eq!(
            system_report(&rcs, &test, &rc),
            system_report(&rcs, &test, &rc)
        );
    }
}
