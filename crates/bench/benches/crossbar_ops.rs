//! Micro-benchmarks of the crossbar substrate hot paths on the in-repo
//! `Instant`-based runner (`mei_bench::timing`): analog matrix-vector
//! multiply at Table 1 array sizes, the resistive divider readout, and
//! the IR-drop conjugate-gradient solver.

use crossbar::{CrossbarArray, DifferentialPair, IrDropConfig, MappingConfig};
use mei_bench::timing::{print_header, Runner};
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};
use rram::DeviceParams;
use std::hint::black_box;

fn random_weights(outputs: usize, inputs: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..outputs)
        .map(|_| (0..inputs).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect()
}

fn bench_matvec(r: &mut Runner) {
    // Table 1 layer shapes: sobel 16×10, inversek2j 32×17, jpeg 448×64.
    for &(outputs, inputs) in &[(16usize, 10usize), (32, 17), (64, 112), (448, 64)] {
        let pair = DifferentialPair::from_weights(
            &random_weights(outputs, inputs, 1),
            DeviceParams::hfox(),
            &MappingConfig::default(),
        )
        .expect("mapping");
        let x: Vec<f64> = (0..inputs).map(|i| (i as f64 * 0.37).sin().abs()).collect();
        r.bench(&format!("differential_matvec/{inputs}x{outputs}"), || {
            pair.matvec(black_box(&x))
        });
    }
}

fn bench_divider(r: &mut Runner) {
    let mut xbar = CrossbarArray::new(32, 32, DeviceParams::hfox());
    let mut rng = StdRng::seed_from_u64(2);
    let g: Vec<Vec<f64>> = (0..32)
        .map(|_| (0..32).map(|_| rng.gen_range(5e-7..5e-5)).collect())
        .collect();
    xbar.program_clamped(&g);
    let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.1).cos().abs()).collect();
    r.bench("divider_readout_32x32", || {
        xbar.output_voltages_divider(black_box(&x), 1e-4)
    });
}

fn bench_divider_layer(r: &mut Runner) {
    // The single-array Eq (2) alternative at the same 32×32 scale as the
    // raw divider readout above (includes the per-column closed-form solve
    // once at construction; the bench measures the forward path).
    let coefficients: Vec<Vec<f64>> = (0..32)
        .map(|j| {
            (0..32)
                .map(|k| 0.015 + 0.0002 * ((j * 31 + k) % 17) as f64)
                .collect()
        })
        .collect();
    let layer =
        crossbar::DividerLayer::from_coefficients(&coefficients, DeviceParams::ideal(), 1e-3)
            .expect("feasible coefficients");
    let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.2).sin().abs()).collect();
    r.bench("divider_layer_forward_32x32", || {
        layer.forward(black_box(&x))
    });
}

fn bench_ir_drop(r: &mut Runner) {
    for &n in &[16usize, 32] {
        let mut xbar = CrossbarArray::new(n, n, DeviceParams::hfox());
        let mut rng = StdRng::seed_from_u64(3);
        let g: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen_range(5e-7..5e-5)).collect())
            .collect();
        xbar.program_clamped(&g);
        let x = vec![0.8; n];
        let cfg = IrDropConfig::with_wire_resistance(2.5);
        r.bench(&format!("ir_drop_solve/{n}"), || {
            xbar.column_currents_ir(black_box(&x), &cfg)
        });
    }
}

fn main() {
    print_header("crossbar_ops");
    let mut r = Runner::new("crossbar_ops");
    bench_matvec(&mut r);
    bench_divider(&mut r);
    bench_divider_layer(&mut r);
    bench_ir_drop(&mut r);
    r.finish();
}
