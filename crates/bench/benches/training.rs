//! Micro-benchmarks of the training and device substrates on the in-repo
//! `Instant`-based runner (`mei_bench::timing`): one backprop epoch at
//! benchmark scale, MEI dataset encoding, weighted resampling, and
//! pulse-based device programming.

use interface::InterfaceSpec;
use mei_bench::timing::{print_header, Runner};
use neural::{Dataset, MlpBuilder, TrainConfig, Trainer};
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};
use rram::{DeviceParams, FilamentModel};
use std::hint::black_box;

fn synthetic_dataset(inputs: usize, outputs: usize, n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(1);
    Dataset::generate(n, &mut rng, |r| {
        let x: Vec<f64> = (0..inputs).map(|_| r.gen()).collect();
        let s: f64 = x.iter().sum::<f64>() / inputs as f64;
        let y: Vec<f64> = (0..outputs)
            .map(|j| ((s + j as f64) * 0.7).sin().abs())
            .collect();
        (x, y)
    })
    .expect("dataset")
}

fn bench_training_epoch(r: &mut Runner) {
    // (inputs, hidden, outputs): sobel MEI and inversek2j MEI shapes.
    for &(i, h, o) in &[(9usize, 16usize, 6usize), (16, 32, 16), (54, 64, 6)] {
        let data = synthetic_dataset(i, o, 256);
        r.bench(&format!("backprop_epoch/{i}x{h}x{o}"), || {
            let mut net = MlpBuilder::new(&[i, h, o]).seed(7).build();
            let trainer = Trainer::new(TrainConfig {
                epochs: 1,
                ..TrainConfig::default()
            });
            trainer.train(&mut net, black_box(&data))
        });
    }
}

fn bench_interface_encoding(r: &mut Runner) {
    let spec = InterfaceSpec::new(64, 8);
    let values: Vec<f64> = (0..64).map(|i| (i as f64 / 64.0 * 1.7).fract()).collect();
    r.bench("encode_64_groups_8bit", || spec.encode(black_box(&values)));
    let bits = spec.encode(&values);
    r.bench("decode_64_groups_8bit", || spec.decode(black_box(&bits)));
}

fn bench_weighted_resampling(r: &mut Runner) {
    let data = synthetic_dataset(8, 2, 4096);
    let weights: Vec<f64> = (0..4096).map(|i| 1.0 + (i % 7) as f64).collect();
    let mut rng = StdRng::seed_from_u64(3);
    r.bench("resample_weighted_4096", || {
        data.resample_weighted(black_box(&weights), 4096, &mut rng)
    });
}

fn bench_device_programming(r: &mut Runner) {
    let p = DeviceParams::hfox();
    r.bench("program_verify_to_60pct", || {
        let mut cell = FilamentModel::new(p);
        cell.program_verify(0.6 * p.g_on, 2.0, 1e-5, 0.01, 20_000)
    });
}

fn main() {
    print_header("training");
    let mut r = Runner::new("training");
    bench_training_epoch(&mut r);
    bench_interface_encoding(&mut r);
    bench_weighted_resampling(&mut r);
    bench_device_programming(&mut r);
    r.finish();
}
