//! Criterion micro-benchmarks of the training and device substrates:
//! one backprop epoch at benchmark scale, MEI dataset encoding, weighted
//! resampling, and pulse-based device programming.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use interface::InterfaceSpec;
use neural::{Dataset, MlpBuilder, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rram::{DeviceParams, FilamentModel};
use std::hint::black_box;

fn synthetic_dataset(inputs: usize, outputs: usize, n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(1);
    Dataset::generate(n, &mut rng, |r| {
        let x: Vec<f64> = (0..inputs).map(|_| r.gen()).collect();
        let s: f64 = x.iter().sum::<f64>() / inputs as f64;
        let y: Vec<f64> = (0..outputs).map(|j| ((s + j as f64) * 0.7).sin().abs()).collect();
        (x, y)
    })
    .expect("dataset")
}

fn bench_training_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("backprop_epoch");
    group.sample_size(10);
    // (inputs, hidden, outputs): sobel MEI and inversek2j MEI shapes.
    for &(i, h, o) in &[(9usize, 16usize, 6usize), (16, 32, 16), (54, 64, 6)] {
        let data = synthetic_dataset(i, o, 256);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{i}x{h}x{o}")),
            &data,
            |b, data| {
                b.iter(|| {
                    let mut net = MlpBuilder::new(&[i, h, o]).seed(7).build();
                    let trainer = Trainer::new(TrainConfig {
                        epochs: 1,
                        ..TrainConfig::default()
                    });
                    black_box(trainer.train(&mut net, data))
                })
            },
        );
    }
    group.finish();
}

fn bench_interface_encoding(c: &mut Criterion) {
    let spec = InterfaceSpec::new(64, 8);
    let values: Vec<f64> = (0..64).map(|i| (i as f64 / 64.0 * 1.7).fract()).collect();
    c.bench_function("encode_64_groups_8bit", |b| {
        b.iter(|| black_box(spec.encode(black_box(&values))))
    });
    let bits = spec.encode(&values);
    c.bench_function("decode_64_groups_8bit", |b| {
        b.iter(|| black_box(spec.decode(black_box(&bits))))
    });
}

fn bench_weighted_resampling(c: &mut Criterion) {
    let data = synthetic_dataset(8, 2, 4096);
    let weights: Vec<f64> = (0..4096).map(|i| 1.0 + (i % 7) as f64).collect();
    c.bench_function("resample_weighted_4096", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(data.resample_weighted(black_box(&weights), 4096, &mut rng)))
    });
}

fn bench_device_programming(c: &mut Criterion) {
    c.bench_function("program_verify_to_60pct", |b| {
        let p = DeviceParams::hfox();
        b.iter(|| {
            let mut cell = FilamentModel::new(p);
            black_box(cell.program_verify(0.6 * p.g_on, 2.0, 1e-5, 0.01, 20_000))
        })
    });
}

criterion_group!(
    benches,
    bench_training_epoch,
    bench_interface_encoding,
    bench_weighted_resampling,
    bench_device_programming
);
criterion_main!(benches);
