//! Every hand-rolled JSON emitter in the workspace must produce strict
//! RFC 8259 JSON — even when fed non-finite floats, quotes or control
//! characters — and every committed `results/BENCH_*.json` must parse.
//!
//! The emitters write JSON by `format!` (no serde by policy), which is
//! exactly the kind of code that silently regresses: one `{:.3}` on a
//! NaN and the report is unreadable by any real parser. The validator
//! (`mei_bench::json`) is the tripwire.

use std::time::Duration;

use mei_bench::json::validate;
use mei_bench::ramp::{ramp_to_knee, RampConfig};
use mei_bench::timing::BenchReport;
use runtime::{json_escape, json_num, ServeStats};

fn assert_valid(label: &str, text: &str) {
    if let Err(err) = validate(text) {
        panic!("{label} emitted invalid JSON: {err}\n{text}");
    }
}

#[test]
fn serve_stats_json_is_valid_even_with_non_finite_latencies() {
    let healthy = ServeStats::from_run(
        "least_loaded",
        &[Duration::from_micros(50), Duration::from_micros(90)],
        Duration::from_millis(5),
        vec![(2, 1, 2, Duration::from_micros(140))],
    );
    assert_valid("ServeStats healthy", &healthy.to_json());

    let poisoned = ServeStats::from_latencies_us(
        "least_loaded",
        &[50.0, f64::NAN, f64::INFINITY, 90.0],
        Duration::from_millis(5),
        vec![],
    );
    assert_eq!(poisoned.non_finite, 2);
    assert_valid("ServeStats with NaN/inf samples", &poisoned.to_json());

    let all_bad = ServeStats::from_latencies_us(
        "least_loaded",
        &[f64::NAN, f64::NAN],
        Duration::from_millis(5),
        vec![],
    );
    assert_valid("ServeStats all-NaN (percentiles null)", &all_bad.to_json());
    assert!(all_bad.to_json().contains("\"p99_latency_us\":null"));
}

#[test]
fn hostile_policy_names_stay_valid_json() {
    let stats = ServeStats::from_run(
        "quo\"te\\back\nslash\tand\u{1}ctrl",
        &[Duration::from_micros(10)],
        Duration::from_millis(1),
        vec![],
    );
    assert_valid("ServeStats hostile policy name", &stats.to_json());
}

#[test]
fn ramp_reports_stay_valid_json_with_degenerate_windows() {
    let flat = |p99_us: f64| {
        ServeStats::from_latencies_us("synthetic", &[p99_us; 4], Duration::from_millis(10), vec![])
    };
    // A ramp whose later windows are all-NaN (e.g. everything shed).
    let mut calls = 0usize;
    let report = ramp_to_knee(
        &RampConfig {
            start_rps: 100.0,
            growth: 2.0,
            max_steps: 4,
            knee_factor: 4.0,
        },
        |_| {
            calls += 1;
            if calls >= 3 {
                flat(f64::NAN)
            } else {
                flat(100.0)
            }
        },
    );
    assert_valid("RampReport with NaN steps", &report.to_json());
    for step in &report.steps {
        assert_valid("RampStep", &step.to_json());
    }
}

#[test]
fn bench_reports_stay_valid_json() {
    let report = BenchReport {
        name: "quoted\"name/with\\escapes".into(),
        iters_per_sample: 3,
        samples: 2,
        min_ns: f64::NAN,
        median_ns: f64::INFINITY,
        mean_ns: 12.5,
        ops_per_sec: 0.0,
    };
    let json = report.to_json();
    assert_valid("BenchReport non-finite stats", &json);
    assert!(json.contains("\"min_ns\":null"));
    assert!(json.contains("\"median_ns\":null"));
}

#[test]
fn json_helpers_agree_with_the_validator() {
    for v in [
        0.0,
        -0.0,
        1.5,
        -2.25e-9,
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
    ] {
        assert_valid("json_num", &json_num(v, 6));
    }
    for s in [
        "plain",
        "qu\"ote",
        "back\\slash",
        "new\nline",
        "\u{0}\u{1f}",
    ] {
        assert_valid("json_escape", &format!("\"{}\"", json_escape(s)));
    }
}

#[test]
fn committed_fleet_cost_report_has_the_accounting_shape() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_fleet_cost.json"
    );
    let text = std::fs::read_to_string(path).expect("committed BENCH_fleet_cost.json");
    assert_valid("BENCH_fleet_cost.json", &text);
    assert!(
        text.starts_with("{\"meta\":{"),
        "fleet_cost report must lead with the shared meta header"
    );
    // The accounting layer's public contract: the report names its
    // workload, carries the Eq (6)/(7) chip sheet, per-fleet rollups
    // with per-pool rows, and a DSE section with an explicit budget
    // and a pick. Key-presence checks only — values vary per host.
    for key in [
        "\"suite\":\"fleet_cost/inversek2j\"",
        "\"chip_sheet\":{\"area_um2\":",
        "\"sla\":{\"target_p99_us\":",
        "\"fleets\":[",
        "\"accounting\":{\"chips\":",
        "\"per_pool\":[",
        "\"area_mm2\":",
        "\"leakage_w\":",
        "\"j_per_inference\":",
        "\"ops_per_mm2\":",
        "\"j_per_mreq\":",
        "\"dse\":{\"budget\":{\"area_mm2\":",
        "\"power_w\":",
        "\"max_j_per_mreq\":",
        "\"pick\":",
        "\"evaluated\":[",
        "\"admitted_rps\":",
        "\"feasible\":",
    ] {
        assert!(text.contains(key), "fleet_cost report lacks {key}");
    }
}

#[test]
fn committed_cnn_report_has_the_serving_shape() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_cnn.json");
    let text = std::fs::read_to_string(path).expect("committed BENCH_cnn.json");
    assert_valid("BENCH_cnn.json", &text);
    assert!(
        text.starts_with("{\"meta\":{"),
        "cnn_serving report must lead with the shared meta header"
    );
    // The CNN serving contract: the report names the conv shape and
    // tiling, records that the tiling identity was checked bitwise
    // against the direct oracle, carries digital/analog/disturbed
    // accuracy, a measured throughput section with the chip cost sheet,
    // and the round-robin vs. wear-aware write-imbalance experiment.
    // Key-presence checks only — measured values vary per host.
    for key in [
        "\"suite\":\"cnn_serving\"",
        "\"shape\":{\"in_channels\":",
        "\"tiles\":",
        "\"patch_len\":",
        "\"interface_bits\":",
        "\"identity\":{\"images\":",
        "\"tile_counts\":[",
        "\"bitwise\":true",
        "\"accuracy\":{\"digital\":",
        "\"analog\":",
        "\"disturbed\":",
        "\"throughput\":{\"chips\":",
        "\"rps\":",
        "\"chip_sheet\":{\"area_um2\":",
        "\"wear\":{\"windows\":",
        "\"round_robin\":{\"per_chip_writes\":[",
        "\"wear_aware\":{\"per_chip_writes\":[",
        "\"imbalance\":",
        "\"fleet\":{\"pools\":",
    ] {
        assert!(text.contains(key), "cnn_serving report lacks {key}");
    }
    // The committed report must witness the acceptance criterion:
    // wear-aware placement ends no more imbalanced than round-robin.
    let imbalance_after = |policy: &str| -> u64 {
        let section = text.split(policy).nth(1).expect("policy section");
        let field = section.split("\"imbalance\":").nth(1).expect("imbalance");
        field
            .split(|c: char| !c.is_ascii_digit())
            .next()
            .expect("digits")
            .parse()
            .expect("imbalance is an integer")
    };
    assert!(
        imbalance_after("\"wear_aware\":") <= imbalance_after("\"round_robin\":"),
        "committed report must show wear-aware ≤ round-robin imbalance"
    );
}

#[test]
fn committed_results_reports_are_valid_json() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    let mut checked = 0usize;
    let mut with_meta = 0usize;
    for entry in std::fs::read_dir(dir).expect("results directory") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("read report");
        assert_valid(&name, &text);
        // Reports emitted since the shared `mei_bench::json::meta`
        // header lead with it; wherever present it must carry the
        // bench name, root seed and hardware thread count.
        if let Some(rest) = text.strip_prefix("{\"meta\":{") {
            let header = &rest[..rest.find('}').expect("meta object closes")];
            for key in ["\"bench\":", "\"mei_seed\":", "\"hw_threads\":"] {
                assert!(header.contains(key), "{name}: meta header lacks {key}");
            }
            with_meta += 1;
        }
        checked += 1;
    }
    assert!(
        checked >= 4,
        "expected the committed BENCH_*.json reports, found {checked}"
    );
    assert!(
        with_meta >= 1,
        "at least the fleet report must carry the shared meta header"
    );
}
