//! Ground-truth validation of the ramp controller: drive [`ramp_to_knee`]
//! with a *simulated* D/D/1 queue whose capacity is known analytically,
//! and check the reported knee lands within one growth factor of it.
//!
//! The simulated pool is one chip with a deterministic service time `s`:
//! arrivals are evenly spaced at the offered rate, and request `i`
//! completes at `max(arrival_i, completion_{i-1}) + s`. The analytic
//! knee is the capacity `1/s` — below it the queue drains between
//! arrivals and every latency is exactly `s`; above it the backlog (and
//! therefore p99) grows linearly in the window length. No wall clock is
//! involved, so this test is exact and host-speed-independent.

use std::time::Duration;

use mei_bench::ramp::{ramp_to_knee, RampConfig};
use runtime::ServeStats;

/// Simulate a `window_secs`-long open-loop run against a single D/D/1
/// server with deterministic service time `service_secs`, offered
/// `rate` requests/second.
fn simulate_dd1(rate: f64, service_secs: f64, window_secs: f64) -> ServeStats {
    let n = ((rate * window_secs).ceil() as usize).max(1);
    let spacing = 1.0 / rate;
    let mut completion = 0.0f64;
    let latencies: Vec<Duration> = (0..n)
        .map(|i| {
            let arrival = i as f64 * spacing;
            completion = completion.max(arrival) + service_secs;
            Duration::from_secs_f64(completion - arrival)
        })
        .collect();
    ServeStats::from_run(
        "dd1",
        &latencies,
        Duration::from_secs_f64(completion.max(window_secs)),
        vec![(n, n, 0, Duration::from_secs_f64(n as f64 * service_secs))],
    )
}

#[test]
fn ramp_knee_lands_within_one_growth_factor_of_the_analytic_capacity() {
    let service_secs = 1e-3;
    let capacity = 1.0 / service_secs; // 1000 req/s, analytically
    let config = RampConfig {
        start_rps: 100.0,
        growth: 1.3,
        max_steps: 20,
        knee_factor: 4.0,
    };
    let report = ramp_to_knee(&config, |rate| simulate_dd1(rate, service_secs, 2.0));
    assert!(report.kneed, "the D/D/1 elbow must be detected");
    let knee_rps = report.knee_step().offered_rps;
    assert!(
        knee_rps <= capacity * config.growth && knee_rps >= capacity / config.growth,
        "reported knee {knee_rps} req/s is more than one growth factor \
         ({}) from the analytic capacity {capacity} req/s",
        config.growth
    );
    // Below the knee the simulated latency is exactly the service time.
    let knee_p99_us = report.knee_step().stats.p99_latency_us;
    assert!(
        (knee_p99_us - service_secs * 1e6).abs() < 1.0,
        "knee p99 {knee_p99_us} µs should sit at the bare service time"
    );
}

#[test]
fn ramp_knee_tracks_the_capacity_when_the_service_time_changes() {
    // Same harness, 4× faster chip: the knee must move 4× out.
    let config = RampConfig {
        start_rps: 100.0,
        growth: 1.3,
        max_steps: 24,
        knee_factor: 4.0,
    };
    let slow = ramp_to_knee(&config, |rate| simulate_dd1(rate, 2e-3, 2.0));
    let fast = ramp_to_knee(&config, |rate| simulate_dd1(rate, 0.5e-3, 2.0));
    assert!(slow.kneed && fast.kneed);
    let ratio = fast.knee_step().offered_rps / slow.knee_step().offered_rps;
    // 4× capacity, measured on a 1.3-geometric grid: the ratio must be
    // within one growth factor of 4.
    assert!(
        (4.0 / 1.3..=4.0 * 1.3).contains(&ratio),
        "knee ratio {ratio} should track the 4x capacity ratio"
    );
}
