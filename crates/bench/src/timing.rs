//! A dependency-free micro-benchmark runner: the in-repo replacement for
//! Criterion, built on `std::time::Instant`.
//!
//! Each benchmark is auto-calibrated (the iteration count is grown until
//! one sample takes at least [`TARGET_SAMPLE`]), then timed over
//! [`SAMPLES`] samples; the per-op statistics (min / median / mean) are
//! printed as an aligned table and emitted as a JSON array on stdout, so
//! runs can be diffed mechanically:
//!
//! ```text
//! cargo bench --offline --bench crossbar_ops
//! ```
//!
//! Environment knobs:
//!
//! * `MEI_BENCH_JSON=<path>` — also write the JSON report to a file;
//! * `MEI_BENCH_FAST=1` — fewer samples and a smaller calibration target,
//!   for smoke-testing the harness itself.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Samples per benchmark (each sample runs the calibrated iteration count).
pub const SAMPLES: usize = 30;

/// Calibration target: one sample should take at least this long.
pub const TARGET_SAMPLE: Duration = Duration::from_millis(10);

/// One benchmark's timing statistics, in nanoseconds per operation.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Benchmark identifier, e.g. `differential_matvec/17x32`.
    pub name: String,
    /// Iterations per timed sample (after calibration).
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample, ns/op.
    pub min_ns: f64,
    /// Median sample, ns/op.
    pub median_ns: f64,
    /// Mean over all samples, ns/op.
    pub mean_ns: f64,
    /// Median throughput, operations per second (`1e9 / median_ns`) —
    /// the same statistic as `median_ns`, in the unit capacity planning
    /// uses.
    pub ops_per_sec: f64,
}

impl BenchReport {
    /// The report as a JSON object (hand-rolled; the workspace has no
    /// serialization dependency by policy). Strings go through
    /// [`runtime::json_escape`], floats through [`runtime::json_num`]
    /// (non-finite → `null`), so the output is always parseable.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"iters_per_sample\":{},\"samples\":{},\
             \"min_ns\":{},\"median_ns\":{},\"mean_ns\":{},\"ops_per_sec\":{}}}",
            runtime::json_escape(&self.name),
            self.iters_per_sample,
            self.samples,
            runtime::json_num(self.min_ns, 3),
            runtime::json_num(self.median_ns, 3),
            runtime::json_num(self.mean_ns, 3),
            runtime::json_num(self.ops_per_sec, 3),
        )
    }
}

/// A micro-benchmark suite: register closures with [`bench`](Self::bench),
/// then [`finish`](Self::finish) to print the table and the JSON report.
#[derive(Debug)]
pub struct Runner {
    suite: String,
    reports: Vec<BenchReport>,
    samples: usize,
    target: Duration,
}

impl Runner {
    /// A new suite named `suite` (used in the report header).
    #[must_use]
    pub fn new(suite: &str) -> Self {
        let fast = std::env::var("MEI_BENCH_FAST")
            .map(|v| v == "1")
            .unwrap_or(false);
        Self {
            suite: suite.to_string(),
            reports: Vec::new(),
            samples: if fast { 5 } else { SAMPLES },
            target: if fast {
                Duration::from_micros(200)
            } else {
                TARGET_SAMPLE
            },
        }
    }

    /// Time `f`, auto-calibrating the per-sample iteration count.
    ///
    /// The closure's return value is passed through [`black_box`] so the
    /// optimizer cannot delete the measured work.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) {
        // Calibrate: grow the iteration count until a sample is long
        // enough for Instant's resolution not to dominate.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target || iters >= 1 << 30 {
                break;
            }
            // Aim past the target in one or two more doublings.
            iters = if elapsed.is_zero() {
                iters * 16
            } else {
                let scale = self.target.as_secs_f64() / elapsed.as_secs_f64();
                (iters as f64 * scale.max(2.0)).ceil() as u64
            };
        }

        let mut per_op: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_secs_f64() * 1e9 / iters as f64
            })
            .collect();
        per_op.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));

        let median_ns = per_op[per_op.len() / 2];
        let report = BenchReport {
            name: name.to_string(),
            iters_per_sample: iters,
            samples: self.samples,
            min_ns: per_op[0],
            median_ns,
            mean_ns: per_op.iter().sum::<f64>() / per_op.len() as f64,
            ops_per_sec: 1e9 / median_ns,
        };
        eprintln!(
            "{:<40} {:>12} {:>12} {:>12}",
            report.name,
            format_ns(report.min_ns),
            format_ns(report.median_ns),
            format_ns(report.mean_ns),
        );
        self.reports.push(report);
    }

    /// Print the JSON report to stdout (and `MEI_BENCH_JSON` if set).
    ///
    /// # Panics
    ///
    /// Panics if `MEI_BENCH_JSON` names an unwritable path.
    pub fn finish(self) {
        let body: Vec<String> = self.reports.iter().map(BenchReport::to_json).collect();
        let json = format!(
            "{{\"suite\":\"{}\",\"benchmarks\":[{}]}}",
            runtime::json_escape(&self.suite),
            body.join(",")
        );
        println!("{json}");
        if let Ok(path) = std::env::var("MEI_BENCH_JSON") {
            if let Err(err) = std::fs::write(&path, &json) {
                panic!(
                    "cannot write MEI_BENCH_JSON report to '{path}': {err} \
                     (cargo runs benches from the package directory, so \
                     relative paths resolve against crates/bench)"
                );
            }
        }
    }

    /// The reports accumulated so far (used by the harness tests).
    #[must_use]
    pub fn reports(&self) -> &[BenchReport] {
        &self.reports
    }
}

/// Pretty-print nanoseconds with a unit.
fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{:.2} ms", ns / 1e6)
    }
}

/// Print the table header for a suite.
pub fn print_header(suite: &str) {
    eprintln!("suite: {suite}");
    eprintln!(
        "{:<40} {:>12} {:>12} {:>12}",
        "benchmark", "min", "median", "mean"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_runner(name: &str) -> Runner {
        Runner {
            suite: name.to_string(),
            reports: Vec::new(),
            samples: 3,
            target: Duration::from_micros(50),
        }
    }

    #[test]
    fn bench_produces_positive_ordered_stats() {
        let mut r = fast_runner("t");
        r.bench("spin", || (0..100).map(|i: u64| i * i).sum::<u64>());
        let rep = &r.reports()[0];
        assert!(rep.min_ns > 0.0);
        assert!(rep.min_ns <= rep.median_ns);
        assert!(rep.median_ns <= rep.mean_ns * 1.5);
        assert!(rep.iters_per_sample >= 1);
    }

    #[test]
    fn json_shape_is_stable() {
        let rep = BenchReport {
            name: "x/1".into(),
            iters_per_sample: 10,
            samples: 3,
            min_ns: 1.0,
            median_ns: 2.0,
            mean_ns: 2.5,
            ops_per_sec: 5e8,
        };
        assert_eq!(
            rep.to_json(),
            "{\"name\":\"x/1\",\"iters_per_sample\":10,\"samples\":3,\
             \"min_ns\":1.000,\"median_ns\":2.000,\"mean_ns\":2.500,\
             \"ops_per_sec\":500000000.000}"
        );
    }

    #[test]
    fn json_escapes_quotes_in_names() {
        let rep = BenchReport {
            name: "a\"b".into(),
            iters_per_sample: 1,
            samples: 1,
            min_ns: 0.0,
            median_ns: 0.0,
            mean_ns: 0.0,
            ops_per_sec: f64::INFINITY,
        };
        assert!(rep.to_json().contains("a\\\"b"));
        // Non-finite throughput serializes as null, keeping the JSON valid.
        assert!(rep.to_json().contains("\"ops_per_sec\":null"));
    }

    #[test]
    fn format_ns_picks_units() {
        assert_eq!(format_ns(12.3), "12.3 ns");
        assert_eq!(format_ns(12_300.0), "12.30 µs");
        assert_eq!(format_ns(12_300_000.0), "12.30 ms");
    }
}
