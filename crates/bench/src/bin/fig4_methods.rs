//! Fig 4 reproduction: comparison of Digital / AD-DA / MEI / MEI+SAAB on
//! every benchmark, with SAAB boosted at the Eq (9) maximum ensemble size.
//!
//! Paper's observations: MEI is not uniformly better than AD/DA (it wins on
//! "slow-output" applications like JPEG/Sobel and loses on inversek2j-like
//! ones), and SAAB further boosts the accuracy of *all* benchmarks
//! (+5.76% on average).
//!
//! Run with: `cargo run --release -p mei-bench --bin fig4_methods`

use interface::cost::{AddaTopology, CostModel};
use mei::{evaluate_metric, MeiConfig, SaabConfig};
use mei_bench::{
    format_table, mean_over_write_draws, table1_setups, train_saab_adaptive, train_trio,
    ExperimentConfig,
};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let cost = CostModel::dac2015();
    println!("== Fig 4: method comparison (application error metric per benchmark) ==\n");

    let mut rows = Vec::new();
    let mut improvements = Vec::new();

    for setup in table1_setups() {
        let w = &setup.workload;
        let started = std::time::Instant::now();
        let n_train = if setup.wide {
            cfg.train_samples.min(3000)
        } else {
            cfg.train_samples
        };
        let train = w.dataset(n_train, cfg.seed).expect("train data");
        let test = w
            .dataset(cfg.test_samples, cfg.seed + 1)
            .expect("test data");
        let metric = w.metric();

        let mut trio = train_trio(&setup, &train, &cfg);

        // Eq (9): the ensemble budget for this benchmark.
        let (i, h, o) = w.digital_topology();
        let adda_topology = AddaTopology::new(i, h, o, 8);
        let k_max = cost.k_max(&adda_topology, &trio.mei.topology()).clamp(1, 4);

        let mei_cfg = MeiConfig {
            hidden: setup.mei_hidden,
            in_bits: setup.mei_in_bits,
            out_bits: setup.mei_out_bits,
            device: cfg.device(),
            train: cfg.mei_train(setup.wide),
            seed: cfg.seed,
            ..MeiConfig::default()
        };
        // Algorithm 1 takes the non-ideal factor vector σ⃗; scoring learners
        // under the write-accuracy noise (and mild signal fluctuation)
        // moderates the vote weights exactly as the paper intends.
        let saab_cfg = SaabConfig {
            rounds: k_max,
            compare_bits: setup.mei_out_bits.clamp(1, 4),
            factors: mei::NonIdealFactors::new(0.05, 0.02),
            ..SaabConfig::default()
        };
        let (mut saab, bc) = train_saab_adaptive(&train, &mei_cfg, &saab_cfg);

        let score = |r: &mut dyn mei::Rcs, seed: u64| {
            mean_over_write_draws(r, cfg.write_draws, seed, |rr| {
                evaluate_metric(rr, &test, |p, t| metric.evaluate(p, t))
            })
        };
        let err_digital = evaluate_metric(&trio.digital, &test, |p, t| metric.evaluate(p, t));
        let err_adda = score(&mut trio.adda, 21);
        let err_mei = score(&mut trio.mei, 23);
        let err_saab = score(&mut saab, 25);

        improvements.push((err_mei - err_saab).max(-1.0));
        rows.push(vec![
            w.name().to_string(),
            format!("{}", metric),
            format!("{err_digital:.4}"),
            format!("{err_adda:.4}"),
            format!("{err_mei:.4}"),
            format!("{err_saab:.4} (K={}, B_C={bc})", saab.len()),
        ]);
        eprintln!(
            "[{}] done in {:.0}s",
            w.name(),
            started.elapsed().as_secs_f64()
        );
    }

    println!(
        "{}",
        format_table(
            &["name", "metric", "Digital", "AD/DA", "MEI", "MEI+SAAB"],
            &rows
        )
    );

    let avg_improvement: f64 = improvements.iter().sum::<f64>() / improvements.len() as f64;
    let improved = improvements.iter().filter(|&&d| d > -1e-6).count();
    println!("shape checks vs paper:");
    println!(
        "  SAAB improves (or matches) MEI on {improved}/6 benchmarks \
         (paper: improves all 6, avg +5.76% accuracy)"
    );
    println!("  mean error reduction from SAAB: {:.4}", avg_improvement);
}
