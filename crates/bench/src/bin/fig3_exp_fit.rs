//! Fig 3 reproduction: MSE of approximating `f(x) = exp(−x²)` as the hidden
//! layer grows, for the traditional AD/DA architecture and MEI with and
//! without the bit-weighted loss.
//!
//! Paper's observations: the weighted loss clearly beats the unweighted
//! variant; MEI needs a larger hidden layer; accuracy stalls beyond a
//! certain size (motivating the Eq (8) change-rate stop in Algorithm 2).
//!
//! Run with: `cargo run --release -p mei-bench --bin fig3_exp_fit`

use mei::{evaluate_mse, AddaConfig, AddaRcs, MeiConfig, MeiRcs};
use mei_bench::{format_table, mean_over_write_draws, ExperimentConfig};
use neural::Dataset;
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};

fn expfit(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::generate(n, &mut rng, |r| {
        let x: f64 = r.gen();
        (vec![x], vec![(-x * x).exp()])
    })
    .expect("valid dataset")
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    // Paper: 10 000 training samples in (0, 1), 1 000 test samples.
    let train = expfit(cfg.train_samples.max(4000), 1);
    let test = expfit(cfg.test_samples, 2);
    println!(
        "== Fig 3: fitting exp(-x²) with a 1×N×1 RCS ({} train / {} test samples) ==\n",
        train.len(),
        test.len()
    );

    let sizes = [2usize, 4, 8, 16, 32];
    let mut rows = Vec::new();
    for &n in &sizes {
        let mut adda = AddaRcs::train(
            &train,
            &AddaConfig {
                hidden: n,
                device: cfg.device(),
                train: cfg.adda_train(),
                seed: cfg.seed,
                ..AddaConfig::default()
            },
        )
        .expect("adda");
        let mei = |weighted: bool| {
            MeiRcs::train(
                &train,
                &MeiConfig {
                    hidden: n,
                    weighted_loss: weighted,
                    device: cfg.device(),
                    train: cfg.mei_train(false),
                    seed: cfg.seed,
                    ..MeiConfig::default()
                },
            )
            .expect("mei")
        };
        let mut mei_w = mei(true);
        let mut mei_u = mei(false);
        let score = |r: &mut dyn mei::Rcs, seed| {
            mean_over_write_draws(r, cfg.write_draws, seed, |rr| evaluate_mse(rr, &test))
        };
        rows.push(vec![
            format!("1×{n}×1"),
            format!("{:.5}", score(&mut adda, 11)),
            format!("{:.5}", score(&mut mei_u, 12)),
            format!("{:.5}", score(&mut mei_w, 13)),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["topology", "AD/DA MSE", "MEI unweighted", "MEI weighted"],
            &rows
        )
    );

    // Shape checks against the paper's qualitative claims.
    let parse = |s: &String| s.parse::<f64>().unwrap();
    let weighted_last = parse(&rows[rows.len() - 1][3]);
    let unweighted_last = parse(&rows[rows.len() - 1][2]);
    let weighted_first = parse(&rows[0][3]);
    println!("shape checks vs paper:");
    println!(
        "  weighted loss beats unweighted at the largest size: {}",
        if weighted_last <= unweighted_last {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!(
        "  MEI improves with hidden size: {}",
        if weighted_last < weighted_first {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let tail_change = (parse(&rows[4][3]) - parse(&rows[3][3])).abs() / parse(&rows[3][3]);
    println!(
        "  accuracy stalls at large sizes (|Δ|/MSE = {:.2} at 16→32): {}",
        tail_change,
        if tail_change < 0.5 { "PASS" } else { "FAIL" }
    );
}
