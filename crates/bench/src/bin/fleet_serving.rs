//! Fleet-scale serving benchmark: SLA-targeted capacity search over
//! 1/2/4 engine pools, plus a forced-quarantine failover drill.
//!
//! The workload is the Table 1 **inversek2j** MEI system, served as one
//! hot workload replicated across every pool of a `runtime::Fleet`.
//! Three phases:
//!
//! 1. **SLA capacity** — for P ∈ {1, 2, 4} pools, the fleet is ramped
//!    to its latency knee (`mei_bench::ramp`) and then bisected for the
//!    highest aggregate rate whose p99 stays under an **absolute**
//!    target (`sla_search`; default 2000 µs, `MEI_FLEET_SLA_US`). The
//!    fleet-level p99 of a step is the worst pool's p99 — a sound
//!    bound: the request mix splits evenly across pools, so if every
//!    pool's p99 meets the target the mixture's p99 does too. Rates are
//!    host-dependent and are *reported, never asserted* (a 1-core CI
//!    host has no parallel capacity to show).
//! 2. **Capacity planning** — each fleet size's per-pool SLA rate is
//!    recorded as a `SlaPoint` and `Fleet::pools_for` answers the
//!    ROADMAP question "how many pools for `MEI_FLEET_TARGET_RPS`
//!    req/s under the target p99".
//! 3. **Failover drill** — a 2-pool fleet of breakable chips serves a
//!    replicated workload; every chip in the primary pool is broken;
//!    `Fleet::recalibrate_window` quarantines them and ejects the pool;
//!    serving continues on the survivor. Three properties hold on any
//!    host and **are asserted**: zero requests are lost across the
//!    failover, no post-ejection request lands on the dead pool, and
//!    the whole drill — routing, chips, output bits — replays
//!    bit-identically on a rerun. Repairing the chips and
//!    recalibrating re-admits the pool and restores the original
//!    routing.
//!
//! Human-readable tables go to stderr; the machine-diffable JSON report
//! (with the shared `meta` header) goes to stdout (and to
//! `MEI_BENCH_JSON` when set).
//!
//! Environment knobs:
//!
//! * `MEI_BENCH_SECONDS=<f>` — measurement window per ramp step
//!   (default 1.0);
//! * `MEI_BENCH_FAST=1` — smoke mode: ~0.25 s windows, tiny training
//!   budget, shorter ramps;
//! * `MEI_BENCH_JSON=<path>` — also write the JSON report to a file;
//! * `MEI_FLEET_SLA_US=<f>` — absolute p99 target, µs (default 2000);
//! * `MEI_FLEET_TARGET_RPS=<f>` — capacity-planning question for
//!   `Fleet::pools_for` (default 10000);
//! * `MEI_FLEET_REPLICATION`, `MEI_FLEET_QUARANTINE_FRAC`,
//!   `MEI_FLEET_DRIFT_RATIO` — fleet routing/health overrides (see
//!   `runtime::fleet`).
//!
//! Run with: `cargo run --release -p mei-bench --bin fleet_serving`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mei::{manufacture_chips, manufacture_fleet, MeiConfig, MeiRcs};
use mei_bench::ramp::{ramp_to_knee, sla_search, RampConfig, SlaConfig, SlaReport};
use mei_bench::{
    fast_mode, format_table, measure_window, table1_setups, ExperimentConfig,
    EXPERIMENT_WRITE_SIGMA,
};
use neural::TrainConfig;
use runtime::{
    json_num, BatchItem, Chip, ChipPool, EjectReason, Engine, Fleet, FleetConfig, RoundRobin,
    ServeStats, SlaPoint, Transition,
};

const CHIPS_PER_POOL: usize = 2;
const WORKLOAD: &str = "inversek2j";

/// Uniform open-loop request schedule at `rate` req/s over `window`.
fn schedule(inputs: &[Vec<f64>], rate: f64, window: Duration) -> (Vec<Vec<f64>>, Vec<Duration>) {
    let spacing = Duration::from_secs_f64(1.0 / rate.max(1.0));
    let n = ((window.as_secs_f64() * rate).ceil() as usize).max(1);
    let requests: Vec<Vec<f64>> = (0..n).map(|i| inputs[i % inputs.len()].clone()).collect();
    let arrivals: Vec<Duration> = (0..n).map(|i| spacing * i as u32).collect();
    (requests, arrivals)
}

/// Offer the fleet an aggregate open-loop load: the schedule is split
/// across the workload's replica set by the fleet's own deterministic
/// rotation (request `n` → replica `n mod R`), each pool serves its
/// share concurrently, and the fleet-level stats take the **worst**
/// pool's percentiles. That bound is sound for SLA search: the mixture
/// of per-pool latency distributions meets a p99 target whenever every
/// component does.
fn fleet_measure<C: Chip>(
    fleet: &Fleet<C>,
    inputs: &[Vec<f64>],
    rate: f64,
    window: Duration,
) -> ServeStats {
    let replicas = fleet.replicas(WORKLOAD);
    assert!(!replicas.is_empty(), "no healthy pool to measure");
    let (requests, arrivals) = schedule(inputs, rate, window);
    let mut shares: Vec<(Vec<Vec<f64>>, Vec<Duration>)> =
        (0..fleet.len()).map(|_| (Vec::new(), Vec::new())).collect();
    for (n, (request, arrival)) in requests.into_iter().zip(arrivals).enumerate() {
        let pool = replicas[n % replicas.len()];
        shares[pool].0.push(request);
        shares[pool].1.push(arrival);
    }
    let pool_stats: Vec<ServeStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = shares
            .iter()
            .enumerate()
            .filter(|(_, (requests, _))| !requests.is_empty())
            .map(|(pool, (requests, arrivals))| {
                scope.spawn(move || fleet.engine(pool).serve_open_loop(requests, arrivals).stats)
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool serve"))
            .collect()
    });
    let worst_p99 = pool_stats
        .iter()
        .map(|s| s.p99_latency_us)
        .fold(f64::NAN, f64::max);
    let wall = pool_stats
        .iter()
        .map(|s| s.wall_secs)
        .fold(0.0f64, f64::max);
    ServeStats::from_latencies_us(
        "fleet_worst_pool",
        &[worst_p99],
        Duration::from_secs_f64(wall.max(f64::MIN_POSITIVE)),
        vec![],
    )
}

/// Closed-loop rate of one pool (saturating batches until `window`
/// elapses) — seeds the ramp's starting rate.
fn closed_rate<C: Chip>(engine: &Engine<C>, inputs: &[Vec<f64>], window: Duration) -> f64 {
    let start = Instant::now();
    let mut requests = 0usize;
    while start.elapsed() < window {
        requests += engine.serve(inputs).outputs.len();
    }
    requests as f64 / start.elapsed().as_secs_f64()
}

/// A chip that can be broken at runtime: `infer` panics while the
/// switch is set, which is what a failed device looks like to the
/// recalibration pass (`CostModel::calibrate` quarantines it).
struct BreakableChip {
    inner: MeiRcs,
    broken: Arc<AtomicBool>,
}

impl Chip for BreakableChip {
    fn infer(&self, input: &[f64]) -> Vec<f64> {
        assert!(
            !self.broken.load(Ordering::SeqCst),
            "chip failed (fault injection)"
        );
        Chip::infer(&self.inner, input)
    }
}

/// One serve call's observable bits: global chip id + output pattern.
type Trace = Vec<(usize, Vec<u64>)>;

/// The failover drill's full observable record (asserted bit-identical
/// across reruns).
struct DrillRecord {
    before: Trace,
    after: Trace,
    recovered: Trace,
    primary: usize,
    transitions: Vec<Vec<(usize, Transition)>>,
}

/// Run the failover drill once: serve, break the primary pool,
/// recalibrate (→ ejection), serve on, repair, recalibrate (→
/// re-admission), serve again.
fn failover_drill(mei: &MeiRcs, seed: u64, reps: &[Vec<f64>], requests: usize) -> DrillRecord {
    let switches: Vec<Arc<AtomicBool>> = (0..2).map(|_| Arc::new(AtomicBool::new(false))).collect();
    let engines: Vec<Engine<BreakableChip>> = switches
        .iter()
        .enumerate()
        .map(|(p, switch)| {
            // Distinct physical chips per pool: pool p draws from the
            // (seed, p) substream, exactly like `manufacture_fleet`.
            let pool_seed = prng::substream(seed, p as u64);
            let chips = manufacture_chips(mei, CHIPS_PER_POOL, EXPERIMENT_WRITE_SIGMA, pool_seed)
                .into_chips()
                .into_iter()
                .map(|inner| BreakableChip {
                    inner,
                    broken: Arc::clone(switch),
                })
                .collect();
            // Round-robin placement: the chip sequence is a pure
            // function of the request sequence, never of measured
            // costs, so the drill replays bit-identically.
            Engine::new(ChipPool::from_chips(chips)).with_policy(RoundRobin)
        })
        .collect();
    let mut fleet = Fleet::new(engines, FleetConfig::new(seed).with_replication(2));
    let mut session = fleet.session(WORKLOAD);
    let primary = fleet.route(WORKLOAD).expect("healthy fleet routes");
    let inputs: Vec<Vec<f64>> = reps.iter().cycle().take(requests).cloned().collect();

    let serve = |fleet: &Fleet<BreakableChip>,
                 session: &mut runtime::FleetSession,
                 inputs: &[Vec<f64>]|
     -> Trace {
        fleet
            .serve_session_batch(session, inputs, None)
            .into_iter()
            .map(|item| match item {
                BatchItem::Served(served) => (
                    served.chip,
                    served.output.iter().map(|v| v.to_bits()).collect(),
                ),
                other => panic!("request lost in failover drill: {other:?}"),
            })
            .collect()
    };

    let before = serve(&fleet, &mut session, &inputs);
    // Kill every chip in the primary pool; the next recalibration
    // quarantines them all and the health check ejects the pool.
    switches[primary].store(true, Ordering::SeqCst);
    let eject_transitions = fleet.recalibrate_window(reps, 1);
    assert_eq!(
        eject_transitions,
        vec![(primary, Transition::Ejected(EjectReason::Quarantine))],
        "breaking every chip must eject exactly the primary pool"
    );
    let after = serve(&fleet, &mut session, &inputs);
    // Repair and recalibrate: the pool is re-admitted and the workload's
    // original replica set comes back.
    switches[primary].store(false, Ordering::SeqCst);
    let readmit_transitions = fleet.recalibrate_window(reps, 1);
    assert_eq!(
        readmit_transitions,
        vec![(primary, Transition::Readmitted)],
        "a clean recalibration must re-admit the repaired pool"
    );
    let recovered = serve(&fleet, &mut session, &inputs);

    // Zero requests landed on the dead pool while it was out.
    let dead_chips =
        fleet.chip_offset(primary)..fleet.chip_offset(primary) + fleet.engine(primary).pool().len();
    assert!(
        after.iter().all(|(chip, _)| !dead_chips.contains(chip)),
        "no failover request may land on the ejected pool"
    );
    // The repaired pool serves again once re-admitted.
    assert!(
        recovered.iter().any(|(chip, _)| dead_chips.contains(chip)),
        "re-admission must restore routing to the repaired pool"
    );

    DrillRecord {
        before,
        after,
        recovered,
        primary,
        transitions: vec![eject_transitions, readmit_transitions],
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let fast = fast_mode();
    let window = measure_window(if fast { 0.25 } else { 1.0 });
    let cfg = ExperimentConfig::from_env();
    let sla_target_us = prng::env::parse_or("MEI_FLEET_SLA_US", 2000.0_f64);
    let target_rps = prng::env::parse_or("MEI_FLEET_TARGET_RPS", 10_000.0_f64);

    let setup = table1_setups()
        .into_iter()
        .find(|s| s.workload.name() == WORKLOAD)
        .expect("inversek2j is a Table 1 row");
    let train_samples = if fast { 400 } else { 1_500 };
    let train = setup
        .workload
        .dataset(train_samples, cfg.seed)
        .expect("train data");
    let test = setup.workload.dataset(64, cfg.seed + 1).expect("test data");
    let mei = MeiRcs::train(
        &train,
        &MeiConfig {
            hidden: setup.mei_hidden,
            in_bits: setup.mei_in_bits,
            out_bits: setup.mei_out_bits,
            device: cfg.device(),
            train: TrainConfig {
                epochs: if fast { 15 } else { 60 },
                learning_rate: 0.8,
                ..TrainConfig::default()
            },
            seed: cfg.seed,
            ..MeiConfig::default()
        },
    )
    .expect("MEI training");
    let inputs: Vec<Vec<f64>> = test.inputs().to_vec();
    let reps: Vec<Vec<f64>> = inputs[..8.min(inputs.len())].to_vec();

    eprintln!(
        "== fleet_serving: {WORKLOAD} MEI, {CHIPS_PER_POOL} chips/pool, \
         {:.2}s windows, {sla_target_us:.0} µs p99 target ==",
        window.as_secs_f64()
    );

    // -- Phase 1: SLA capacity search over 1/2/4 pools. --
    // Each fleet replicates the hot workload onto every pool
    // (replication = P) so the whole fleet shares the load.
    let pool_sizes: [usize; 3] = [1, 2, 4];
    let mut sla_reports: Vec<(usize, f64, SlaReport, bool)> = Vec::new();
    let mut sla_points: Vec<SlaPoint> = Vec::new();
    for &pools in &pool_sizes {
        let fleet = manufacture_fleet(
            &mei,
            pools,
            CHIPS_PER_POOL,
            EXPERIMENT_WRITE_SIGMA,
            FleetConfig::new(cfg.seed)
                .with_replication(pools)
                .from_env(),
        );
        let closed = closed_rate(fleet.engine(0), &inputs, window) * pools as f64;
        let ramp_config = RampConfig {
            start_rps: (closed * 0.15).max(10.0),
            growth: if fast { 1.6 } else { 1.35 },
            max_steps: if fast { 8 } else { 12 },
            knee_factor: 4.0,
        };
        let ramp = ramp_to_knee(&ramp_config, |rate| {
            fleet_measure(&fleet, &inputs, rate, window)
        });
        let sla = sla_search(
            &ramp,
            &SlaConfig {
                target_p99_us: sla_target_us,
                max_iters: if fast { 4 } else { 8 },
                rel_tol: 0.05,
            },
            |rate| fleet_measure(&fleet, &inputs, rate, window),
        );
        if sla.met {
            sla_points.push(SlaPoint {
                sla_p99_us: sla_target_us,
                max_rps_per_pool: sla.max_rps / pools as f64,
            });
        }
        sla_reports.push((pools, ramp.knee_step().offered_rps, sla, ramp.kneed));
    }

    let rows: Vec<Vec<String>> = sla_reports
        .iter()
        .map(|(pools, knee_rps, sla, _)| {
            vec![
                pools.to_string(),
                format!("{knee_rps:.0}"),
                if sla.met {
                    format!("{:.0}", sla.max_rps)
                } else {
                    "unmet".to_string()
                },
                if sla.met {
                    format!("{:.0}", sla.p99_at_max_us)
                } else {
                    "—".to_string()
                },
            ]
        })
        .collect();
    eprintln!(
        "{}",
        format_table(
            &["pools", "knee rps", "max rps @ SLA", "p99 @ max (µs)"],
            &rows
        )
    );

    // -- Phase 2: capacity planning from the recorded points. --
    let mut planner = manufacture_fleet(
        &mei,
        *pool_sizes.last().expect("sizes"),
        CHIPS_PER_POOL,
        EXPERIMENT_WRITE_SIGMA,
        FleetConfig::new(cfg.seed),
    );
    for point in &sla_points {
        planner.record_sla_point(*point);
    }
    let pools_needed = planner.pools_for(target_rps, sla_target_us);
    match pools_needed {
        Some(n) => {
            eprintln!("pools_for({target_rps:.0} rps, {sla_target_us:.0} µs p99) = {n} pools")
        }
        None => eprintln!(
            "pools_for({target_rps:.0} rps, {sla_target_us:.0} µs p99): \
             unanswerable — no measured point met the target"
        ),
    }

    // -- Phase 3: failover drill (forced quarantine, zero loss, --
    // -- bit-identical rerun). --
    let drill_requests = if fast { 24 } else { 96 };
    let first = failover_drill(&mei, cfg.seed, &reps, drill_requests);
    let second = failover_drill(&mei, cfg.seed, &reps, drill_requests);
    assert_eq!(
        first.primary, second.primary,
        "rendezvous routing must pick the same primary on a rerun"
    );
    assert_eq!(
        first.transitions, second.transitions,
        "failover transitions must replay identically"
    );
    let identical = first.before == second.before
        && first.after == second.after
        && first.recovered == second.recovered;
    assert!(
        identical,
        "the failover drill must be bit-identical across reruns"
    );
    eprintln!(
        "failover drill: primary pool {} ejected (quarantine), \
         {}+{}+{} requests served, 0 lost, rerun bit-identical",
        first.primary,
        first.before.len(),
        first.after.len(),
        first.recovered.len()
    );

    let meta = mei_bench::json::meta("fleet_serving", cfg.seed);
    let sla_json: Vec<String> = sla_reports
        .iter()
        .map(|(pools, knee_rps, sla, kneed)| {
            format!(
                "{{\"pools\":{pools},\"knee_rps\":{},\"kneed\":{kneed},\"sla\":{}}}",
                json_num(*knee_rps, 3),
                sla.to_json()
            )
        })
        .collect();
    let json = format!(
        "{{\"meta\":{meta},\"suite\":\"fleet_serving/{WORKLOAD}\",\
         \"window_secs\":{},\"chips_per_pool\":{CHIPS_PER_POOL},\
         \"sla_target_p99_us\":{},\"sla\":[{}],\
         \"pools_for\":{{\"target_rps\":{},\"sla_p99_us\":{},\"pools\":{}}},\
         \"failover\":{{\"pools\":2,\"primary\":{},\"reason\":\"quarantine\",\
         \"served_before\":{},\"served_after\":{},\"served_recovered\":{},\
         \"lost\":0,\"rerun_identical\":{identical}}}}}",
        json_num(window.as_secs_f64(), 3),
        json_num(sla_target_us, 3),
        sla_json.join(","),
        json_num(target_rps, 3),
        json_num(sla_target_us, 3),
        pools_needed.map_or_else(|| "null".to_string(), |n| n.to_string()),
        first.primary,
        first.before.len(),
        first.after.len(),
        first.recovered.len(),
    );
    println!("{json}");
    if let Ok(path) = std::env::var("MEI_BENCH_JSON") {
        if let Err(err) = std::fs::write(&path, &json) {
            panic!("cannot write MEI_BENCH_JSON report to '{path}': {err}");
        }
    }
}
