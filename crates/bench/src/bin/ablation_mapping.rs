//! Ablation: differential-pair mapping vs the literal Eq (2) divider.
//!
//! The paper budgets `2·(I+O)·H` devices because "two crossbars are
//! required to represent a matrix with both positive and negative
//! parameters". The alternative is a single array with resistive-divider
//! readout and an offset (reference-column) scheme for signs — half the
//! devices, but the divider normalization couples columns and the
//! realization is approximate. This ablation measures that trade on random
//! weight matrices: exactness, device count, and sensitivity to process
//! variation.
//!
//! Run with: `cargo run --release -p mei-bench --bin ablation_mapping`

use crossbar::{DifferentialPair, MappingConfig, SignedDividerLayer};
use mei_bench::format_table;
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};
use rram::{DeviceParams, VariationModel};

fn random_matrix(outputs: usize, inputs: usize, scale: f64, rng: &mut StdRng) -> Vec<Vec<f64>> {
    (0..outputs)
        .map(|_| (0..inputs).map(|_| rng.gen_range(-scale..scale)).collect())
        .collect()
}

fn matvec(w: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
    w.iter()
        .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
        .collect()
}

fn max_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(p, q)| (p - q).abs())
        .fold(0.0, f64::max)
}

fn main() {
    println!("== Ablation: differential pair vs single-array divider mapping ==\n");
    let params = DeviceParams::ideal();
    let mut rng = StdRng::seed_from_u64(1);
    let mut rows = Vec::new();

    for &(outputs, inputs) in &[(4usize, 6usize), (8, 12), (16, 16)] {
        // Divider feasibility bounds the coefficient magnitudes: keep the
        // column sums comfortably below 1.
        let scale = 0.6 / inputs as f64;
        let w = random_matrix(outputs, inputs, scale, &mut rng);
        let x: Vec<f64> = (0..inputs).map(|i| (i as f64 * 0.41).sin().abs()).collect();
        let exact = matvec(&w, &x);

        let mut pair =
            DifferentialPair::from_weights(&w, params, &MappingConfig::default()).expect("pair");
        let mut divider = SignedDividerLayer::from_signed(&w, params, 1e-3).expect("divider");

        let pair_err = max_err(&pair.matvec(&x), &exact);
        let div_err = max_err(&divider.forward(&x), &exact);

        // Sensitivity: mean output deviation over 20 process-variation draws.
        let variation = VariationModel::process_variation(0.05);
        let mut pair_dev = 0.0;
        let mut div_dev = 0.0;
        for _ in 0..20 {
            pair.disturb(&variation, &mut rng);
            pair_dev += max_err(&pair.matvec(&x), &exact);
            pair.restore();
            divider.disturb(&variation, &mut rng);
            div_dev += max_err(&divider.forward(&x), &exact);
            divider.restore();
        }
        pair_dev /= 20.0;
        div_dev /= 20.0;

        rows.push(vec![
            format!("{inputs}×{outputs}"),
            format!("{} / {}", pair.device_count(), divider.device_count()),
            format!("{pair_err:.2e} / {div_err:.2e}"),
            format!("{pair_dev:.2e} / {div_dev:.2e}"),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "matrix",
                "devices (pair / divider)",
                "max |err| clean (pair / divider)",
                "mean max |err| @ σ_pv=0.05",
            ],
            &rows
        )
    );
    println!("both mappings are exact on clean devices; the offset-column divider");
    println!("needs ~half the devices of the differential pair, at the cost of a");
    println!("somewhat higher sensitivity to process variation (the reference");
    println!("column's error correlates across every output).");
}
