//! Training-throughput benchmark: sharded data-parallel backprop
//! (`neural::Trainer` with [`neural::TrainConfig::threads`]) on two MEI
//! topologies.
//!
//! The workloads are the §3.1 **expfit** motivation function and the
//! Table 1 **inversek2j** row, both encoded to their B-bit interface view
//! (the exact dataset `MeiRcs::train` backpropagates over) and trained
//! under the Eq (5) MSB-weighted loss. For each thread count in
//! `{1, 2, 4, auto}` the benchmark repeats full `Trainer::train` calls
//! until the measurement window elapses and reports samples/sec,
//! epochs/sec and the speedup over the serial run.
//!
//! Two invariants are *asserted* on every host:
//!
//! * the final loss is bit-identical at every thread count (the
//!   determinism contract), and
//! * when `MEI_BENCH_MIN_SPEEDUP` is set **and** the host has ≥ 2
//!   hardware threads, the 2-thread speedup must reach that floor.
//!
//! On a single-hardware-thread host speedups are reported, never
//! asserted.
//!
//! Environment knobs:
//!
//! * `MEI_BENCH_SECONDS=<f>` — measurement window per thread count
//!   (default 2.0);
//! * `MEI_BENCH_FAST=1` — smoke mode: ~0.2 s windows, small datasets and
//!   one epoch per training call;
//! * `MEI_BENCH_JSON=<path>` — also write the JSON report to a file;
//! * `MEI_BENCH_MIN_SPEEDUP=<f>` — sanity floor on the 2-thread speedup
//!   (only enforced on multi-core hosts);
//! * `MEI_THREADS` is *not* read here: the thread count under test is the
//!   experiment variable.
//!
//! Run with: `cargo run --release -p mei-bench --bin training_throughput`

use std::time::{Duration, Instant};

use interface::InterfaceSpec;
use mei::exponential_bit_weights;
use mei_bench::{fast_mode, format_table, measure_window, table1_setups};
use neural::{Dataset, MlpBuilder, TrainConfig, Trainer, WeightedMse};
use runtime::{json_num, resolve_threads};
use workloads::expfit::ExpFit;
use workloads::Workload;

/// One workload's encoded training problem.
struct Problem {
    name: &'static str,
    layout: Vec<usize>,
    encoded: Dataset,
    loss: WeightedMse,
    batch_size: usize,
}

impl Problem {
    /// Encode a workload's dataset to its B-bit interface view, exactly as
    /// `MeiRcs::train` does before backprop.
    fn new(
        name: &'static str,
        workload: &dyn Workload,
        hidden: usize,
        bits: usize,
        samples: usize,
        seed: u64,
    ) -> Self {
        let data = workload.dataset(samples, seed).expect("workload dataset");
        let input_spec = InterfaceSpec::new(data.input_dim(), bits);
        let output_spec = InterfaceSpec::new(data.output_dim(), bits);
        let encoded = data
            .map_inputs(|x| input_spec.encode(x))
            .expect("input encoding")
            .map_targets(|_, y| output_spec.encode(y))
            .expect("target encoding");
        Self {
            name,
            layout: vec![input_spec.ports(), hidden, output_spec.ports()],
            encoded,
            loss: WeightedMse::new(exponential_bit_weights(&output_spec)),
            batch_size: 16,
        }
    }
}

/// One `(problem, thread count)` measurement.
struct RunResult {
    threads: usize,
    samples_per_sec: f64,
    epochs_per_sec: f64,
    final_loss: f64,
}

impl RunResult {
    fn to_json(&self, speedup: f64) -> String {
        format!(
            "{{\"threads\":{},\"samples_per_sec\":{},\"epochs_per_sec\":{},\
             \"speedup_vs_serial\":{},\"final_loss\":{}}}",
            self.threads,
            json_num(self.samples_per_sec, 1),
            json_num(self.epochs_per_sec, 3),
            json_num(speedup, 4),
            json_num(self.final_loss, 12)
        )
    }
}

/// Repeat full training runs at one thread count until the window elapses.
fn measure(
    problem: &Problem,
    threads: usize,
    epochs_per_call: usize,
    window: Duration,
) -> RunResult {
    let config = TrainConfig {
        epochs: epochs_per_call,
        learning_rate: 0.5,
        batch_size: problem.batch_size,
        threads,
        ..TrainConfig::default()
    };
    let trainer = Trainer::with_loss(config, problem.loss.clone());
    let mut total_epochs = 0usize;
    let start = Instant::now();
    // Every call trains from the same seed, so the final loss is the same
    // number each iteration; the last one is kept for the identity check.
    let final_loss = loop {
        let mut net = MlpBuilder::new(&problem.layout).seed(7).build();
        let report = trainer.train(&mut net, &problem.encoded);
        total_epochs += report.epochs_run;
        if start.elapsed() >= window {
            break report.final_loss;
        }
    };
    let secs = start.elapsed().as_secs_f64();
    RunResult {
        threads,
        samples_per_sec: (total_epochs * problem.encoded.len()) as f64 / secs,
        epochs_per_sec: total_epochs as f64 / secs,
        final_loss,
    }
}

fn main() {
    let fast = fast_mode();
    let window = measure_window(if fast { 0.2 } else { 2.0 });
    let epochs_per_call = if fast { 1 } else { 8 };
    let samples = if fast { 256 } else { 2_000 };

    let inversek2j = table1_setups()
        .into_iter()
        .find(|s| s.workload.name() == "inversek2j")
        .expect("inversek2j is a Table 1 row");
    let problems = [
        Problem::new("expfit", &ExpFit::new(), 32, 8, samples, 11),
        Problem::new(
            "inversek2j",
            inversek2j.workload.as_ref(),
            inversek2j.mei_hidden,
            inversek2j.mei_in_bits,
            samples,
            12,
        ),
    ];

    let auto = resolve_threads(0);
    let mut thread_counts = vec![1usize, 2, 4, auto];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    eprintln!(
        "== training throughput: sharded backprop, {} hardware threads, {:.2}s windows ==",
        auto,
        window.as_secs_f64()
    );

    let min_speedup = prng::env::parse_validated::<f64>(
        "MEI_BENCH_MIN_SPEEDUP",
        "a finite speedup factor > 0",
        |s| s.is_finite() && *s > 0.0,
    );

    let mut sections: Vec<String> = Vec::new();
    for problem in &problems {
        let runs: Vec<RunResult> = thread_counts
            .iter()
            .map(|&t| measure(problem, t, epochs_per_call, window))
            .collect();

        // Determinism contract: the trained loss is a pure function of the
        // configuration — asserted on every host, unlike the speedup.
        let serial_bits = runs[0].final_loss.to_bits();
        for run in &runs[1..] {
            assert_eq!(
                run.final_loss.to_bits(),
                serial_bits,
                "{}: final loss diverged at {} threads",
                problem.name,
                run.threads
            );
        }

        let serial_rate = runs[0].samples_per_sec;
        let speedup_of = |r: &RunResult| {
            if serial_rate > 0.0 {
                r.samples_per_sec / serial_rate
            } else {
                1.0
            }
        };

        let rows: Vec<Vec<String>> = runs
            .iter()
            .map(|r| {
                vec![
                    r.threads.to_string(),
                    format!("{:.0}", r.samples_per_sec),
                    format!("{:.2}", r.epochs_per_sec),
                    format!("{:.2}×", speedup_of(r)),
                ]
            })
            .collect();
        eprintln!(
            "-- {} ({:?}, {} samples) --\n{}",
            problem.name,
            problem.layout,
            problem.encoded.len(),
            format_table(&["threads", "samples/s", "epochs/s", "speedup"], &rows)
        );

        if let Some(floor) = min_speedup {
            let two = runs.iter().find(|r| r.threads == 2).map(speedup_of);
            match two {
                Some(s) if auto >= 2 => {
                    assert!(
                        s >= floor,
                        "{}: 2-thread speedup {s:.2}× below the {floor:.2}× floor",
                        problem.name
                    );
                }
                _ => eprintln!(
                    "   ({} hardware threads — MEI_BENCH_MIN_SPEEDUP floor not enforced)",
                    auto
                ),
            }
        }

        let body: Vec<String> = runs.iter().map(|r| r.to_json(speedup_of(r))).collect();
        sections.push(format!(
            "{{\"name\":\"{}\",\"layout\":{:?},\"samples\":{},\"batch_size\":{},\"runs\":[{}]}}",
            problem.name,
            problem.layout,
            problem.encoded.len(),
            problem.batch_size,
            body.join(",")
        ));
    }

    eprintln!("(speedups on a {auto}-hardware-thread host are reported, not asserted)");

    // Every net in this bench trains from the fixed seed 7 (see
    // `MlpBuilder::seed` above), so that is the run's root seed.
    let meta = mei_bench::json::meta("training_throughput", 7);
    let json = format!(
        "{{\"meta\":{meta},\"suite\":\"training_throughput\",\"hardware_threads\":{},\
         \"window_secs\":{:.3},\
         \"epochs_per_call\":{},\"workloads\":[{}]}}",
        auto,
        window.as_secs_f64(),
        epochs_per_call,
        sections.join(",")
    );
    println!("{json}");
    if let Ok(path) = std::env::var("MEI_BENCH_JSON") {
        if let Err(err) = std::fs::write(&path, &json) {
            panic!("cannot write MEI_BENCH_JSON report to '{path}': {err}");
        }
    }
}
