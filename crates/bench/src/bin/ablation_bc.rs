//! Ablation: the `B_C` error-relaxation of SAAB (Algorithm 1, line 6).
//!
//! The paper argues for comparing only "the first 4–6 bits in an 8-bit
//! array": without the relaxation "most of the training samples will be
//! either sensitive or hard ... and the performance of SAAB may
//! significantly decrease". This sweep trains SAAB on the `exp(−x²)` task at
//! every `B_C` and reports the ensemble MSE and how many learners survived.
//!
//! Run with: `cargo run --release -p mei-bench --bin ablation_bc`

use mei::{evaluate_mse, MeiConfig, Saab, SaabConfig};
use mei_bench::{format_table, ExperimentConfig};
use neural::Dataset;
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};

fn expfit(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::generate(n, &mut rng, |r| {
        let x: f64 = r.gen();
        (vec![x], vec![(-x * x).exp()])
    })
    .expect("valid dataset")
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    let train = expfit(cfg.train_samples.min(4000), 1);
    let test = expfit(cfg.test_samples, 2);
    println!("== Ablation: SAAB compare-bits B_C (8-bit output, K = 3) ==\n");

    let mei_cfg = MeiConfig {
        hidden: 16,
        device: cfg.device(),
        train: cfg.mei_train(false),
        seed: cfg.seed,
        ..MeiConfig::default()
    };

    let mut rows = Vec::new();
    let mut best = (0usize, f64::INFINITY);
    for bc in 1..=8usize {
        let saab_cfg = SaabConfig {
            rounds: 3,
            compare_bits: bc,
            ..SaabConfig::default()
        };
        match Saab::train(&train, &mei_cfg, &saab_cfg) {
            Ok(saab) => {
                let mse = evaluate_mse(&saab, &test);
                if mse < best.1 {
                    best = (bc, mse);
                }
                rows.push(vec![
                    bc.to_string(),
                    saab.len().to_string(),
                    format!("{mse:.5}"),
                ]);
            }
            Err(_) => rows.push(vec![bc.to_string(), "0".into(), "all discarded".into()]),
        }
    }
    println!(
        "{}",
        format_table(&["B_C", "learners kept", "ensemble MSE"], &rows)
    );
    println!(
        "best B_C = {} (paper recommends 4–6 of 8; too-strict comparisons discard \
         learners, too-lax ones stop separating hard samples)",
        best.0
    );
}
