//! CNN-over-crossbars serving benchmark: tiling identity, accuracy,
//! throughput and wear-aware placement.
//!
//! Four phases, in dependency order:
//!
//! 1. **Tiling identity (asserted, before any timing)** — the trained
//!    ternary conv layer is re-tiled at 1, 2 and `patch_len` crossbar
//!    tiles and every tiling must reproduce the digital
//!    direct-convolution oracle **bitwise** on every test image, on both
//!    the packed `BitInput` and the scalar matvec path. A bench that
//!    times a wrong kernel is worse than no bench; this phase aborts it.
//! 2. **Accuracy** — held-out classification accuracy of the digital
//!    twin, the clean analog pipeline (must match the twin exactly — the
//!    tile boundary is digital) and the analog pipeline under lognormal
//!    write noise, averaged over seeds.
//! 3. **Throughput** — a manufactured 4-chip [`runtime::Engine`] serves
//!    closed batches for a measured window; requests/s are reported,
//!    never asserted (host-dependent).
//! 4. **Wear experiment** — two identical 4-chip engines, chip 0
//!    pre-aged with maintenance disturb/restore cycles. Both serve the
//!    same windowed request stream; after each window every chip pays
//!    one refresh cycle per request it served, and the wear-aware engine
//!    refreshes its placement snapshot at the boundary. Wear-aware
//!    placement must end with **no more** total-write imbalance
//!    (max − min across chips) than round-robin — asserted before the
//!    JSON report is written.
//!
//! Environment knobs:
//!
//! * `MEI_BENCH_SECONDS=<f>` — measurement window (default 1.0);
//! * `MEI_BENCH_FAST=1` — smoke mode: tiny training, short windows;
//! * `MEI_BENCH_JSON=<path>` — also write the JSON report to a file;
//! * `MEI_WEAR_ALPHA=<f>` — wear-penalty strength (default 1.0).
//!
//! Run with: `cargo run --release -p mei-bench --bin cnn_serving`

use std::time::Instant;

use crossbar::{direct_conv, TiledConv};
use mei::{argmax, manufacture_engine, manufacture_fleet, CnnConfig, CnnRcs};
use mei_bench::{
    fast_mode, format_table, measure_window, ExperimentConfig, EXPERIMENT_WRITE_SIGMA,
};
use neural::{SteConfig, TrainConfig};
use prng::rngs::StdRng;
use prng::substream_rng;
use rram::VariationModel;
use runtime::{json_num, Chip, Engine, FleetConfig, RoundRobin};

const CHIPS: usize = 4;
const WEAR_SALT: u64 = 0x434E_4E5F_5745_4152; // "CNN_WEAR"

/// One request = one raw image; the whole test set, cycled.
fn requests(images: &[Vec<f64>], n: usize) -> Vec<Vec<f64>> {
    (0..n).map(|i| images[i % images.len()].clone()).collect()
}

/// Held-out accuracy of the digital twin (binarized conv + float head),
/// the all-digital baseline the analog pipeline must match bit-for-bit
/// on clean arrays.
fn digital_accuracy(cnn: &CnnRcs, data: &neural::Dataset) -> f64 {
    let mut correct = 0usize;
    for (x, t) in data.iter() {
        let scores = cnn.infer_digital(x).expect("dataset-validated input");
        correct += usize::from(argmax(&scores) == argmax(t));
    }
    correct as f64 / data.len() as f64
}

/// `cycles` maintenance disturb/restore cycles on one chip: each cycle
/// is one programming pulse per device (the endurance cost of a refresh)
/// with the electrical state rewound afterwards.
fn maintain(chip: &mut CnnRcs, cycles: usize, variation: &VariationModel, seed: u64) {
    let mut rng: StdRng = substream_rng(seed, 0);
    for _ in 0..cycles {
        chip.disturb(variation, &mut rng);
        chip.restore();
    }
}

/// Run the windowed wear scenario on `engine`: `windows` windows of
/// `batch` requests each; after each window every chip pays one refresh
/// cycle per served request, and (when `alpha` is set) the engine's
/// wear snapshot is refreshed at the boundary. Returns per-chip total
/// writes after the last window.
fn wear_scenario(
    mut engine: Engine<CnnRcs>,
    images: &[Vec<f64>],
    windows: usize,
    batch: usize,
    alpha: Option<f64>,
    seed: u64,
) -> Vec<u64> {
    let variation = VariationModel::process_variation(EXPERIMENT_WRITE_SIGMA);
    let lens: Vec<usize> = requests(images, batch).iter().map(Vec::len).collect();
    if let Some(alpha) = alpha {
        // Window 0 plans off the pre-aged counters.
        engine.refresh_wear_policy(alpha);
    }
    for window in 0..windows {
        let assignment = engine.assignment(&lens);
        let mut served = [0usize; CHIPS];
        for &chip in &assignment {
            served[chip] += 1;
        }
        for (c, chip) in engine.pool_mut().chips_mut().iter_mut().enumerate() {
            maintain(
                chip,
                served[c],
                &variation,
                prng::substream(seed, (window * CHIPS + c) as u64),
            );
        }
        if let Some(alpha) = alpha {
            engine.refresh_wear_policy(alpha);
        }
    }
    engine
        .pool()
        .wear()
        .into_iter()
        .map(|w| w.expect("CNN chips report wear"))
        .collect()
}

fn main() {
    let fast = fast_mode();
    let window = measure_window(if fast { 0.25 } else { 1.0 });
    let cfg = ExperimentConfig::from_env();
    let alpha = prng::env::parse_or("MEI_WEAR_ALPHA", 1.0_f64);

    let config = if fast {
        CnnConfig {
            seed: cfg.seed,
            ..CnnConfig::quick_test()
        }
    } else {
        CnnConfig {
            in_h: 16,
            in_w: 16,
            // 1176 binary features over a few hundred samples: keep the
            // head small so it generalizes instead of memorizing.
            hidden: 12,
            stride: 2,
            // STE gradients accumulate over ~200 patches at 16x16 (vs 36
            // at 8x8); scale the rates down to keep the shadow updates in
            // the same per-step range.
            ste: SteConfig {
                epochs: 120,
                lr: 0.01,
                probe_lr: 0.02,
                ..SteConfig::default()
            },
            train: TrainConfig {
                epochs: 160,
                learning_rate: 0.5,
                ..TrainConfig::default()
            },
            seed: cfg.seed,
            ..CnnConfig::default()
        }
    };
    let per_class = if fast { 8 } else { 150 };
    let train = workloads::cnn_dataset(config.in_w, config.in_h, per_class, cfg.seed);
    let test = workloads::cnn_dataset(config.in_w, config.in_h, per_class / 2, cfg.seed + 1);

    eprintln!(
        "== cnn_serving: {}×{} images, {} filters, {} tiles, {:.2}s windows ==",
        config.in_w,
        config.in_h,
        config.filters,
        config.tiles,
        window.as_secs_f64()
    );
    let cnn = CnnRcs::train(&train, &config).expect("CNN training");
    let shape = *cnn.conv().shape();
    eprintln!(
        "trained: {} | ste loss {:.4} → {:.4}, probe {:.3}",
        cnn.conv(),
        cnn.ste_report().initial_loss,
        cnn.ste_report().final_loss,
        cnn.ste_report().probe_accuracy
    );

    // -- Phase 1: tiling identity, asserted before anything is timed. --
    let weights = cnn.twin().ternary_weights();
    let tile_counts = [1, 2, shape.patch_len()];
    for &tiles in &tile_counts {
        let retiled = TiledConv::new(shape, &weights, tiles, config.device, &config.mapping)
            .expect("retiling a trained conv");
        for x in test.inputs() {
            let oracle = direct_conv(&shape, &weights, x);
            assert_eq!(
                retiled.forward(x),
                oracle,
                "{}-tile packed conv diverged from the digital oracle",
                retiled.tile_count()
            );
            assert_eq!(
                retiled.forward_scalar(x),
                oracle,
                "{}-tile scalar conv diverged from the digital oracle",
                retiled.tile_count()
            );
        }
    }
    eprintln!(
        "tiling identity: {} images × tiles {:?} bitwise vs direct oracle ✓",
        test.len(),
        tile_counts
    );

    // -- Phase 2: accuracy (digital twin, clean analog, disturbed). --
    let acc_digital = digital_accuracy(&cnn, &test);
    let acc_analog = cnn.accuracy(&test);
    assert!(
        (acc_digital - acc_analog).abs() < f64::EPSILON,
        "clean analog accuracy must equal the digital twin exactly"
    );
    let draws: u32 = if fast { 2 } else { 5 };
    let variation = VariationModel::process_variation(EXPERIMENT_WRITE_SIGMA);
    let acc_disturbed = (0..draws)
        .map(|draw| {
            let mut noisy = cnn.clone();
            let mut rng: StdRng = substream_rng(cfg.seed, u64::from(draw));
            noisy.disturb(&variation, &mut rng);
            noisy.accuracy(&test)
        })
        .sum::<f64>()
        / f64::from(draws);
    eprintln!(
        "accuracy: train {:.3}, digital {acc_digital:.3}, analog {acc_analog:.3}, \
         disturbed(σ={EXPERIMENT_WRITE_SIGMA}) {acc_disturbed:.3} over {draws} draws",
        cnn.accuracy(&train)
    );

    // -- Phase 3: measured serving throughput (reported, not asserted). --
    let engine = manufacture_engine(&cnn, CHIPS, EXPERIMENT_WRITE_SIGMA, cfg.seed);
    let sheet = Chip::cost_sheet(&cnn).expect("CNN chips are accounted");
    let batch = requests(test.inputs(), if fast { 32 } else { 128 });
    let start = Instant::now();
    let mut served = 0usize;
    while start.elapsed() < window {
        let outcome = engine.serve(&batch);
        assert!(outcome.failed.is_empty(), "healthy chips must not fail");
        served += batch.len();
    }
    let rps = served as f64 / start.elapsed().as_secs_f64();
    eprintln!(
        "throughput: {served} requests in {:.2}s on {CHIPS} chips → {rps:.0} req/s \
         | chip sheet: {sheet}",
        start.elapsed().as_secs_f64()
    );

    // -- Phase 4: the wear experiment. --
    let windows = if fast { 3 } else { 6 };
    let batch_len = if fast { 40 } else { 120 };
    let preage = if fast { 60 } else { 300 };
    let build = |policy_rr: bool| {
        let mut engine = manufacture_engine(&cnn, CHIPS, EXPERIMENT_WRITE_SIGMA, cfg.seed);
        if policy_rr {
            engine = engine.with_policy(RoundRobin);
        }
        // Chip 0 arrives with a maintenance history two orders of
        // magnitude above its peers.
        maintain(
            &mut engine.pool_mut().chips_mut()[0],
            preage,
            &VariationModel::process_variation(EXPERIMENT_WRITE_SIGMA),
            WEAR_SALT,
        );
        engine
    };
    let rr_wear = wear_scenario(
        build(true),
        test.inputs(),
        windows,
        batch_len,
        None,
        cfg.seed ^ WEAR_SALT,
    );
    let wa_wear = wear_scenario(
        build(false),
        test.inputs(),
        windows,
        batch_len,
        Some(alpha),
        cfg.seed ^ WEAR_SALT,
    );
    let spread = |wear: &[u64]| wear.iter().max().unwrap() - wear.iter().min().unwrap();
    let (rr_max, wa_max) = (
        *rr_wear.iter().max().unwrap(),
        *wa_wear.iter().max().unwrap(),
    );
    let (rr_spread, wa_spread) = (spread(&rr_wear), spread(&wa_wear));
    let rows = vec![
        vec![
            "round_robin".into(),
            format!("{rr_wear:?}"),
            rr_max.to_string(),
            rr_spread.to_string(),
        ],
        vec![
            "wear_aware".into(),
            format!("{wa_wear:?}"),
            wa_max.to_string(),
            wa_spread.to_string(),
        ],
    ];
    eprintln!(
        "-- wear: {windows} windows × {batch_len} requests, chip 0 pre-aged {preage} cycles, \
         α={alpha} --\n{}",
        format_table(&["policy", "per-chip writes", "max", "max−min"], &rows)
    );
    assert!(
        wa_max <= rr_max,
        "wear-aware placement must not out-wear round-robin: {wa_wear:?} vs {rr_wear:?}"
    );
    assert!(
        wa_spread <= rr_spread,
        "wear-aware placement must not widen the write imbalance: \
         {wa_wear:?} vs {rr_wear:?}"
    );

    // -- Fleet rotation demo: the boundary hook at fleet scale. --
    let mut fleet = manufacture_fleet(
        &cnn,
        2,
        2,
        EXPERIMENT_WRITE_SIGMA,
        FleetConfig::new(cfg.seed),
    );
    let (fleet_window, snapshots) = fleet.rotate_wear(alpha);
    eprintln!(
        "fleet: rotated {} pools to window {fleet_window}, wear snapshots {:?}",
        snapshots.len(),
        snapshots
    );

    // -- JSON report (meta first, strict RFC 8259). --
    let meta = mei_bench::json::meta("cnn_serving", cfg.seed);
    let wear_json = |wear: &[u64], max: u64, spr: u64| {
        let per_chip: Vec<String> = wear.iter().map(u64::to_string).collect();
        format!(
            "{{\"per_chip_writes\":[{}],\"max\":{max},\"imbalance\":{spr}}}",
            per_chip.join(",")
        )
    };
    let tiles_json: Vec<String> = tile_counts.iter().map(|t| t.to_string()).collect();
    let json = format!(
        "{{\"meta\":{meta},\"suite\":\"cnn_serving\",\
         \"shape\":{{\"in_channels\":{},\"in_h\":{},\"in_w\":{},\"filters\":{},\
         \"kernel\":{},\"stride\":{},\"tiles\":{},\"patch_len\":{},\
         \"interface_bits\":{}}},\
         \"identity\":{{\"images\":{},\"tile_counts\":[{}],\"bitwise\":true}},\
         \"accuracy\":{{\"digital\":{},\"analog\":{},\"disturbed\":{},\
         \"write_sigma\":{},\"draws\":{draws}}},\
         \"throughput\":{{\"chips\":{CHIPS},\"window_secs\":{},\"requests\":{served},\
         \"rps\":{},\"chip_sheet\":{}}},\
         \"wear\":{{\"windows\":{windows},\"batch\":{batch_len},\"preage_cycles\":{preage},\
         \"alpha\":{},\"round_robin\":{},\"wear_aware\":{}}},\
         \"fleet\":{{\"pools\":{},\"window\":{fleet_window}}}}}",
        shape.in_channels,
        shape.in_h,
        shape.in_w,
        shape.filters,
        shape.kernel,
        shape.stride,
        cnn.conv().tile_count(),
        shape.patch_len(),
        cnn.tile_interface_bits(),
        test.len(),
        tiles_json.join(","),
        json_num(acc_digital, 6),
        json_num(acc_analog, 6),
        json_num(acc_disturbed, 6),
        json_num(EXPERIMENT_WRITE_SIGMA, 6),
        json_num(window.as_secs_f64(), 3),
        json_num(rps, 1),
        sheet.to_json(),
        json_num(alpha, 3),
        wear_json(&rr_wear, rr_max, rr_spread),
        wear_json(&wa_wear, wa_max, wa_spread),
        snapshots.len(),
    );
    mei_bench::json::validate(&json).expect("cnn_serving emits strict JSON");
    println!("{json}");
    if let Ok(path) = std::env::var("MEI_BENCH_JSON") {
        if let Err(err) = std::fs::write(&path, &json) {
            panic!("cannot write MEI_BENCH_JSON report to '{path}': {err}");
        }
    }
}
