//! Drift + admission benchmark: serving a pool whose chips *age*, with
//! and without online cost refresh, then gating an overloaded pool with
//! the knee-calibrated admission controller.
//!
//! The workload is the Table 1 **inversek2j** MEI system. Two phases:
//!
//! 1. **drift** — a 4-chip [`DriftingChip`] pool (latency-only profile,
//!    so output bits stay fixed and the comparison is pure service time)
//!    is aged two serving windows under two regimes: a **frozen**
//!    size-aware engine keeps the cost model it calibrated at window 0,
//!    while a **recalibrated** engine refits the model at every window
//!    boundary (`Engine::recalibrate_window`) and re-routes around the
//!    chips that drifted hardest. Both serve the same open-loop load;
//!    the p99 ratio is *reported, never asserted* — on a 1-core host the
//!    placement advantage cannot show up in wall-clock latency.
//! 2. **admission** — a healthy pool is ramped to its latency knee
//!    (`mei_bench::ramp`), the knee is converted into an
//!    [`AdmissionConfig`] (3× p99 headroom), and the gated engine is
//!    offered 0.5× and 1.5× the knee rate. The gate simulates queueing
//!    in *virtual time* — decisions never read a clock — so two
//!    properties hold on any host and **are asserted**: under the knee
//!    nothing is shed, 1.5× over it the shed rate is positive. The p99
//!    of the admitted traffic at the over-knee rate is reported against
//!    the ungated run's p99 (the bound the gate buys).
//!
//! Human-readable tables go to stderr; the machine-diffable JSON report
//! goes to stdout (and to `MEI_BENCH_JSON` when set).
//!
//! Environment knobs:
//!
//! * `MEI_BENCH_SECONDS=<f>` — measurement window per phase (default 2.0);
//! * `MEI_BENCH_FAST=1` — smoke mode: ~0.3 s windows, tiny training
//!   budget, shorter ramps;
//! * `MEI_BENCH_JSON=<path>` — also write the JSON report to a file;
//! * `MEI_ADMIT_MAX_DELAY_US`, `MEI_ADMIT_SECS_PER_COST` — override the
//!   knee-derived admission bound (see `runtime::admission`).
//!
//! Run with: `cargo run --release -p mei-bench --bin drift_admission`

use std::time::{Duration, Instant};

use mei::{manufacture_drifting_engine, manufacture_engine, MeiConfig, MeiRcs};
use mei_bench::ramp::{ramp_to_knee, RampConfig};
use mei_bench::{
    fast_mode, format_table, measure_window, table1_setups, ExperimentConfig,
    EXPERIMENT_WRITE_SIGMA,
};
use neural::TrainConfig;
use runtime::{
    json_num, AdmittedOutcome, Chip, DriftProfile, DriftingChip, Engine, ServeStats, SizeAware,
};

const CHIPS: usize = 4;
const DRIFT_WINDOWS: u64 = 2;
const ADMIT_HEADROOM: f64 = 3.0;

/// Uniform open-loop request schedule at `rate` req/s over `window`.
fn schedule(inputs: &[Vec<f64>], rate: f64, window: Duration) -> (Vec<Vec<f64>>, Vec<Duration>) {
    let spacing = Duration::from_secs_f64(1.0 / rate.max(1.0));
    let n = ((window.as_secs_f64() * rate).ceil() as usize).max(1);
    let requests: Vec<Vec<f64>> = (0..n).map(|i| inputs[i % inputs.len()].clone()).collect();
    let arrivals: Vec<Duration> = (0..n).map(|i| spacing * i as u32).collect();
    (requests, arrivals)
}

fn open_phase<C: Chip>(
    engine: &Engine<C>,
    inputs: &[Vec<f64>],
    rate: f64,
    window: Duration,
) -> ServeStats {
    let (requests, arrivals) = schedule(inputs, rate, window);
    engine.serve_open_loop(&requests, &arrivals).stats
}

fn closed_rate<C: Chip>(engine: &Engine<C>, inputs: &[Vec<f64>], window: Duration) -> f64 {
    let start = Instant::now();
    let mut requests = 0usize;
    while start.elapsed() < window {
        requests += engine.serve(inputs).outputs.len();
    }
    requests as f64 / start.elapsed().as_secs_f64()
}

fn gated_phase<C: Chip>(
    engine: &Engine<C>,
    inputs: &[Vec<f64>],
    rate: f64,
    window: Duration,
) -> AdmittedOutcome {
    let (requests, arrivals) = schedule(inputs, rate, window);
    engine.serve_open_loop_admitted(&requests, &arrivals)
}

fn admitted_json(label: &str, rate: f64, outcome: &AdmittedOutcome) -> String {
    let p99 = outcome
        .outcome
        .as_ref()
        .map_or_else(|| "null".into(), |o| json_num(o.stats.p99_latency_us, 3));
    format!(
        "{{\"phase\":\"{label}\",\"offered_rps\":{},\"offered\":{},\
         \"admitted\":{},\"shed\":{},\"shed_rate\":{},\"admitted_p99_us\":{p99}}}",
        json_num(rate, 3),
        outcome.gate_stats.offered,
        outcome.gate_stats.admitted,
        outcome.gate_stats.shed,
        json_num(outcome.gate_stats.shed_rate(), 4)
    )
}

#[allow(clippy::too_many_lines)]
fn main() {
    let fast = fast_mode();
    let window = measure_window(if fast { 0.3 } else { 2.0 });
    let cfg = ExperimentConfig::from_env();

    let setup = table1_setups()
        .into_iter()
        .find(|s| s.workload.name() == "inversek2j")
        .expect("inversek2j is a Table 1 row");
    let train_samples = if fast { 400 } else { 1_500 };
    let train = setup
        .workload
        .dataset(train_samples, cfg.seed)
        .expect("train data");
    let test = setup.workload.dataset(64, cfg.seed + 1).expect("test data");
    let mei = MeiRcs::train(
        &train,
        &MeiConfig {
            hidden: setup.mei_hidden,
            in_bits: setup.mei_in_bits,
            out_bits: setup.mei_out_bits,
            device: cfg.device(),
            train: TrainConfig {
                epochs: if fast { 15 } else { 60 },
                learning_rate: 0.8,
                ..TrainConfig::default()
            },
            seed: cfg.seed,
            ..MeiConfig::default()
        },
    )
    .expect("MEI training");
    let inputs: Vec<Vec<f64>> = test.inputs().to_vec();
    let reps: Vec<Vec<f64>> = inputs[..8.min(inputs.len())].to_vec();
    let passes = if fast { 2 } else { 3 };

    eprintln!(
        "== drift_admission: inversek2j MEI, {CHIPS} chips, {:.2}s windows ==",
        window.as_secs_f64()
    );

    // -- Phase 1: retention drift, frozen vs recalibrated cost model. --
    // Latency-only drift: output bits stay pinned to the inner chips, so
    // the two regimes differ only in where requests land and how long
    // they take.
    let profile = DriftProfile::latency_only();
    let build = || -> Engine<DriftingChip<MeiRcs>> {
        manufacture_drifting_engine(&mei, CHIPS, EXPERIMENT_WRITE_SIGMA, cfg.seed, profile)
            .with_policy(SizeAware)
            .calibrated(&reps, passes)
    };

    let mut frozen = build();
    for _ in 0..DRIFT_WINDOWS {
        frozen.advance_window();
    }
    let mut refreshed = build();
    for _ in 0..DRIFT_WINDOWS {
        refreshed.recalibrate_window(&reps, passes);
    }
    let severities: Vec<f64> = frozen.pool().chips().iter().map(|c| c.severity()).collect();
    let decays: Vec<f64> = frozen.pool().chips().iter().map(|c| c.decay()).collect();
    eprintln!(
        "per-chip drift severity: [{}], window-{DRIFT_WINDOWS} decay: [{}]",
        severities
            .iter()
            .map(|s| format!("{s:.3}"))
            .collect::<Vec<_>>()
            .join(", "),
        decays
            .iter()
            .map(|d| format!("{d:.4}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    eprintln!(
        "cost model versions: frozen v{} (history {}), refreshed v{} (history {})",
        frozen.cost_model().version(),
        frozen.model_history().len(),
        refreshed.cost_model().version(),
        refreshed.model_history().len()
    );

    // Offer both regimes the same load: 60% of the *drifted* frozen
    // pool's closed rate, so neither engine is saturated outright.
    let drifted_closed = closed_rate(&frozen, &inputs, window);
    let drift_rate = (drifted_closed * 0.6).max(10.0);
    let frozen_stats = open_phase(&frozen, &inputs, drift_rate, window);
    let refreshed_stats = open_phase(&refreshed, &inputs, drift_rate, window);
    let rows = vec![
        vec![
            "frozen (v0 model)".to_string(),
            format!("{drift_rate:.0}"),
            format!("{:.0}", frozen_stats.requests_per_sec),
            format!("{:.1}", frozen_stats.p50_latency_us),
            format!("{:.1}", frozen_stats.p99_latency_us),
        ],
        vec![
            format!("recalibrated (v{})", refreshed.cost_model().version()),
            format!("{drift_rate:.0}"),
            format!("{:.0}", refreshed_stats.requests_per_sec),
            format!("{:.1}", refreshed_stats.p50_latency_us),
            format!("{:.1}", refreshed_stats.p99_latency_us),
        ],
    ];
    eprintln!(
        "\n-- drifted pool, open loop, window {DRIFT_WINDOWS} --\n{}",
        format_table(
            &[
                "regime",
                "offered req/s",
                "served req/s",
                "p50 µs",
                "p99 µs"
            ],
            &rows
        )
    );
    let p99_ratio = refreshed_stats.p99_latency_us / frozen_stats.p99_latency_us;
    eprintln!(
        "recalibrated p99 / frozen p99 = {p99_ratio:.3} \
         (multi-core hosts should see < 1 — reported, not asserted)"
    );

    // -- Phase 2: knee-calibrated admission on a healthy pool. --
    let engine = manufacture_engine(&mei, CHIPS, EXPERIMENT_WRITE_SIGMA, cfg.seed);
    let closed = closed_rate(&engine, &inputs, window);
    let ramp_config = RampConfig {
        start_rps: (closed * 0.15).max(10.0),
        growth: if fast { 1.6 } else { 1.35 },
        max_steps: if fast { 6 } else { 12 },
        knee_factor: 4.0,
    };
    let report = ramp_to_knee(&ramp_config, |rate| {
        open_phase(&engine, &inputs, rate, window)
    });
    let knee = report.knee_step();
    let knee_rps = knee.offered_rps;
    eprintln!(
        "\n-- admission: knee at {knee_rps:.0} req/s (p99 {:.1} µs, elbow {}) --",
        knee.stats.p99_latency_us,
        if report.kneed { "found" } else { "not reached" }
    );

    // Mean model cost of the test inputs, for the cost→seconds scale.
    let model = engine.cost_model();
    let mut costs = Vec::new();
    let mean_cost = inputs
        .iter()
        .map(|input| {
            model.estimates_into(input.len(), &mut costs);
            costs.iter().sum::<f64>() / costs.len() as f64
        })
        .sum::<f64>()
        / inputs.len() as f64;
    let admit = report
        .admission_config(ADMIT_HEADROOM, mean_cost, CHIPS)
        .from_env();
    eprintln!(
        "gate: max_delay {:.1} µs, {:.3e} s/cost (knee × {ADMIT_HEADROOM} headroom)",
        admit.max_delay_secs * 1e6,
        admit.secs_per_cost
    );

    // The gate simulates queueing in virtual time, so these two checks
    // are pure functions of (rate, config) and hold on any host.
    let gated =
        manufacture_engine(&mei, CHIPS, EXPERIMENT_WRITE_SIGMA, cfg.seed).with_admission(admit);
    let under_rate = knee_rps * 0.5;
    let over_rate = knee_rps * 1.5;
    let under = gated_phase(&gated, &inputs, under_rate, window);
    let over = gated_phase(&gated, &inputs, over_rate, window);
    let ungated_over = open_phase(&engine, &inputs, over_rate, window);
    let rows = vec![
        vec![
            "0.5× knee".to_string(),
            format!("{under_rate:.0}"),
            format!("{}", under.gate_stats.shed),
            format!("{:.1}%", under.gate_stats.shed_rate() * 100.0),
            under
                .outcome
                .as_ref()
                .map_or_else(|| "-".into(), |o| format!("{:.1}", o.stats.p99_latency_us)),
        ],
        vec![
            "1.5× knee".to_string(),
            format!("{over_rate:.0}"),
            format!("{}", over.gate_stats.shed),
            format!("{:.1}%", over.gate_stats.shed_rate() * 100.0),
            over.outcome
                .as_ref()
                .map_or_else(|| "-".into(), |o| format!("{:.1}", o.stats.p99_latency_us)),
        ],
        vec![
            "1.5× knee, ungated".to_string(),
            format!("{over_rate:.0}"),
            "-".to_string(),
            "-".to_string(),
            format!("{:.1}", ungated_over.p99_latency_us),
        ],
    ];
    eprintln!(
        "{}",
        format_table(
            &["offered", "req/s", "shed", "shed rate", "admitted p99 µs"],
            &rows
        )
    );
    assert_eq!(
        under.gate_stats.shed, 0,
        "under the knee the gate must shed nothing"
    );
    assert!(
        over.gate_stats.shed_rate() > 0.0,
        "1.5× over the knee the gate must shed"
    );

    let meta = mei_bench::json::meta("drift_admission", cfg.seed);
    let json = format!(
        "{{\"meta\":{meta},\"suite\":\"drift_admission/inversek2j\",\"window_secs\":{},\
         \"drift\":{{\"windows\":{DRIFT_WINDOWS},\"profile\":\"latency_only\",\
         \"severities\":[{}],\"decays\":[{}],\
         \"offered_rps\":{},\
         \"frozen\":{{\"model_version\":{},\"stats\":{}}},\
         \"recalibrated\":{{\"model_version\":{},\"model_history\":{},\"stats\":{}}},\
         \"recalibrated_p99_over_frozen_p99\":{}}},\
         \"admission\":{{\"knee_rps\":{},\"kneed\":{},\
         \"knee_p99_us\":{},\"headroom\":{ADMIT_HEADROOM},\
         \"max_delay_us\":{},\"secs_per_cost\":{:.6e},\"mean_cost\":{},\
         \"runs\":[{},{}],\"ungated_over_p99_us\":{}}}}}",
        json_num(window.as_secs_f64(), 3),
        severities
            .iter()
            .map(|s| json_num(*s, 4))
            .collect::<Vec<_>>()
            .join(","),
        decays
            .iter()
            .map(|d| json_num(*d, 6))
            .collect::<Vec<_>>()
            .join(","),
        json_num(drift_rate, 3),
        frozen.cost_model().version(),
        frozen_stats.to_json(),
        refreshed.cost_model().version(),
        refreshed.model_history().len(),
        refreshed_stats.to_json(),
        json_num(p99_ratio, 4),
        json_num(knee_rps, 3),
        report.kneed,
        json_num(knee.stats.p99_latency_us, 3),
        json_num(admit.max_delay_secs * 1e6, 3),
        admit.secs_per_cost,
        json_num(mean_cost, 4),
        admitted_json("under_knee_0.5x", under_rate, &under),
        admitted_json("over_knee_1.5x", over_rate, &over),
        json_num(ungated_over.p99_latency_us, 3)
    );
    println!("{json}");
    if let Ok(path) = std::env::var("MEI_BENCH_JSON") {
        if let Err(err) = std::fs::write(&path, &json) {
            panic!("cannot write MEI_BENCH_JSON report to '{path}': {err}");
        }
    }
}
