//! Ablation: IR drop across array sizes and interconnect resistances.
//!
//! The paper sidesteps IR drop by choosing 90 nm interconnect (§5.1) and
//! names "reducing the IR drop for a larger RCS under smaller technology
//! node" as future work (§6). This sweep quantifies the effect the choice
//! avoids: per-column current attenuation of a uniformly-excited crossbar
//! as the array grows and the wire resistance rises, solved with the
//! conjugate-gradient nodal model.
//!
//! Run with: `cargo run --release -p mei-bench --bin ablation_irdrop`

use crossbar::ir_drop::attenuation;
use crossbar::{CrossbarArray, IrDropConfig};
use mei::{MeiConfig, MeiRcs};
use mei_bench::{format_table, pct, ExperimentConfig};
use neural::dataset_mse;
use rram::DeviceParams;
use workloads::{sobel::Sobel, Workload};

fn main() {
    println!("== Ablation: IR-drop attenuation (uniform mid-conductance array) ==\n");
    let params = DeviceParams::hfox();
    let g_mid = 0.5 * (params.g_on + params.g_off);

    let mut rows = Vec::new();
    for &n in &[16usize, 32, 64, 128] {
        let mut xbar = CrossbarArray::new(n, n, params);
        xbar.program_clamped(&vec![vec![g_mid; n]; n]);
        let inputs = vec![1.0; n];
        let mut row = vec![format!("{n}×{n}")];
        for &r_wire in &[1.0, 2.5, 10.0] {
            let cfg = IrDropConfig::with_wire_resistance(r_wire);
            let att = attenuation(&xbar, &inputs, &cfg);
            let worst = att.iter().flatten().cloned().fold(0.0f64, f64::max);
            row.push(pct(worst));
        }
        rows.push(row);
    }
    println!(
        "{}",
        format_table(
            &["array", "r_w=1.0 Ω", "r_w=2.5 Ω (90nm-class)", "r_w=10 Ω"],
            &rows
        )
    );
    println!("worst-column current attenuation; grows superlinearly with array size,");
    println!("which is why the paper caps its arrays and picks 90 nm wires — and why");
    println!("IR-aware mapping is the named future work.\n");

    // End-to-end: what IR drop does to a trained MEI system's accuracy.
    let cfg = ExperimentConfig::from_env();
    let w = Sobel::new();
    let train = w
        .dataset(cfg.train_samples.min(3000), cfg.seed)
        .expect("train data");
    let test = w
        .dataset(cfg.test_samples.min(300), cfg.seed + 1)
        .expect("test data");
    let rcs = MeiRcs::train(
        &train,
        &MeiConfig {
            in_bits: 6,
            out_bits: 6,
            hidden: 16,
            device: cfg.device(),
            train: cfg.mei_train(false),
            seed: cfg.seed,
            ..MeiConfig::default()
        },
    )
    .expect("MEI training");

    println!("== End-to-end MEI accuracy on Sobel under IR drop ==\n");
    let mut rows = Vec::new();
    for &r_wire in &[0.0, 1.0, 2.5, 10.0, 25.0] {
        let ir = IrDropConfig::with_wire_resistance(r_wire);
        let mse = dataset_mse(|x| rcs.infer_ir(x, &ir).expect("validated input"), &test);
        rows.push(vec![format!("{r_wire:.1} Ω"), format!("{mse:.5}")]);
    }
    println!("{}", format_table(&["wire resistance", "test MSE"], &rows));
}
