//! Table 1 reproduction: benchmark description and results.
//!
//! For each of the six benchmarks: the Digital / AD-DA / MEI MSEs, the
//! application error metric for all three, the pruned MEI topology found by
//! the LSB-pruning pass, and the Eq (6)/(7) area & power savings.
//!
//! Run with: `cargo run --release -p mei-bench --bin table1`
//! (set `MEI_BENCH_QUICK=1` for a fast smoke run)

use interface::cost::{AddaTopology, CostModel};
use mei::prune::prune_to_requirement;
use mei::{evaluate_metric, evaluate_mse};
use mei_bench::{
    format_table, mean_over_write_draws_par, pct, table1_setups, train_trio, ExperimentConfig,
};

/// The paper's Table 1 reference values: (mse_digital, mse_adda, mse_mei,
/// err_digital, err_adda, err_mei, area_saved, power_saved).
const PAPER: [(&str, [f64; 8]); 6] = [
    (
        "fft",
        [
            0.0046, 0.0071, 0.0052, 0.0603, 0.1072, 0.0887, 0.7424, 0.8723,
        ],
    ),
    (
        "inversek2j",
        [
            0.0038, 0.0053, 0.0067, 0.0657, 0.0907, 0.1045, 0.5463, 0.7373,
        ],
    ),
    (
        "jmeint",
        [
            0.0117, 0.0258, 0.0262, 0.0719, 0.0950, 0.0996, 0.6967, 0.6182,
        ],
    ),
    (
        "jpeg",
        [
            0.0081, 0.0153, 0.0142, 0.0689, 0.1144, 0.0973, 0.8614, 0.7958,
        ],
    ),
    (
        "kmeans",
        [
            0.0052, 0.0081, 0.0094, 0.0359, 0.0759, 0.0813, 0.6700, 0.7025,
        ],
    ),
    (
        "sobel",
        [
            0.0024, 0.0028, 0.0026, 0.0371, 0.0400, 0.0377, 0.8599, 0.8680,
        ],
    ),
];

fn main() {
    let cfg = ExperimentConfig::from_env();
    let pool = cfg.pool();
    let cost = CostModel::dac2015();
    println!(
        "== Table 1: six benchmarks, {} train / {} test samples, {} write draws, {} threads ==\n",
        cfg.train_samples,
        cfg.test_samples,
        cfg.write_draws,
        pool.threads()
    );

    let mut rows = Vec::new();
    let mut shape_failures: Vec<String> = Vec::new();

    for (setup, (paper_name, paper)) in table1_setups().iter().zip(PAPER) {
        let w = &setup.workload;
        assert_eq!(w.name(), paper_name);
        let started = std::time::Instant::now();
        let n_train = if setup.wide {
            cfg.train_samples.min(3000)
        } else {
            cfg.train_samples
        };
        let train = w.dataset(n_train, cfg.seed).expect("train data");
        let test = w
            .dataset(cfg.test_samples, cfg.seed + 1)
            .expect("test data");

        let trio = train_trio(setup, &train, &cfg);
        let metric = w.metric();

        // LSB pruning within a 10% quality guarantee relative to the clean
        // MEI error. Table 1 reports the pruned *topology* (and computes the
        // savings from it) alongside the B_r = 8 system's accuracy.
        let mse_mei_clean = evaluate_mse(&trio.mei, &test);
        let pruned = prune_to_requirement(&trio.mei, &test, mse_mei_clean * 1.10).expect("pruning");
        let mei_topology = pruned.rcs.topology();

        // Digital is noise-free; the two RCSs average over write draws.
        let mse_digital = evaluate_mse(&trio.digital, &test);
        let err_digital = evaluate_metric(&trio.digital, &test, |p, t| metric.evaluate(p, t));
        let mse_adda = mean_over_write_draws_par(&pool, &trio.adda, cfg.write_draws, 11, |r| {
            evaluate_mse(r, &test)
        });
        let err_adda = mean_over_write_draws_par(&pool, &trio.adda, cfg.write_draws, 11, |r| {
            evaluate_metric(r, &test, |p, t| metric.evaluate(p, t))
        });
        let mse_mei = mean_over_write_draws_par(&pool, &trio.mei, cfg.write_draws, 13, |r| {
            evaluate_mse(r, &test)
        });
        let err_mei = mean_over_write_draws_par(&pool, &trio.mei, cfg.write_draws, 13, |r| {
            evaluate_metric(r, &test, |p, t| metric.evaluate(p, t))
        });

        let (i, h, o) = w.digital_topology();
        let adda_topology = AddaTopology::new(i, h, o, 8);
        let area_saved = cost.area_saving(&adda_topology, &mei_topology);
        let power_saved = cost.power_saving(&adda_topology, &mei_topology);

        rows.push(vec![
            w.name().to_string(),
            format!("{}×{}×{}", i, h, o),
            mei_topology.to_string(),
            format!("{mse_digital:.4}/{:.4}", paper[0]),
            format!("{mse_adda:.4}/{:.4}", paper[1]),
            format!("{mse_mei:.4}/{:.4}", paper[2]),
            format!("{err_digital:.3}"),
            format!("{err_adda:.3}"),
            format!("{err_mei:.3}"),
            format!("{}/{}", pct(area_saved), pct(paper[6])),
            format!("{}/{}", pct(power_saved), pct(paper[7])),
        ]);

        // Shape assertions.
        if area_saved < 0.5 {
            shape_failures.push(format!("{}: area saving below 50%", w.name()));
        }
        if power_saved < 0.5 {
            shape_failures.push(format!("{}: power saving below 50%", w.name()));
        }
        if mse_digital > mse_adda * 1.5 + 1e-5 {
            shape_failures.push(format!("{}: digital baseline not best", w.name()));
        }
        if mse_mei > (mse_adda * 8.0).max(1.5e-2) {
            shape_failures.push(format!(
                "{}: MEI not comparable to AD/DA ({mse_mei:.4} vs {mse_adda:.4})",
                w.name()
            ));
        }
        eprintln!(
            "[{}] done in {:.0}s",
            w.name(),
            started.elapsed().as_secs_f64()
        );
    }

    println!(
        "{}",
        format_table(
            &[
                "name",
                "digital topo",
                "pruned MEI topo",
                "MSE dig (ours/paper)",
                "MSE AD/DA",
                "MSE MEI",
                "err dig",
                "err AD/DA",
                "err MEI",
                "area saved (ours/paper)",
                "power saved (ours/paper)",
            ],
            &rows
        )
    );

    println!("shape checks vs paper:");
    if shape_failures.is_empty() {
        println!("  all orderings and savings PASS");
    } else {
        for f in &shape_failures {
            println!("  FAIL {f}");
        }
    }
    println!("\nnote: absolute MSEs differ from the paper (behavioural substrate vs the");
    println!("authors' SPICE testbed); see EXPERIMENTS.md for the per-benchmark discussion.");
}
