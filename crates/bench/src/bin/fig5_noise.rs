//! Fig 5 reproduction: system performance under different noisy conditions.
//!
//! For three representative benchmarks (the paper presents inversek2j, JPEG
//! and Sobel as "enough to reflect all the simulation results"), sweep the
//! lognormal level of each non-ideal factor — process variation (PV) and
//! signal fluctuation (SF) — and evaluate four systems Monte-Carlo style:
//!
//! * the traditional AD/DA RCS,
//! * MEI,
//! * MEI + SAAB (boosted with the σ injected during scoring),
//! * MEI with an equivalently-enlarged hidden layer.
//!
//! Paper's observations: both SAAB and the wider hidden layer improve
//! robustness (which one wins is benchmark-dependent), and MEI is markedly
//! more robust to *signal fluctuation* than the AD/DA design.
//!
//! Run with: `cargo run --release -p mei-bench --bin fig5_noise`

use mei::{mse_scorer, robustness_par, MeiConfig, MeiRcs, NonIdealFactors, Rcs, SaabConfig};
use mei_bench::{format_table, table1_setups, train_saab_adaptive, train_trio, ExperimentConfig};
use neural::Dataset;
use runtime::ThreadPool;

const PV_LEVELS: [f64; 4] = [0.0, 0.1, 0.2, 0.4];
const SF_LEVELS: [f64; 4] = [0.0, 0.05, 0.1, 0.2];
const BENCHMARKS: [&str; 3] = ["inversek2j", "jpeg", "sobel"];

/// Mean MC-robustness error of one system at one σ point, with the trials
/// spread over the pool (bit-identical for every thread count).
fn mc_mean<T: Rcs + Clone + Send + Sync>(
    pool: &ThreadPool,
    rcs: &T,
    test: &Dataset,
    factors: &NonIdealFactors,
    trials: usize,
    seed: u64,
) -> f64 {
    robustness_par(pool, rcs, test, factors, trials, seed, mse_scorer).mean
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    let pool = cfg.pool();
    println!(
        "== Fig 5: error under noisy conditions ({} MC trials per point, {} threads) ==\n",
        cfg.noise_trials,
        pool.threads()
    );

    for setup in table1_setups() {
        let w = &setup.workload;
        if !BENCHMARKS.contains(&w.name()) {
            continue;
        }
        let started = std::time::Instant::now();
        let n_train = if setup.wide {
            cfg.train_samples.min(3000)
        } else {
            cfg.train_samples
        };
        let train = w.dataset(n_train, cfg.seed).expect("train data");
        let test = w
            .dataset(cfg.test_samples.min(400), cfg.seed + 1)
            .expect("test data");

        let trio = train_trio(&setup, &train, &cfg);

        // SAAB trained with representative σ injected during scoring
        // (Algorithm 1 line 6), K = 3 learners.
        let mei_cfg = MeiConfig {
            hidden: setup.mei_hidden,
            in_bits: setup.mei_in_bits,
            out_bits: setup.mei_out_bits,
            device: cfg.device(),
            train: cfg.mei_train(setup.wide),
            seed: cfg.seed,
            ..MeiConfig::default()
        };
        let (saab, _bc) = train_saab_adaptive(
            &train,
            &mei_cfg,
            &SaabConfig {
                rounds: 3,
                compare_bits: setup.mei_out_bits.clamp(1, 5),
                factors: NonIdealFactors::new(0.1, 0.05),
                threads: cfg.threads,
                ..SaabConfig::default()
            },
        );

        // The increasing-hidden-layer alternative: 3× hidden nodes.
        let wide = MeiRcs::train(
            &train,
            &MeiConfig {
                hidden: 3 * setup.mei_hidden,
                ..mei_cfg
            },
        )
        .expect("wide MEI training");

        for (factor_name, levels, make) in [
            (
                "process variation",
                PV_LEVELS,
                NonIdealFactors::process_only as fn(f64) -> _,
            ),
            (
                "signal fluctuation",
                SF_LEVELS,
                NonIdealFactors::signal_only as fn(f64) -> _,
            ),
        ] {
            let mut rows = Vec::new();
            for &sigma in &levels {
                let factors = make(sigma);
                let cell = |mean: f64| format!("{mean:.5}");
                rows.push(vec![
                    format!("{sigma:.2}"),
                    cell(mc_mean(
                        &pool,
                        &trio.adda,
                        &test,
                        &factors,
                        cfg.noise_trials,
                        31,
                    )),
                    cell(mc_mean(
                        &pool,
                        &trio.mei,
                        &test,
                        &factors,
                        cfg.noise_trials,
                        31,
                    )),
                    cell(mc_mean(&pool, &saab, &test, &factors, cfg.noise_trials, 31)),
                    cell(mc_mean(&pool, &wide, &test, &factors, cfg.noise_trials, 31)),
                ]);
            }
            println!("--- {} | {} sweep ---", w.name(), factor_name);
            println!(
                "{}",
                format_table(&["σ", "AD/DA", "MEI", "MEI+SAAB(3)", "MEI wide(3H)"], &rows)
            );
        }

        // Shape check: at the strongest SF level, MEI's *relative*
        // degradation is below the AD/DA architecture's.
        let sf = NonIdealFactors::signal_only(SF_LEVELS[3]);
        let ideal = NonIdealFactors::ideal();
        let base_adda = mc_mean(&pool, &trio.adda, &test, &ideal, 1, 0);
        let base_mei = mc_mean(&pool, &trio.mei, &test, &ideal, 1, 0);
        let noisy_adda = mc_mean(&pool, &trio.adda, &test, &sf, cfg.noise_trials, 33);
        let noisy_mei = mc_mean(&pool, &trio.mei, &test, &sf, cfg.noise_trials, 33);
        let adda_deg = noisy_adda - base_adda;
        let mei_deg = noisy_mei - base_mei;
        println!(
            "SF robustness ({}): AD/DA degrades by {:.5}, MEI by {:.5} → {}",
            w.name(),
            adda_deg,
            mei_deg,
            if mei_deg < adda_deg {
                "PASS (MEI more robust, as in the paper)"
            } else {
                "FAIL"
            }
        );
        eprintln!(
            "[{}] done in {:.0}s\n",
            w.name(),
            started.elapsed().as_secs_f64()
        );
        println!();
    }
}
