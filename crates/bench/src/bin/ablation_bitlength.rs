//! Ablation: MEI at higher interface bit-lengths (the paper's future-work
//! direction — "we may directly use higher bit-level ... in MEI to further
//! improve the system performance", §6).
//!
//! Sweeps `B_r ∈ {6, 8, 10, 12}` on inversek2j — the benchmark where MEI
//! loses to AD/DA at 8 bits and where the paper suggests "increasing the
//! bit requirement of MEI from 8 to 10, 12 or a higher level" as the
//! remedy — and reports accuracy together with the Eq (7) cost growth.
//!
//! Run with: `cargo run --release -p mei-bench --bin ablation_bitlength`

use interface::cost::{AddaTopology, CostModel};
use mei::{evaluate_mse, MeiConfig, MeiRcs};
use mei_bench::{format_table, pct, ExperimentConfig};
use workloads::{inversek2j::InverseK2j, Workload};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let cost = CostModel::dac2015();
    let w = InverseK2j::new();
    let train = w.dataset(cfg.train_samples, cfg.seed).expect("train data");
    let test = w
        .dataset(cfg.test_samples, cfg.seed + 1)
        .expect("test data");
    let adda_topology = AddaTopology::new(2, 8, 2, 8);

    println!("== Ablation: MEI interface bit-length on inversek2j ==\n");

    let mut rows = Vec::new();
    let mut mses = Vec::new();
    for bits in [6usize, 8, 10, 12] {
        let rcs = MeiRcs::train(
            &train,
            &MeiConfig {
                in_bits: bits,
                out_bits: bits,
                hidden: 32,
                device: cfg.device(),
                train: cfg.mei_train(false),
                seed: cfg.seed,
                ..MeiConfig::default()
            },
        )
        .expect("MEI training");
        let mse = evaluate_mse(&rcs, &test);
        mses.push(mse);
        let topo = rcs.topology();
        rows.push(vec![
            format!("{bits}-bit"),
            topo.to_string(),
            format!("{mse:.5}"),
            pct(cost.area_saving(&adda_topology, &topo)),
            pct(cost.power_saving(&adda_topology, &topo)),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["B_r", "topology", "test MSE", "area saved", "power saved"],
            &rows
        )
    );
    println!("shape check: accuracy improves (or holds) from 6 → 10 bits while the");
    println!(
        "cost saving shrinks — the accuracy/cost trade-off the paper's DSE navigates: {}",
        if mses[1] <= mses[0] * 1.2 {
            "PASS"
        } else {
            "FAIL"
        }
    );
}
