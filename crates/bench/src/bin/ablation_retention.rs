//! Ablation: retention drift over deployment time.
//!
//! The paper's robustness study covers programming-time variation and
//! signal noise; a deployed RCS additionally suffers conductance *drift*.
//! This sweep ages a trained MEI system with the power-law retention model
//! and reports the accuracy decay — and how a refresh (reprogramming)
//! cycle restores it.
//!
//! Run with: `cargo run --release -p mei-bench --bin ablation_retention`

use mei::{evaluate_mse, MeiConfig, MeiRcs};
use mei_bench::{format_table, ExperimentConfig};
use rram::RetentionModel;
use workloads::{sobel::Sobel, Workload};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let w = Sobel::new();
    let train = w
        .dataset(cfg.train_samples.min(3000), cfg.seed)
        .expect("train data");
    let test = w
        .dataset(cfg.test_samples.min(400), cfg.seed + 1)
        .expect("test data");
    let mut rcs = MeiRcs::train(
        &train,
        &MeiConfig {
            in_bits: 6,
            out_bits: 6,
            hidden: 16,
            device: cfg.device(),
            train: cfg.mei_train(false),
            seed: cfg.seed,
            ..MeiConfig::default()
        },
    )
    .expect("MEI training");

    println!("== Ablation: retention drift of a trained MEI Sobel system ==\n");
    let retention = RetentionModel::hfox_room_temperature();
    println!("model: {retention}\n");

    let fresh = evaluate_mse(&rcs, &test);
    let mut rows = vec![vec!["fresh".to_string(), format!("{fresh:.5}")]];
    for &(label, seconds) in &[
        ("1 hour", 3.6e3),
        ("1 day", 8.64e4),
        ("1 month", 2.63e6),
        ("1 year", 3.15e7),
    ] {
        rcs.restore();
        rcs.age(&retention, seconds);
        rows.push(vec![
            label.to_string(),
            format!("{:.5}", evaluate_mse(&rcs, &test)),
        ]);
    }
    rcs.restore();
    rows.push(vec![
        "after refresh".to_string(),
        format!("{:.5}", evaluate_mse(&rcs, &test)),
    ]);
    println!("{}", format_table(&["age", "test MSE"], &rows));
    println!("drift degrades gradually; a reprogramming refresh restores the fresh MSE");
    println!("exactly — the digital weight store makes refresh lossless.");
}
