//! Kernel-layer micro-benchmarks: the bit-packed / cache-blocked matvec
//! paths against the scalar and uncached references, and the red-black
//! Gauss–Seidel IR-drop sweep against the conjugate-gradient fallback.
//!
//! Before timing anything the binary asserts the correctness contracts
//! the kernels are sold on — packed output bit-identical to the scalar
//! path, both bit-identical to the cell-walk reference, and the two
//! IR-drop solvers agreeing within the configured tolerance — so a CI
//! smoke run of this bench doubles as an end-to-end kernel check.
//!
//! The report (shared `meta` header first) goes to stdout and, when
//! `MEI_BENCH_JSON=<path>` is set, to that file. It carries a `speedup`
//! object comparing the new kernels both in-run (packed vs. scalar,
//! Gauss–Seidel vs. CG) and against the pre-kernel baseline medians
//! recorded below. In full mode (no `MEI_BENCH_FAST=1`) the run fails
//! if the ISSUE floors — packed matvec ≥ 4× baseline at 64×448,
//! IR-drop ≥ 3× baseline at 32×32 — are not met.

use crossbar::{BitInput, CrossbarArray, DifferentialPair, IrDropConfig, IrSolver, MappingConfig};
use mei_bench::timing::{print_header, Runner};
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};
use rram::DeviceParams;
use std::hint::black_box;

/// Root seed for this bench's randomness (weights and conductances).
const MEI_SEED: u64 = 1;

/// Pre-kernel baseline medians on the reference host (committed
/// `results/BENCH_crossbar_ops.json` before the kernel layer landed):
/// the scalar `differential_matvec/64x448` and the CG `ir_drop_solve/32`.
const BASELINE_MATVEC_64X448_NS: f64 = 148_107.446;
const BASELINE_IR_DROP_32_NS: f64 = 2_050_696.0;

fn random_weights(outputs: usize, inputs: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..outputs)
        .map(|_| (0..inputs).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect()
}

/// The jpeg-layer shape from Table 1 (64 inputs × 448 outputs), driven
/// with a deterministic interface-bit pattern.
fn bench_matvec_paths(r: &mut Runner) {
    let (inputs, outputs) = (64usize, 448usize);
    let pair = DifferentialPair::from_weights(
        &random_weights(outputs, inputs, MEI_SEED),
        DeviceParams::hfox(),
        &MappingConfig::default(),
    )
    .expect("mapping");
    let pattern: Vec<bool> = (0..inputs).map(|k| k % 3 != 0).collect();
    let bits = BitInput::from_bools(&pattern);
    let x: Vec<f64> = pattern.iter().map(|&b| f64::from(b)).collect();

    // The contract the packed path is sold on: bit-identical outputs.
    let scalar = pair.matvec(&x);
    assert_eq!(
        scalar,
        pair.matvec_uncached(&x),
        "cached plane diverged from the cell-walk reference"
    );
    assert_eq!(
        scalar,
        pair.matvec_binary(&bits),
        "packed matvec not bit-identical to the scalar path"
    );
    assert_eq!(
        scalar,
        pair.matvec_auto(&x),
        "auto path did not reproduce the scalar result"
    );

    r.bench(
        &format!("differential_matvec_uncached/{inputs}x{outputs}"),
        || pair.matvec_uncached(black_box(&x)),
    );
    r.bench(&format!("differential_matvec/{inputs}x{outputs}"), || {
        pair.matvec(black_box(&x))
    });
    r.bench(
        &format!("differential_matvec_binary/{inputs}x{outputs}"),
        || pair.matvec_binary(black_box(&bits)),
    );
    let mut out = vec![0.0; outputs];
    let mut scratch = vec![0.0; outputs];
    r.bench(
        &format!("differential_matvec_binary_into/{inputs}x{outputs}"),
        || {
            pair.matvec_binary_into(black_box(&bits), &mut out, &mut scratch);
            out[0]
        },
    );
    assert_eq!(out, scalar, "allocation-free path diverged");
}

/// IR-drop solve at the crossbar_ops sizes: the default red-black
/// Gauss–Seidel line sweep vs. the conjugate-gradient fallback.
fn bench_ir_drop(r: &mut Runner) {
    for &n in &[16usize, 32] {
        let mut xbar = CrossbarArray::new(n, n, DeviceParams::hfox());
        let mut rng = StdRng::seed_from_u64(3);
        let g: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen_range(5e-7..5e-5)).collect())
            .collect();
        xbar.program_clamped(&g);
        let x = vec![0.8; n];
        let gs = IrDropConfig::with_wire_resistance(2.5);
        let cg = IrDropConfig {
            solver: IrSolver::ConjugateGradient,
            ..gs
        };

        // Both solvers must land on the same currents within tolerance.
        let i_gs = xbar.column_currents_ir(&x, &gs);
        let i_cg = xbar.column_currents_ir(&x, &cg);
        let scale = i_cg.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for (a, b) in i_gs.iter().zip(&i_cg) {
            assert!(
                (a - b).abs() <= 1e-6 * scale,
                "solvers disagree at {n}x{n}: {a} vs {b}"
            );
        }

        r.bench(&format!("ir_drop_solve/{n}"), || {
            xbar.column_currents_ir(black_box(&x), &gs)
        });
        r.bench(&format!("ir_drop_solve_cg/{n}"), || {
            xbar.column_currents_ir(black_box(&x), &cg)
        });
    }
}

fn median(r: &Runner, name: &str) -> f64 {
    r.reports()
        .iter()
        .find(|rep| rep.name == name)
        .unwrap_or_else(|| panic!("no report named {name}"))
        .median_ns
}

fn main() {
    let fast = std::env::var("MEI_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false);
    print_header("kernels");
    let mut r = Runner::new("kernels");
    bench_matvec_paths(&mut r);
    bench_ir_drop(&mut r);

    let scalar_ns = median(&r, "differential_matvec/64x448");
    let packed_ns = median(&r, "differential_matvec_binary/64x448");
    let gs_ns = median(&r, "ir_drop_solve/32");
    let cg_ns = median(&r, "ir_drop_solve_cg/32");
    let packed_vs_scalar = scalar_ns / packed_ns;
    let packed_vs_baseline = BASELINE_MATVEC_64X448_NS / packed_ns;
    let gs_vs_cg = cg_ns / gs_ns;
    let gs_vs_baseline = BASELINE_IR_DROP_32_NS / gs_ns;
    eprintln!("packed matvec 64x448: {packed_vs_scalar:.2}x vs in-run scalar, {packed_vs_baseline:.2}x vs baseline");
    eprintln!(
        "ir_drop GS 32x32:     {gs_vs_cg:.2}x vs in-run CG, {gs_vs_baseline:.2}x vs baseline"
    );

    // ISSUE floors, asserted only in full mode — FAST smoke runs use too
    // few samples for the medians to be floors-grade evidence.
    if !fast {
        assert!(
            packed_vs_baseline >= 4.0,
            "packed matvec {packed_vs_baseline:.2}x vs baseline, floor is 4x"
        );
        assert!(
            gs_vs_baseline >= 3.0,
            "ir_drop Gauss-Seidel {gs_vs_baseline:.2}x vs baseline, floor is 3x"
        );
    }

    let meta = mei_bench::json::meta("kernels", MEI_SEED);
    let body: Vec<String> = r.reports().iter().map(|rep| rep.to_json()).collect();
    let json = format!(
        "{{\"meta\":{meta},\"suite\":\"kernels\",\"benchmarks\":[{}],\
         \"speedup\":{{\"packed_vs_scalar\":{},\"packed_vs_baseline\":{},\
         \"gs_vs_cg\":{},\"gs_vs_baseline\":{},\
         \"baseline_matvec_64x448_ns\":{},\"baseline_ir_drop_32_ns\":{}}}}}",
        body.join(","),
        runtime::json_num(packed_vs_scalar, 3),
        runtime::json_num(packed_vs_baseline, 3),
        runtime::json_num(gs_vs_cg, 3),
        runtime::json_num(gs_vs_baseline, 3),
        runtime::json_num(BASELINE_MATVEC_64X448_NS, 3),
        runtime::json_num(BASELINE_IR_DROP_32_NS, 3),
    );
    mei_bench::json::validate(&json).expect("kernels report is strict JSON");
    println!("{json}");
    if let Ok(path) = std::env::var("MEI_BENCH_JSON") {
        if let Err(err) = std::fs::write(&path, &json) {
            panic!("cannot write MEI_BENCH_JSON report to '{path}': {err}");
        }
    }
}
