//! Ablation: the Eq (5) MSB-weighted loss vs the plain Eq (4) loss on all
//! six benchmarks (generalizing Fig 3's single-function comparison).
//!
//! Run with: `cargo run --release -p mei-bench --bin ablation_loss`

use mei::{evaluate_mse, MeiConfig, MeiRcs};
use mei_bench::{format_table, table1_setups, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!("== Ablation: MSB-weighted loss (Eq 5) vs uniform loss (Eq 4) ==\n");

    let mut rows = Vec::new();
    let mut wins = 0usize;
    for setup in table1_setups() {
        let w = &setup.workload;
        let n_train = if setup.wide {
            cfg.train_samples.min(3000)
        } else {
            cfg.train_samples
        };
        let train = w.dataset(n_train, cfg.seed).expect("train data");
        let test = w
            .dataset(cfg.test_samples, cfg.seed + 1)
            .expect("test data");

        let mse_for = |weighted: bool| {
            let rcs = MeiRcs::train(
                &train,
                &MeiConfig {
                    hidden: setup.mei_hidden,
                    in_bits: setup.mei_in_bits,
                    out_bits: setup.mei_out_bits,
                    weighted_loss: weighted,
                    device: cfg.device(),
                    train: cfg.mei_train(setup.wide),
                    seed: cfg.seed,
                    ..MeiConfig::default()
                },
            )
            .expect("MEI training");
            evaluate_mse(&rcs, &test)
        };
        let weighted = mse_for(true);
        let uniform = mse_for(false);
        if weighted <= uniform {
            wins += 1;
        }
        rows.push(vec![
            w.name().to_string(),
            format!("{weighted:.5}"),
            format!("{uniform:.5}"),
            if weighted <= uniform {
                "weighted".into()
            } else {
                "uniform".into()
            },
        ]);
        eprintln!("[{}] done", w.name());
    }
    println!(
        "{}",
        format_table(
            &["benchmark", "weighted MSE", "uniform MSE", "winner"],
            &rows
        )
    );
    println!("weighted loss wins on {wins}/6 benchmarks (paper Fig 3: weighted wins)");
}
