//! Fig 2 reproduction: normalized power and area consumption for a 2×8×2
//! RCS with 8-bit accuracy (the inversek2j robotics topology).
//!
//! Paper's observation: AD/DAs contribute > 85% of area and power while
//! RRAM devices account for ~1%.
//!
//! Run with: `cargo run --release -p mei-bench --bin fig2_breakdown`

use interface::cost::{AddaTopology, CostBreakdown, CostModel};
use mei_bench::pct;

fn print_breakdown(label: &str, b: &CostBreakdown) {
    let total = b.total();
    println!("{label}:");
    println!("  DAC        {:>8}", pct(b.dac / total));
    println!("  ADC        {:>8}", pct(b.adc / total));
    println!("  peripheral {:>8}", pct(b.peripheral / total));
    println!("  RRAM       {:>8}", pct(b.rram / total));
    println!(
        "  → AD/DA together: {} (paper: > 85%)",
        pct(b.adda_fraction())
    );
}

fn main() {
    println!("== Fig 2: cost breakdown of a 2×8×2 RCS with 8-bit AD/DAs ==\n");
    let model = CostModel::dac2015();
    let topology = AddaTopology::new(2, 8, 2, 8);

    let area = model.area_breakdown_adda(&topology);
    let power = model.power_breakdown_adda(&topology);
    print_breakdown("area", &area);
    println!();
    print_breakdown("power", &power);

    println!("\nshape check vs paper:");
    let ok_area = area.adda_fraction() > 0.85;
    let ok_power = power.adda_fraction() > 0.85;
    let ok_rram = area.rram_fraction() < 0.02 && power.rram_fraction() < 0.02;
    println!(
        "  AD/DA > 85% of area : {}",
        if ok_area { "PASS" } else { "FAIL" }
    );
    println!(
        "  AD/DA > 85% of power: {}",
        if ok_power { "PASS" } else { "FAIL" }
    );
    println!(
        "  RRAM ≈ 1% (< 2%)    : {}",
        if ok_rram { "PASS" } else { "FAIL" }
    );
}
