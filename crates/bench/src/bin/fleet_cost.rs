//! Fleet cost accounting + capacity DSE benchmark.
//!
//! The paper's Eq (6)/(7) model answers "what does one chip cost"; this
//! bench answers the production questions built on top of it:
//!
//! 1. **Accounting** — fleets of P ∈ {1, 2, 4} pools of manufactured
//!    Table 1 **inversek2j** MEI chips serve a measured open-loop
//!    window; `Fleet::accounting()` reports the physical rollup (mm²,
//!    leakage W) and the serve-time [`runtime::EnergyStats`] integrate
//!    the window into joules: `leakage × wall + dynamic × inferences`.
//!    Per-pool mm², W, J/inference, ops/mm² and cost per million
//!    requests land in the JSON report.
//! 2. **Capacity DSE** — `runtime::fleet::dse` searches chip count ×
//!    SAAB ensemble size × replication factor under an explicit
//!    area+power budget, reusing the measured `sla_search` knee as the
//!    per-pool rate model (a K-learner ensemble does K× the work per
//!    inference, so its rate is the single-learner rate / K; its sheet
//!    is the single-learner sheet × K). The winning candidate maximizes
//!    throughput *admitted with failover headroom*: R-way replication
//!    reserves R−1 pools' capacity.
//!
//! Measured rates are host-dependent and are **reported, never
//! asserted**; the physics columns (mm², W, J/inference at a given
//! rate) are pure Eq (6)/(7) arithmetic and are stable everywhere.
//!
//! Environment knobs:
//!
//! * `MEI_BENCH_SECONDS=<f>` — measurement window (default 1.0);
//! * `MEI_BENCH_FAST=1` — smoke mode: short windows, tiny training;
//! * `MEI_BENCH_JSON=<path>` — also write the JSON report to a file;
//! * `MEI_FLEET_SLA_US=<f>` — absolute p99 target, µs (default 2000);
//! * `MEI_AREA_BUDGET_MM2=<f>` — DSE area budget (default 0.25 mm²);
//! * `MEI_POWER_BUDGET_W=<f>` — DSE power budget (default 0.05 W);
//! * `MEI_COST_PER_MREQ=<f>` — DSE cap on joules per million requests
//!   (default unbounded).
//!
//! Run with: `cargo run --release -p mei-bench --bin fleet_cost`

use std::time::Duration;

use mei::{manufacture_fleet, MeiConfig, MeiRcs};
use mei_bench::ramp::{ramp_to_knee, sla_search, RampConfig, SlaConfig};
use mei_bench::{
    fast_mode, format_table, measure_window, table1_setups, ExperimentConfig,
    EXPERIMENT_WRITE_SIGMA,
};
use neural::TrainConfig;
use runtime::fleet::dse::{self, CandidateModel, DseBudget, DseCandidate};
use runtime::{json_num, Chip, Fleet, FleetConfig, ServeStats};

const CHIPS_PER_POOL: usize = 2;
const WORKLOAD: &str = "inversek2j";

/// Uniform open-loop schedule at `rate` req/s over `window`.
fn schedule(inputs: &[Vec<f64>], rate: f64, window: Duration) -> (Vec<Vec<f64>>, Vec<Duration>) {
    let spacing = Duration::from_secs_f64(1.0 / rate.max(1.0));
    let n = ((window.as_secs_f64() * rate).ceil() as usize).max(1);
    let requests: Vec<Vec<f64>> = (0..n).map(|i| inputs[i % inputs.len()].clone()).collect();
    let arrivals: Vec<Duration> = (0..n).map(|i| spacing * i as u32).collect();
    (requests, arrivals)
}

/// Serve one pool an open-loop load and return its stats (with measured
/// energy attached by the engine).
fn pool_measure<C: Chip>(
    fleet: &Fleet<C>,
    pool: usize,
    inputs: &[Vec<f64>],
    rate: f64,
    window: Duration,
) -> ServeStats {
    let (requests, arrivals) = schedule(inputs, rate, window);
    fleet
        .engine(pool)
        .serve_open_loop(&requests, &arrivals)
        .stats
}

/// One accounted pool's reported row.
struct PoolRow {
    pool: usize,
    area_mm2: f64,
    leakage_w: f64,
    j_per_inference: f64,
    ops_per_mm2: f64,
    j_per_mreq: f64,
    requests: usize,
}

fn main() {
    let fast = fast_mode();
    let window = measure_window(if fast { 0.25 } else { 1.0 });
    let cfg = ExperimentConfig::from_env();
    let sla_target_us = prng::env::parse_or("MEI_FLEET_SLA_US", 2000.0_f64);
    let budget = DseBudget::new(0.25, 0.05).from_env();

    let setup = table1_setups()
        .into_iter()
        .find(|s| s.workload.name() == WORKLOAD)
        .expect("inversek2j is a Table 1 row");
    let train_samples = if fast { 400 } else { 1_500 };
    let train = setup
        .workload
        .dataset(train_samples, cfg.seed)
        .expect("train data");
    let test = setup.workload.dataset(64, cfg.seed + 1).expect("test data");
    let mei = MeiRcs::train(
        &train,
        &MeiConfig {
            hidden: setup.mei_hidden,
            in_bits: setup.mei_in_bits,
            out_bits: setup.mei_out_bits,
            device: cfg.device(),
            train: TrainConfig {
                epochs: if fast { 15 } else { 60 },
                learning_rate: 0.8,
                ..TrainConfig::default()
            },
            seed: cfg.seed,
            ..MeiConfig::default()
        },
    )
    .expect("MEI training");
    let inputs: Vec<Vec<f64>> = test.inputs().to_vec();
    let chip_sheet = Chip::cost_sheet(&mei).expect("MEI chips are accounted");

    eprintln!(
        "== fleet_cost: {WORKLOAD} MEI, {CHIPS_PER_POOL} chips/pool, \
         {:.2}s windows == \nchip sheet: {chip_sheet}",
        window.as_secs_f64()
    );

    // -- Phase 1: measured per-pool SLA rate (single pool, the DSE's
    // -- per-pool rate model) --
    let fleet1 = manufacture_fleet(
        &mei,
        1,
        CHIPS_PER_POOL,
        EXPERIMENT_WRITE_SIGMA,
        FleetConfig::new(cfg.seed),
    );
    let ramp_config = RampConfig {
        start_rps: 50.0,
        growth: if fast { 2.0 } else { 1.5 },
        max_steps: if fast { 6 } else { 10 },
        knee_factor: 4.0,
    };
    let ramp = ramp_to_knee(&ramp_config, |rate| {
        pool_measure(&fleet1, 0, &inputs, rate, window)
    });
    let sla = sla_search(
        &ramp,
        &SlaConfig {
            target_p99_us: sla_target_us,
            max_iters: if fast { 3 } else { 6 },
            rel_tol: 0.05,
        },
        |rate| pool_measure(&fleet1, 0, &inputs, rate, window),
    );
    // The per-pool rate the DSE plans with: the SLA-compliant rate when
    // found, the ramp knee otherwise (an unmet SLA on a tiny CI host
    // still leaves a valid relative capacity model).
    let per_pool_rps = if sla.met {
        sla.max_rps
    } else {
        ramp.knee_step().offered_rps
    };
    eprintln!(
        "per-pool rate model: {per_pool_rps:.0} req/s ({} at {sla_target_us:.0} µs p99)",
        if sla.met {
            "SLA-met"
        } else {
            "knee, SLA unmet"
        }
    );

    // -- Phase 2: fleet accounting at a sustainable operating point. --
    let pool_sizes: [usize; 3] = [1, 2, 4];
    let mut fleet_reports: Vec<(usize, String, Vec<PoolRow>)> = Vec::new();
    for &pools in &pool_sizes {
        let fleet = manufacture_fleet(
            &mei,
            pools,
            CHIPS_PER_POOL,
            EXPERIMENT_WRITE_SIGMA,
            FleetConfig::new(cfg.seed),
        );
        let accounting = fleet.accounting();
        assert_eq!(
            accounting.known_chips,
            pools * CHIPS_PER_POOL,
            "every manufactured MEI chip publishes a cost sheet"
        );
        // Serve each pool ~60% of its modeled capacity so the energy
        // integral reflects a loaded-but-stable fleet.
        let rate = (per_pool_rps * 0.6).max(50.0);
        let rows: Vec<PoolRow> = (0..pools)
            .map(|pool| {
                let stats = pool_measure(&fleet, pool, &inputs, rate, window);
                let energy = stats.energy.as_ref().expect("accounted chips bill energy");
                let pool_acc = &accounting.per_pool[pool];
                let j_per_inference = energy.j_per_request;
                PoolRow {
                    pool,
                    area_mm2: pool_acc.area_mm2(),
                    leakage_w: pool_acc.leakage_w(),
                    j_per_inference,
                    ops_per_mm2: energy.ops_per_sec / pool_acc.area_mm2(),
                    j_per_mreq: j_per_inference * 1e6,
                    requests: stats.requests,
                }
            })
            .collect();
        fleet_reports.push((pools, accounting.to_json(), rows));
    }

    for (pools, _, rows) in &fleet_reports {
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.pool.to_string(),
                    format!("{:.6}", r.area_mm2),
                    format!("{:.6}", r.leakage_w),
                    format!("{:.3e}", r.j_per_inference),
                    format!("{:.3e}", r.ops_per_mm2),
                    format!("{:.3}", r.j_per_mreq),
                ]
            })
            .collect();
        eprintln!(
            "-- {pools}-pool fleet --\n{}",
            format_table(
                &["pool", "mm²", "leak W", "J/inf", "ops/s/mm²", "J per Mreq"],
                &table
            )
        );
    }

    // -- Phase 3: capacity DSE under the explicit budget. --
    let mut candidates = Vec::new();
    for pools in [1usize, 2, 4] {
        for chips_per_pool in [1usize, 2] {
            for ensemble in [1usize, 2, 4] {
                for replication in [1usize, 2] {
                    candidates.push(DseCandidate {
                        pools,
                        chips_per_pool,
                        ensemble,
                        replication,
                    });
                }
            }
        }
    }
    let per_chip_rps = per_pool_rps / CHIPS_PER_POOL as f64;
    let report = dse::search(&budget, &candidates, |c| CandidateModel {
        // A K-learner SAAB chip is K single-learner sheets side by side…
        chip_sheet: chip_sheet.scaled(c.ensemble),
        // …doing K× the work per inference, over the pool's chip count.
        per_pool_rps: per_chip_rps * c.chips_per_pool as f64 / c.ensemble as f64,
    });
    match report.pick() {
        Some(pick) => eprintln!(
            "DSE pick under {:.3} mm² / {:.3} W: {} → {:.0} admitted req/s, \
             {:.6} mm², {:.6} W, {:.3} J/Mreq",
            budget.area_mm2,
            budget.power_w,
            pick.candidate,
            pick.admitted_rps,
            pick.area_mm2,
            pick.power_w,
            pick.j_per_mreq
        ),
        None => eprintln!(
            "DSE: no candidate fits {:.3} mm² / {:.3} W",
            budget.area_mm2, budget.power_w
        ),
    }

    // -- JSON report (meta first, strict RFC 8259). --
    let meta = mei_bench::json::meta("fleet_cost", cfg.seed);
    let fleets_json: Vec<String> = fleet_reports
        .iter()
        .map(|(pools, accounting, rows)| {
            let pool_json: Vec<String> = rows
                .iter()
                .map(|r| {
                    format!(
                        "{{\"pool\":{},\"area_mm2\":{},\"leakage_w\":{},\
                         \"j_per_inference\":{},\"ops_per_mm2\":{},\
                         \"j_per_mreq\":{},\"requests\":{}}}",
                        r.pool,
                        json_num(r.area_mm2, 6),
                        json_num(r.leakage_w, 6),
                        json_num(r.j_per_inference, 15),
                        json_num(r.ops_per_mm2, 1),
                        json_num(r.j_per_mreq, 6),
                        r.requests
                    )
                })
                .collect();
            format!(
                "{{\"pools\":{pools},\"accounting\":{accounting},\
                 \"per_pool\":[{}]}}",
                pool_json.join(",")
            )
        })
        .collect();
    let json = format!(
        "{{\"meta\":{meta},\"suite\":\"fleet_cost/{WORKLOAD}\",\
         \"window_secs\":{},\"chips_per_pool\":{CHIPS_PER_POOL},\
         \"chip_sheet\":{},\
         \"sla\":{{\"target_p99_us\":{},\"met\":{},\"per_pool_rps\":{}}},\
         \"fleets\":[{}],\"dse\":{}}}",
        json_num(window.as_secs_f64(), 3),
        chip_sheet.to_json(),
        json_num(sla_target_us, 3),
        sla.met,
        json_num(per_pool_rps, 3),
        fleets_json.join(","),
        report.to_json(),
    );
    println!("{json}");
    if let Ok(path) = std::env::var("MEI_BENCH_JSON") {
        if let Err(err) = std::fs::write(&path, &json) {
            panic!("cannot write MEI_BENCH_JSON report to '{path}': {err}");
        }
    }
}
