//! Ablation (extension): binary vs Gray-coded interfaces.
//!
//! The paper's future work proposes "higher bit-level or even floating-point
//! format" interfaces; this ablation explores a different axis of the same
//! question — the *wire coding*. Binary fixed point has Hamming cliffs
//! (`0.5 − ε` and `0.5` differ in every bit), so a tiny analog uncertainty
//! at a code boundary can flip the MSB pattern wholesale. A Gray code makes
//! adjacent levels differ in exactly one bit, trading that cliff for a
//! non-positional significance structure.
//!
//! Run with: `cargo run --release -p mei-bench --bin ablation_encoding`

use interface::BitCoding;
use mei::{evaluate_mse, mse_scorer, robustness, MeiConfig, MeiRcs, NonIdealFactors};
use mei_bench::{format_table, ExperimentConfig};
use neural::Dataset;
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};
use workloads::{kmeans::KMeans, Workload};

fn expfit(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::generate(n, &mut rng, |r| {
        let x: f64 = r.gen();
        (vec![x], vec![(-x * x).exp()])
    })
    .expect("valid dataset")
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!("== Ablation: interface wire coding (binary vs Gray) ==\n");

    // Two tasks: the smooth Fig 3 function and the boundary-rich K-means
    // distance kernel.
    let kmeans = KMeans::new();
    let tasks: Vec<(&str, Dataset, Dataset, usize)> = vec![
        (
            "expfit",
            expfit(cfg.train_samples.min(4000), 1),
            expfit(cfg.test_samples, 2),
            16,
        ),
        (
            "kmeans",
            kmeans
                .dataset(cfg.train_samples.min(4000), 3)
                .expect("data"),
            kmeans.dataset(cfg.test_samples, 4).expect("data"),
            32,
        ),
    ];

    let mut rows = Vec::new();
    for (name, train, test, hidden) in &tasks {
        let train_with = |coding: BitCoding| {
            MeiRcs::train(
                train,
                &MeiConfig {
                    hidden: *hidden,
                    coding,
                    device: cfg.device(),
                    train: cfg.mei_train(false),
                    seed: cfg.seed,
                    ..MeiConfig::default()
                },
            )
            .expect("MEI training")
        };
        for coding in [BitCoding::Binary, BitCoding::Gray] {
            let mut rcs = train_with(coding);
            let clean = evaluate_mse(&rcs, test);
            let noisy = robustness(
                &mut rcs,
                test,
                &NonIdealFactors::new(0.1, 0.05),
                cfg.noise_trials.min(30),
                7,
                mse_scorer,
            )
            .mean;
            rows.push(vec![
                (*name).to_string(),
                coding.to_string(),
                format!("{clean:.5}"),
                format!("{noisy:.5}"),
            ]);
        }
    }
    println!(
        "{}",
        format_table(
            &["task", "coding", "clean MSE", "noisy MSE (σ=0.1/0.05)"],
            &rows
        )
    );
    println!("(Gray trades the binary Hamming cliffs for uniform single-bit transitions;");
    println!("whether that wins depends on how much of the task's mass sits near code");
    println!("boundaries — exactly the effect that makes MEI benchmark-dependent.)");
}
