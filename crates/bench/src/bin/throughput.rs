//! Serving-throughput benchmark: batched inference on a manufactured chip
//! pool (`runtime::ChipPool`) at several pool sizes.
//!
//! The workload is the Table 1 **inversek2j** MEI system trained with a
//! small budget. For each chip count in `{1, 2, 4, auto}` the benchmark
//! runs two phases:
//!
//! 1. **closed** — saturating batches with no think time, measuring the
//!    maximum sustainable requests/sec;
//! 2. **open** — a Poisson-free open-loop load at ~70% of the measured
//!    closed-phase rate (uniform arrival spacing), measuring p50/p99
//!    latency *including queueing delay* and per-chip utilization.
//!
//! The human-readable table goes to stderr; the machine-diffable JSON
//! report goes to stdout (and to `MEI_BENCH_JSON` when set). On a
//! single-hardware-thread host the multi-chip speedup is reported, never
//! asserted.
//!
//! Environment knobs:
//!
//! * `MEI_BENCH_SECONDS=<f>` — closed-phase measurement window per pool
//!   size (default 2.0);
//! * `MEI_BENCH_FAST=1` — smoke mode: ~0.2 s windows and a tiny training
//!   budget;
//! * `MEI_BENCH_JSON=<path>` — also write the JSON report to a file;
//! * `MEI_THREADS` is *not* read here: the pool size under test is the
//!   experiment variable.
//!
//! Run with: `cargo run --release -p mei-bench --bin throughput`

use std::time::{Duration, Instant};

use mei::{manufacture_chips, MeiConfig, MeiRcs};
use mei_bench::{format_table, table1_setups, ExperimentConfig, EXPERIMENT_WRITE_SIGMA};
use neural::TrainConfig;
use runtime::{resolve_threads, ChipPool, Placement, ServeStats};

/// One pool size's measurements.
struct PoolResult {
    chips: usize,
    closed_rps: f64,
    open: ServeStats,
}

impl PoolResult {
    fn to_json(&self) -> String {
        format!(
            "{{\"chips\":{},\"closed_requests_per_sec\":{:.3},\"open\":{}}}",
            self.chips,
            self.closed_rps,
            self.open.to_json()
        )
    }
}

fn measure_window() -> Duration {
    let fast = std::env::var("MEI_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false);
    let default = if fast { 0.2 } else { 2.0 };
    let secs = std::env::var("MEI_BENCH_SECONDS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(default);
    Duration::from_secs_f64(secs.clamp(0.05, 60.0))
}

/// Closed phase: serve saturating batches until the window elapses.
fn closed_phase(pool: &ChipPool<MeiRcs>, inputs: &[Vec<f64>], window: Duration) -> f64 {
    let start = Instant::now();
    let mut requests = 0usize;
    while start.elapsed() < window {
        let outcome = pool.serve(inputs, Placement::LeastLoaded);
        requests += outcome.outputs.len();
    }
    requests as f64 / start.elapsed().as_secs_f64()
}

/// Open phase: uniform arrivals at `rate` req/s for the window.
fn open_phase(
    pool: &ChipPool<MeiRcs>,
    inputs: &[Vec<f64>],
    rate: f64,
    window: Duration,
) -> ServeStats {
    let spacing = Duration::from_secs_f64(1.0 / rate.max(1.0));
    let n = ((window.as_secs_f64() * rate).ceil() as usize).max(1);
    let requests: Vec<Vec<f64>> = (0..n).map(|i| inputs[i % inputs.len()].clone()).collect();
    let arrivals: Vec<Duration> = (0..n).map(|i| spacing * i as u32).collect();
    pool.serve_open_loop(&requests, &arrivals, Placement::LeastLoaded)
        .stats
}

fn main() {
    let fast = std::env::var("MEI_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false);
    let window = measure_window();
    let cfg = ExperimentConfig::from_env();

    // The Table 1 inversek2j MEI system, trained with a small budget —
    // the serving workload, not the accuracy experiment.
    let setup = table1_setups()
        .into_iter()
        .find(|s| s.workload.name() == "inversek2j")
        .expect("inversek2j is a Table 1 row");
    let train_samples = if fast { 400 } else { 1_500 };
    let train = setup
        .workload
        .dataset(train_samples, cfg.seed)
        .expect("train data");
    let test = setup.workload.dataset(64, cfg.seed + 1).expect("test data");
    let mei = MeiRcs::train(
        &train,
        &MeiConfig {
            hidden: setup.mei_hidden,
            in_bits: setup.mei_in_bits,
            out_bits: setup.mei_out_bits,
            device: cfg.device(),
            train: TrainConfig {
                epochs: if fast { 15 } else { 60 },
                learning_rate: 0.8,
                ..TrainConfig::default()
            },
            seed: cfg.seed,
            ..MeiConfig::default()
        },
    )
    .expect("MEI training");
    let inputs: Vec<Vec<f64>> = test.inputs().to_vec();

    let auto = resolve_threads(0);
    let mut chip_counts = vec![1usize, 2, 4, auto];
    chip_counts.sort_unstable();
    chip_counts.dedup();

    eprintln!(
        "== throughput: inversek2j MEI serving, {} hardware threads, {:.2}s windows ==",
        auto,
        window.as_secs_f64()
    );

    let mut results: Vec<PoolResult> = Vec::new();
    for &chips in &chip_counts {
        let pool = manufacture_chips(&mei, chips, EXPERIMENT_WRITE_SIGMA, cfg.seed);
        let closed_rps = closed_phase(&pool, &inputs, window);
        let open = open_phase(&pool, &inputs, closed_rps * 0.7, window);
        eprintln!("  {} chips: {}", chips, open);
        results.push(PoolResult {
            chips,
            closed_rps,
            open,
        });
    }

    let rps_of = |chips: usize| {
        results
            .iter()
            .find(|r| r.chips == chips)
            .map(|r| r.closed_rps)
    };
    let speedup_4v1 = match (rps_of(4), rps_of(1)) {
        (Some(four), Some(one)) if one > 0.0 => Some(four / one),
        _ => None,
    };
    let speedup_json = speedup_4v1.map_or_else(|| "null".into(), |s| format!("{s:.4}"));
    let speedup_text = speedup_4v1.map_or_else(|| "n/a".into(), |s| format!("{s:.2}×"));

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let max_util = r
                .open
                .per_chip
                .iter()
                .map(|c| c.utilization)
                .fold(0.0, f64::max);
            vec![
                r.chips.to_string(),
                format!("{:.0}", r.closed_rps),
                format!("{:.0}", r.open.requests_per_sec),
                format!("{:.1}", r.open.p50_latency_us),
                format!("{:.1}", r.open.p99_latency_us),
                format!("{:.2}", max_util),
            ]
        })
        .collect();
    eprintln!(
        "{}",
        format_table(
            &[
                "chips",
                "closed req/s",
                "open req/s",
                "p50 µs",
                "p99 µs",
                "max util",
            ],
            &rows
        )
    );
    eprintln!(
        "speedup 4 chips vs 1 (closed): {} ({} hardware threads — reported, not asserted)",
        speedup_text, auto
    );

    let body: Vec<String> = results.iter().map(PoolResult::to_json).collect();
    let json = format!(
        "{{\"suite\":\"throughput/inversek2j\",\"hardware_threads\":{},\
         \"window_secs\":{:.3},\"speedup_4v1\":{},\"pools\":[{}]}}",
        auto,
        window.as_secs_f64(),
        speedup_json,
        body.join(",")
    );
    println!("{json}");
    if let Ok(path) = std::env::var("MEI_BENCH_JSON") {
        if let Err(err) = std::fs::write(&path, &json) {
            panic!("cannot write MEI_BENCH_JSON report to '{path}': {err}");
        }
    }
}
