//! Serving-throughput benchmark: the policy-driven engine under closed,
//! open-loop and over-the-wire load.
//!
//! The workload is the Table 1 **inversek2j** MEI system trained with a
//! small budget. Four phases:
//!
//! 1. **closed sweep** — saturating batches at pool sizes `{1, 2, 4,
//!    auto}`, measuring the maximum sustainable requests/sec;
//! 2. **in-process knee** — a ramping open-loop controller
//!    (`mei_bench::ramp`) walks the arrival rate up on the largest pool
//!    until p99 latency knees, reporting the knee rate and p50/p99 there
//!    instead of a blind fixed-utilization point;
//! 3. **loopback-TCP knee** — the same ramp driven through
//!    `runtime::net` over 127.0.0.1, a real socket round-trip per
//!    request;
//! 4. **wire protocol v2** — one client against the event-driven server
//!    over loopback, closed loop: strict v1 text round trips versus
//!    pipelined v2 binary batches, reporting both requests/sec and the
//!    ratio (the win the framing buys a single connection);
//! 5. **policy comparison** — a *mixed-topology* pool (2 narrow + 2 wide
//!    chips of the same workload) served open-loop at a fixed rate under
//!    `RoundRobin`, `LeastLoaded` (input-length proxy) and `SizeAware`
//!    over a **calibrated** cost model; the calibrated policy should buy
//!    lower p99 at equal offered rate on multi-core hosts (reported
//!    always, never asserted here).
//!
//! The human-readable tables go to stderr; the machine-diffable JSON
//! report goes to stdout (and to `MEI_BENCH_JSON` when set).
//!
//! Environment knobs:
//!
//! * `MEI_BENCH_SECONDS=<f>` — measurement window per phase (default 2.0;
//!   malformed values warn on stderr and fall back);
//! * `MEI_BENCH_FAST=1` — smoke mode: ~0.2 s windows, tiny training
//!   budget, shorter ramps;
//! * `MEI_BENCH_JSON=<path>` — also write the JSON report to a file;
//! * `MEI_BENCH_JSON_V2=<path>` — also write the standalone protocol-v2
//!   report (the shape committed as `results/BENCH_serving_v2.json`);
//! * `MEI_THREADS` is *not* read here: the pool size under test is the
//!   experiment variable.
//!
//! Run with: `cargo run --release -p mei-bench --bin throughput`

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use mei::{manufacture_chips, MeiConfig, MeiRcs};
use mei_bench::ramp::{ramp_to_knee, RampConfig, RampReport};
use mei_bench::{
    fast_mode, format_table, measure_window, table1_setups, ExperimentConfig,
    EXPERIMENT_WRITE_SIGMA,
};
use neural::TrainConfig;
use runtime::net::frame::ItemResponse;
use runtime::net::{
    Client, ClientV2, EventServer, EventServerConfig, NetWorkload, Response, Server, ServerConfig,
};
use runtime::{
    json_num, resolve_threads, Chip, ChipPool, CostModel, Engine, LeastLoaded, RoundRobin,
    ServeStats, SizeAware,
};

/// Closed phase: serve saturating batches until the window elapses.
fn closed_phase<C: Chip>(engine: &Engine<C>, inputs: &[Vec<f64>], window: Duration) -> f64 {
    let start = Instant::now();
    let mut requests = 0usize;
    while start.elapsed() < window {
        let outcome = engine.serve(inputs);
        requests += outcome.outputs.len();
    }
    requests as f64 / start.elapsed().as_secs_f64()
}

/// Open phase: uniform arrivals at `rate` req/s for the window.
fn open_phase<C: Chip>(
    engine: &Engine<C>,
    inputs: &[Vec<f64>],
    rate: f64,
    window: Duration,
) -> ServeStats {
    let spacing = Duration::from_secs_f64(1.0 / rate.max(1.0));
    let n = ((window.as_secs_f64() * rate).ceil() as usize).max(1);
    let requests: Vec<Vec<f64>> = (0..n).map(|i| inputs[i % inputs.len()].clone()).collect();
    let arrivals: Vec<Duration> = (0..n).map(|i| spacing * i as u32).collect();
    engine.serve_open_loop(&requests, &arrivals).stats
}

/// Open phase over loopback TCP: a paced writer thread sends requests at
/// their scheduled arrival times over one connection; this thread reads
/// responses in order and measures completion − scheduled arrival (so
/// queueing in the server and the socket both count). Per-chip busy time
/// is approximated from the server-reported service latencies.
fn tcp_open_phase(
    addr: std::net::SocketAddr,
    workload: &str,
    chips: usize,
    inputs: &[Vec<f64>],
    rate: f64,
    window: Duration,
) -> ServeStats {
    let spacing = Duration::from_secs_f64(1.0 / rate.max(1.0));
    let n = ((window.as_secs_f64() * rate).ceil() as usize).max(1);
    let stream = TcpStream::connect(addr).expect("connect to bench server");
    stream.set_nodelay(true).expect("nodelay");
    let reader_half = stream.try_clone().expect("clone stream");

    let epoch = Instant::now();
    let writer_inputs: Vec<&Vec<f64>> = (0..n).map(|i| &inputs[i % inputs.len()]).collect();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut writer = BufWriter::new(stream);
            for (i, input) in writer_inputs.iter().enumerate() {
                let due = spacing * i as u32;
                let now = epoch.elapsed();
                if due > now {
                    std::thread::sleep(due - now);
                }
                if writeln!(writer, "{workload} {}", runtime::net::format_csv(input)).is_err()
                    || writer.flush().is_err()
                {
                    return;
                }
            }
        });

        let mut reader = BufReader::new(reader_half);
        let mut latencies: Vec<Duration> = Vec::with_capacity(n);
        let mut per_chip: Vec<(usize, usize, usize, Duration)> =
            vec![(0, 0, 0, Duration::ZERO); chips];
        let mut line = String::new();
        for i in 0..n {
            line.clear();
            let bytes = reader.read_line(&mut line).expect("read response");
            assert!(bytes > 0, "server closed mid-ramp");
            let done = epoch.elapsed();
            let arrival = spacing * i as u32;
            latencies.push(done.saturating_sub(arrival));
            match Response::parse(line.trim_end()).expect("well-formed response") {
                Response::Ok {
                    chip, latency_us, ..
                } => {
                    per_chip[chip].0 += 1;
                    per_chip[chip].1 += 1;
                    per_chip[chip].3 += Duration::from_micros(latency_us as u64);
                }
                Response::Error(e) => panic!("bench request rejected: {e}"),
            }
        }
        ServeStats::from_run("tcp/least_loaded", &latencies, epoch.elapsed(), per_chip)
    })
}

/// Build the mixed-topology pool: `narrow_n` chips of the narrow system
/// and `wide_n` of the wide one, as one type-erased pool. Chip ids
/// `0..narrow_n` are the fast chips.
fn mixed_pool(
    narrow: &MeiRcs,
    wide: &MeiRcs,
    narrow_n: usize,
    wide_n: usize,
    seed: u64,
) -> ChipPool<Box<dyn Chip>> {
    let mut chips: Vec<Box<dyn Chip>> =
        manufacture_chips(narrow, narrow_n, EXPERIMENT_WRITE_SIGMA, seed)
            .boxed()
            .into_chips();
    chips.extend(
        manufacture_chips(wide, wide_n, EXPERIMENT_WRITE_SIGMA, seed + 1)
            .boxed()
            .into_chips(),
    );
    ChipPool::from_chips(chips)
}

struct PolicyResult {
    name: &'static str,
    offered_rps: f64,
    stats: ServeStats,
}

impl PolicyResult {
    fn to_json(&self) -> String {
        format!(
            "{{\"policy\":\"{}\",\"offered_rps\":{},\"stats\":{}}}",
            runtime::json_escape(self.name),
            json_num(self.offered_rps, 3),
            self.stats.to_json()
        )
    }
}

fn knee_table(label: &str, report: &RampReport) -> String {
    let rows: Vec<Vec<String>> = report
        .steps
        .iter()
        .map(|s| {
            vec![
                format!("{:.0}", s.offered_rps),
                format!("{:.0}", s.stats.requests_per_sec),
                format!("{:.1}", s.stats.p50_latency_us),
                format!("{:.1}", s.stats.p99_latency_us),
            ]
        })
        .collect();
    let knee = report.knee_step();
    format!(
        "{}\nknee[{label}]: {:.0} req/s (p50 {:.1} µs, p99 {:.1} µs, elbow {})",
        format_table(
            &["offered req/s", "served req/s", "p50 µs", "p99 µs"],
            &rows
        ),
        knee.offered_rps,
        knee.stats.p50_latency_us,
        knee.stats.p99_latency_us,
        if report.kneed { "found" } else { "not reached" }
    )
}

/// Closed-loop v1 over one connection: strict request/response round
/// trips until the window elapses. Returns requests/sec.
fn v1_closed_loop(
    addr: std::net::SocketAddr,
    workload: &str,
    inputs: &[Vec<f64>],
    window: Duration,
) -> f64 {
    let mut client = Client::connect(addr).expect("connect v1 client");
    let start = Instant::now();
    let mut served = 0usize;
    while start.elapsed() < window {
        let input = &inputs[served % inputs.len()];
        match client.request(workload, input).expect("v1 round trip") {
            Response::Ok { .. } => served += 1,
            Response::Error(e) => panic!("bench request rejected: {e}"),
        }
    }
    served as f64 / start.elapsed().as_secs_f64()
}

/// Closed-loop v2 over one connection: `depth` request frames of `batch`
/// requests each kept in flight, receiving and refilling until the
/// window elapses (then draining). Returns requests/sec.
fn v2_pipelined_loop(
    addr: std::net::SocketAddr,
    workload: &str,
    inputs: &[Vec<f64>],
    batch: usize,
    depth: usize,
    window: Duration,
) -> f64 {
    let mut client = ClientV2::connect(addr).expect("connect v2 client");
    let frame_inputs: Vec<Vec<f64>> = (0..batch)
        .map(|i| inputs[i % inputs.len()].clone())
        .collect();
    let start = Instant::now();
    let mut served = 0usize;
    let mut in_flight = 0usize;
    loop {
        while in_flight < depth && start.elapsed() < window {
            client
                .send_batch(workload, &frame_inputs)
                .expect("send v2 batch");
            in_flight += 1;
        }
        if in_flight == 0 {
            break;
        }
        let items = client.recv_batch().expect("recv v2 batch");
        in_flight -= 1;
        for item in &items {
            match item {
                ItemResponse::Ok { .. } => served += 1,
                ItemResponse::Shed => {}
                ItemResponse::Err(e) => panic!("bench request rejected: {e}"),
            }
        }
    }
    served as f64 / start.elapsed().as_secs_f64()
}

/// Pull the v1 loopback-TCP knee rate out of the committed baseline
/// report, if it is readable from the current directory. A one-key
/// extraction, not a parser: the committed shape is under our control.
fn baseline_tcp_knee_rps(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let tcp = text.split("\"tcp\":{\"knee_rps\":").nth(1)?;
    let number: String = tcp
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    number.parse().ok()
}

#[allow(clippy::too_many_lines)]
fn main() {
    let fast = fast_mode();
    let window = measure_window(if fast { 0.2 } else { 2.0 });
    let cfg = ExperimentConfig::from_env();

    // The Table 1 inversek2j MEI system, trained with a small budget —
    // the serving workload, not the accuracy experiment.
    let setup = table1_setups()
        .into_iter()
        .find(|s| s.workload.name() == "inversek2j")
        .expect("inversek2j is a Table 1 row");
    let train_samples = if fast { 400 } else { 1_500 };
    let train = setup
        .workload
        .dataset(train_samples, cfg.seed)
        .expect("train data");
    let test = setup.workload.dataset(64, cfg.seed + 1).expect("test data");
    let train_mei = |hidden: usize| {
        MeiRcs::train(
            &train,
            &MeiConfig {
                hidden,
                in_bits: setup.mei_in_bits,
                out_bits: setup.mei_out_bits,
                device: cfg.device(),
                train: TrainConfig {
                    epochs: if fast { 15 } else { 60 },
                    learning_rate: 0.8,
                    ..TrainConfig::default()
                },
                seed: cfg.seed,
                ..MeiConfig::default()
            },
        )
        .expect("MEI training")
    };
    let mei = train_mei(setup.mei_hidden);
    let inputs: Vec<Vec<f64>> = test.inputs().to_vec();
    let input_dim = inputs[0].len();

    let auto = resolve_threads(0);
    let mut chip_counts = vec![1usize, 2, 4, auto];
    chip_counts.sort_unstable();
    chip_counts.dedup();
    let largest = *chip_counts.last().expect("non-empty");

    eprintln!(
        "== throughput: inversek2j MEI serving, {} hardware threads, {:.2}s windows ==",
        auto,
        window.as_secs_f64()
    );

    // Phase 1: closed saturation sweep over pool sizes.
    let mut closed: Vec<(usize, f64)> = Vec::new();
    for &chips in &chip_counts {
        let engine = Engine::new(manufacture_chips(
            &mei,
            chips,
            EXPERIMENT_WRITE_SIGMA,
            cfg.seed,
        ));
        closed.push((chips, closed_phase(&engine, &inputs, window)));
    }
    let rows: Vec<Vec<String>> = closed
        .iter()
        .map(|(chips, rps)| vec![chips.to_string(), format!("{rps:.0}")])
        .collect();
    eprintln!("{}", format_table(&["chips", "closed req/s"], &rows));
    let rps_of = |chips: usize| closed.iter().find(|r| r.0 == chips).map(|r| r.1);
    let speedup_4v1 = match (rps_of(4), rps_of(1)) {
        (Some(four), Some(one)) if one > 0.0 => Some(four / one),
        _ => None,
    };
    eprintln!(
        "speedup 4 chips vs 1 (closed): {} ({} hardware threads — reported, not asserted)",
        speedup_4v1.map_or_else(|| "n/a".into(), |s| format!("{s:.2}×")),
        auto
    );

    // Phase 2: in-process knee on the largest pool.
    let closed_largest = rps_of(largest).expect("largest pool measured");
    let ramp_config = RampConfig {
        start_rps: (closed_largest * 0.15).max(10.0),
        growth: if fast { 1.6 } else { 1.35 },
        max_steps: if fast { 6 } else { 12 },
        knee_factor: 4.0,
    };
    let knee_window = if fast {
        window
    } else {
        window.min(Duration::from_secs(1))
    };
    let engine = Engine::new(manufacture_chips(
        &mei,
        largest,
        EXPERIMENT_WRITE_SIGMA,
        cfg.seed,
    ));
    let in_process = ramp_to_knee(&ramp_config, |rate| {
        open_phase(&engine, &inputs, rate, knee_window)
    });
    eprintln!(
        "\n-- in-process open-loop ramp ({largest} chips) --\n{}",
        knee_table("in_process", &in_process)
    );

    // Phase 3: the same ramp through the TCP front-end over loopback.
    let server = Server::bind(
        "127.0.0.1:0",
        vec![NetWorkload::new(
            "inversek2j",
            input_dim,
            Engine::new(manufacture_chips(&mei, largest, EXPERIMENT_WRITE_SIGMA, cfg.seed).boxed()),
        )],
        ServerConfig::default(),
    )
    .expect("bind loopback server");
    let addr = server.addr();
    // A single connection serves inline, so the TCP ramp starts lower.
    let tcp_config = RampConfig {
        start_rps: (closed_largest * 0.05 / largest as f64).max(10.0),
        ..ramp_config
    };
    let tcp = ramp_to_knee(&tcp_config, |rate| {
        tcp_open_phase(addr, "inversek2j", largest, &inputs, rate, knee_window)
    });
    server.shutdown();
    eprintln!(
        "\n-- loopback TCP open-loop ramp ({largest} chips, 1 connection) --\n{}",
        knee_table("tcp", &tcp)
    );

    // Phase 4: wire protocol v2 vs v1, one client, closed loop over the
    // event-driven server. v1 pays a full round trip per request; v2
    // pipelines binary batch frames, so a single connection can keep the
    // pool busy.
    let v2_batch = 64usize;
    let v2_depth = 4usize;
    let event_server = EventServer::bind(
        "127.0.0.1:0",
        vec![NetWorkload::new(
            "inversek2j",
            input_dim,
            Engine::new(manufacture_chips(&mei, largest, EXPERIMENT_WRITE_SIGMA, cfg.seed).boxed()),
        )],
        EventServerConfig::default(),
    )
    .expect("bind event server");
    let event_addr = event_server.addr();
    let v1_rps = v1_closed_loop(event_addr, "inversek2j", &inputs, window);
    let v2_rps = v2_pipelined_loop(
        event_addr,
        "inversek2j",
        &inputs,
        v2_batch,
        v2_depth,
        window,
    );
    event_server.shutdown();
    let v2_over_v1 = if v1_rps > 0.0 {
        v2_rps / v1_rps
    } else {
        f64::NAN
    };
    let baseline_path = "results/BENCH_serving_baseline.json";
    let baseline_knee = baseline_tcp_knee_rps(baseline_path);
    eprintln!(
        "\n-- wire protocol v2 ({largest} chips, 1 connection, closed loop) --\n{}",
        format_table(
            &["protocol", "req/s"],
            &[
                vec!["v1 strict".into(), format!("{v1_rps:.0}")],
                vec![
                    format!("v2 pipelined ({v2_batch}×{v2_depth})"),
                    format!("{v2_rps:.0}")
                ],
            ]
        )
    );
    eprintln!("v2 pipelined / v1 strict = {v2_over_v1:.2}×");
    let v2_json = format!(
        "{{\"suite\":\"serving_v2/inversek2j\",\"hardware_threads\":{auto},\
         \"window_secs\":{},\"chips\":{largest},\"batch\":{v2_batch},\"depth\":{v2_depth},\
         \"v1_closed_loop_rps\":{},\"v2_pipelined_rps\":{},\"v2_over_v1\":{},\
         \"v1_baseline_tcp_knee_rps\":{},\"v1_baseline_source\":\"{baseline_path}\"}}",
        json_num(window.as_secs_f64(), 3),
        json_num(v1_rps, 3),
        json_num(v2_rps, 3),
        json_num(v2_over_v1, 4),
        baseline_knee.map_or_else(|| "null".into(), |k| json_num(k, 3)),
    );
    if let Ok(path) = std::env::var("MEI_BENCH_JSON_V2") {
        if let Err(err) = std::fs::write(&path, &v2_json) {
            panic!("cannot write MEI_BENCH_JSON_V2 report to '{path}': {err}");
        }
    }

    // Phase 5: mixed-topology policy comparison. Two narrow (fast) and
    // two wide (slow) chips of the same workload; the calibrated
    // size-aware policy should hold a lower p99 at equal offered rate.
    let wide = train_mei(setup.mei_hidden * 6);
    let build = || mixed_pool(&mei, &wide, 2, 2, cfg.seed);
    let calibration = CostModel::calibrate(&build(), &inputs[..8.min(inputs.len())], 3);
    eprintln!(
        "\n-- mixed-topology pool (2× hidden={}, 2× hidden={}) --\ncalibrated cost model: {}",
        setup.mei_hidden,
        setup.mei_hidden * 6,
        calibration.to_json()
    );
    let mixed_closed = closed_phase(
        &Engine::new(build()).with_policy(LeastLoaded),
        &inputs,
        window,
    );
    let offered = mixed_closed * 0.6;
    let policies: Vec<PolicyResult> = vec![
        PolicyResult {
            name: "round_robin",
            offered_rps: offered,
            stats: open_phase(
                &Engine::new(build()).with_policy(RoundRobin),
                &inputs,
                offered,
                window,
            ),
        },
        PolicyResult {
            name: "least_loaded",
            offered_rps: offered,
            stats: open_phase(
                &Engine::new(build()).with_policy(LeastLoaded),
                &inputs,
                offered,
                window,
            ),
        },
        PolicyResult {
            name: "size_aware",
            offered_rps: offered,
            stats: open_phase(
                &Engine::new(build())
                    .with_policy(SizeAware)
                    .with_cost_model(calibration.clone()),
                &inputs,
                offered,
                window,
            ),
        },
    ];
    let rows: Vec<Vec<String>> = policies
        .iter()
        .map(|p| {
            vec![
                p.name.to_string(),
                format!("{:.0}", p.offered_rps),
                format!("{:.0}", p.stats.requests_per_sec),
                format!("{:.1}", p.stats.p50_latency_us),
                format!("{:.1}", p.stats.p99_latency_us),
            ]
        })
        .collect();
    eprintln!(
        "{}",
        format_table(
            &[
                "policy",
                "offered req/s",
                "served req/s",
                "p50 µs",
                "p99 µs"
            ],
            &rows
        )
    );
    let p99_of = |name: &str| {
        policies
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.stats.p99_latency_us)
            .expect("policy measured")
    };
    eprintln!(
        "size_aware p99 / round_robin p99 = {:.3} (multi-core hosts should see < 1; \
         {} hardware threads here — reported, not asserted)",
        p99_of("size_aware") / p99_of("round_robin"),
        auto
    );

    let meta = mei_bench::json::meta("throughput", cfg.seed);
    let closed_json: Vec<String> = closed
        .iter()
        .map(|(chips, rps)| {
            format!(
                "{{\"chips\":{chips},\"closed_requests_per_sec\":{}}}",
                json_num(*rps, 3)
            )
        })
        .collect();
    let policies_json: Vec<String> = policies.iter().map(PolicyResult::to_json).collect();
    let json = format!(
        "{{\"meta\":{meta},\"suite\":\"throughput/inversek2j\",\"hardware_threads\":{},\
         \"window_secs\":{},\"speedup_4v1\":{},\"pools\":[{}],\
         \"knee\":{{\"in_process\":{},\"tcp\":{}}},\
         \"v2\":{},\
         \"mixed_topology\":{{\"narrow_hidden\":{},\"wide_hidden\":{},\
         \"cost_model\":{},\"closed_requests_per_sec\":{},\"policies\":[{}]}}}}",
        auto,
        json_num(window.as_secs_f64(), 3),
        speedup_4v1.map_or_else(|| "null".into(), |s| json_num(s, 4)),
        closed_json.join(","),
        in_process.to_json(),
        tcp.to_json(),
        v2_json,
        setup.mei_hidden,
        setup.mei_hidden * 6,
        calibration.to_json(),
        json_num(mixed_closed, 3),
        policies_json.join(",")
    );
    println!("{json}");
    if let Ok(path) = std::env::var("MEI_BENCH_JSON") {
        if let Err(err) = std::fs::write(&path, &json) {
            panic!("cannot write MEI_BENCH_JSON report to '{path}': {err}");
        }
    }
}
