//! Adaptive open-loop ramp: walk the offered arrival rate up until the
//! p99 latency knees, and report the knee instead of an arbitrary
//! fixed-utilization point.
//!
//! Open-loop serving has a characteristic hockey-stick: below the pool's
//! capacity the p99 latency sits near the bare service time; past it the
//! queue grows without bound and latency explodes. The 70%-of-closed-rate
//! point the bench used before is a blind guess at where the elbow sits —
//! [`ramp_to_knee`] finds it by measurement, generically over any driver
//! (in-process engine or loopback TCP), so both report comparable knees.
//!
//! The controller is deliberately simple and deterministic in structure:
//! a geometric rate sweep, a latency budget derived from the *lower* p99
//! of the first two (lightly loaded) steps, and "two steps over budget
//! in a row" as the stop condition. Both guards exist for the same
//! reason — one noisy window must not decide the ramp: a spiky first
//! window would otherwise inflate the budget and mask the true knee,
//! and a single spiky later window would otherwise end the ramp early.

use runtime::{json_num, AdmissionConfig, ServeStats};

/// One ramp step: the offered rate and what the pool did under it.
#[derive(Debug, Clone)]
pub struct RampStep {
    /// Offered arrival rate, requests/second.
    pub offered_rps: f64,
    /// Measured serving statistics at that rate.
    pub stats: ServeStats,
}

impl RampStep {
    /// The step as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"offered_rps\":{},\"stats\":{}}}",
            json_num(self.offered_rps, 3),
            self.stats.to_json()
        )
    }
}

/// Ramp controller knobs.
#[derive(Debug, Clone, Copy)]
pub struct RampConfig {
    /// First offered rate, requests/second.
    pub start_rps: f64,
    /// Multiplicative rate step (> 1).
    pub growth: f64,
    /// Hard cap on steps, in case the knee never shows.
    pub max_steps: usize,
    /// A step is "over budget" when its p99 exceeds
    /// `knee_factor × baseline p99` (baseline = the lower p99 of the
    /// first two steps, so one inflated first window cannot raise the
    /// budget and mask the knee).
    pub knee_factor: f64,
}

impl Default for RampConfig {
    fn default() -> Self {
        Self {
            start_rps: 100.0,
            growth: 1.3,
            max_steps: 12,
            knee_factor: 4.0,
        }
    }
}

/// The ramp's verdict: every step taken plus the knee — the last step
/// whose p99 stayed within budget (or the final step, when the budget
/// never blew within `max_steps`).
#[derive(Debug, Clone)]
pub struct RampReport {
    /// All measured steps, in ramp order.
    pub steps: Vec<RampStep>,
    /// Index into `steps` of the knee.
    pub knee: usize,
    /// Whether the ramp actually found the elbow (two consecutive
    /// over-budget steps) rather than running out of steps.
    pub kneed: bool,
}

impl RampReport {
    /// The knee step.
    #[must_use]
    pub fn knee_step(&self) -> &RampStep {
        &self.steps[self.knee]
    }

    /// Turn the measured knee into a serving [`AdmissionConfig`]: the
    /// delay bound is `headroom ×` the knee step's p99, and the
    /// cost→seconds conversion assumes the pool retires the knee rate
    /// across `chips` chips at the workload's `mean_cost`
    /// ([`AdmissionConfig::from_knee`]). This is the calibration loop the
    /// serving stack closes: ramp → knee → gate.
    ///
    /// # Panics
    ///
    /// Panics if the knee step is degenerate (non-positive rate or p99)
    /// or the arguments are (see [`AdmissionConfig::from_knee`]).
    #[must_use]
    pub fn admission_config(&self, headroom: f64, mean_cost: f64, chips: usize) -> AdmissionConfig {
        let knee = self.knee_step();
        AdmissionConfig::from_knee(
            knee.offered_rps,
            knee.stats.p99_latency_us,
            headroom,
            mean_cost,
            chips,
        )
    }

    /// The report as a JSON object (knee summary + full step trace).
    #[must_use]
    pub fn to_json(&self) -> String {
        let knee = self.knee_step();
        let steps: Vec<String> = self.steps.iter().map(RampStep::to_json).collect();
        format!(
            "{{\"knee_rps\":{},\"kneed\":{},\"knee_p50_us\":{},\"knee_p99_us\":{},\
             \"steps\":[{}]}}",
            json_num(knee.offered_rps, 3),
            self.kneed,
            json_num(knee.stats.p50_latency_us, 3),
            json_num(knee.stats.p99_latency_us, 3),
            steps.join(",")
        )
    }
}

/// Walk the offered rate up geometrically, calling `measure(rate)` for
/// each step, until p99 blows past the budget on two consecutive steps
/// (or `max_steps` runs out). Returns every step and the knee: the last
/// step that stayed within `knee_factor ×` the baseline p99, where the
/// baseline is the *lower* p99 of the first two steps (one noisy first
/// window must not inflate the budget).
///
/// # Panics
///
/// Panics if the config is degenerate (non-positive start rate, growth
/// ≤ 1, zero steps, knee factor ≤ 1).
pub fn ramp_to_knee<F>(config: &RampConfig, mut measure: F) -> RampReport
where
    F: FnMut(f64) -> ServeStats,
{
    assert!(config.start_rps > 0.0, "start rate must be positive");
    assert!(config.growth > 1.0, "the ramp must actually ramp");
    assert!(config.max_steps > 0, "the ramp needs at least one step");
    assert!(config.knee_factor > 1.0, "the budget must exceed baseline");

    let mut steps: Vec<RampStep> = Vec::new();
    let mut budget_us = f64::INFINITY;
    let mut over_in_a_row = 0usize;
    let mut rate = config.start_rps;
    let mut kneed = false;
    for step in 0..config.max_steps {
        let stats = measure(rate);
        let p99 = stats.p99_latency_us;
        steps.push(RampStep {
            offered_rps: rate,
            stats,
        });
        if step == 0 {
            budget_us = p99 * config.knee_factor;
        } else if step == 1 {
            // The baseline is the lower of the first two lightly loaded
            // windows: a single inflated first window would otherwise
            // raise the budget by knee_factor× and hide the real elbow.
            let first = steps[0].stats.p99_latency_us;
            // f64::min ignores a NaN operand, so an all-shed window
            // (NaN p99) cannot poison the budget either.
            budget_us = first.min(p99) * config.knee_factor;
        }
        if p99 > budget_us {
            over_in_a_row += 1;
            if over_in_a_row >= 2 {
                kneed = true;
                break;
            }
        } else {
            over_in_a_row = 0;
        }
        rate *= config.growth;
    }

    // The knee is the last within-budget step; if even the first step
    // blew (budget == first p99 × factor > first p99, so it cannot),
    // fall back to the last step.
    let knee = steps
        .iter()
        .rposition(|s| s.stats.p99_latency_us <= budget_us)
        .unwrap_or(steps.len() - 1);
    RampReport { steps, knee, kneed }
}

/// Closed-loop SLA search knobs.
#[derive(Debug, Clone, Copy)]
pub struct SlaConfig {
    /// Absolute p99 target, µs — unlike the ramp's *relative* knee
    /// budget, this is the latency promise being engineered for.
    pub target_p99_us: f64,
    /// Hard cap on bisection probes.
    pub max_iters: usize,
    /// Stop when the bracket has shrunk to `rel_tol × hi`.
    pub rel_tol: f64,
}

impl SlaConfig {
    /// A search for `target_p99_us` with the default budget: 8 probes,
    /// 5% relative bracket tolerance.
    #[must_use]
    pub fn new(target_p99_us: f64) -> Self {
        Self {
            target_p99_us,
            max_iters: 8,
            rel_tol: 0.05,
        }
    }
}

/// The SLA search's verdict.
#[derive(Debug, Clone)]
pub struct SlaReport {
    /// The absolute p99 target searched for, µs.
    pub target_p99_us: f64,
    /// The highest measured rate whose p99 met the target (0 when even
    /// the lightest ramp step missed it).
    pub max_rps: f64,
    /// The measured p99 at `max_rps`, µs (NaN when `met` is false).
    pub p99_at_max_us: f64,
    /// Whether any measured rate met the target at all.
    pub met: bool,
    /// The final `(under, over)` rate bracket the bisection narrowed to
    /// (`over` is infinite when no measured rate ever missed).
    pub bracket: (f64, f64),
    /// Every bisection probe, in probe order (empty when the ramp's own
    /// steps already pinned the answer).
    pub probes: Vec<RampStep>,
}

impl SlaReport {
    /// The report as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let probes: Vec<String> = self.probes.iter().map(RampStep::to_json).collect();
        format!(
            "{{\"target_p99_us\":{},\"max_rps\":{},\"p99_at_max_us\":{},\"met\":{},\
             \"bracket_under_rps\":{},\"bracket_over_rps\":{},\"probes\":[{}]}}",
            json_num(self.target_p99_us, 3),
            json_num(self.max_rps, 3),
            json_num(self.p99_at_max_us, 3),
            self.met,
            json_num(self.bracket.0, 3),
            json_num(self.bracket.1, 3),
            probes.join(",")
        )
    }
}

/// Closed-loop SLA search: find the highest rate whose p99 stays under
/// an **absolute** target, by bisecting inside the bracket the ramp
/// already measured. The ramp's knee answers "where does latency
/// explode *relative to baseline*"; this answers the capacity-planning
/// question "how fast can this pool go while still honoring an SLA" —
/// the per-pool number [`Fleet::pools_for`](runtime::Fleet::pools_for)
/// scales up to a fleet size.
///
/// The bracket is seeded from `ramp.steps`: `lo` = the highest ramp
/// rate that met the target, `hi` = the lowest that missed it (a NaN
/// p99 — an all-shed window — counts as a miss). Bisection then probes
/// arithmetic midpoints via `measure(rate)` until the bracket shrinks
/// to `rel_tol` or `max_iters` runs out. With no missing rate there is
/// nothing to bisect toward (`bracket.1` is infinite); with no meeting
/// rate the search reports `met: false` without probing.
///
/// # Panics
///
/// Panics if `ramp.steps` is empty or the config is degenerate
/// (non-positive target, zero tolerance).
pub fn sla_search<F>(ramp: &RampReport, config: &SlaConfig, mut measure: F) -> SlaReport
where
    F: FnMut(f64) -> ServeStats,
{
    assert!(!ramp.steps.is_empty(), "the search needs ramp steps");
    assert!(
        config.target_p99_us > 0.0,
        "the SLA target must be positive"
    );
    assert!(config.rel_tol > 0.0, "the tolerance must be positive");

    let meets = |stats: &ServeStats| stats.p99_latency_us <= config.target_p99_us;
    let mut lo: Option<RampStep> = None; // highest meeting rate
    let mut hi = f64::INFINITY; // lowest missing rate
    for step in &ramp.steps {
        if meets(&step.stats) {
            if lo.as_ref().is_none_or(|s| step.offered_rps > s.offered_rps) {
                lo = Some(step.clone());
            }
        } else if step.offered_rps < hi {
            hi = step.offered_rps;
        }
    }

    let Some(mut lo) = lo else {
        // Even the lightest measured rate missed the target: the pool
        // cannot honor this SLA at any rate the ramp visited.
        return SlaReport {
            target_p99_us: config.target_p99_us,
            max_rps: 0.0,
            p99_at_max_us: f64::NAN,
            met: false,
            bracket: (0.0, hi),
            probes: Vec::new(),
        };
    };

    let mut probes = Vec::new();
    for _ in 0..config.max_iters {
        if !hi.is_finite() || hi - lo.offered_rps <= config.rel_tol * hi {
            break;
        }
        let mid = 0.5 * (lo.offered_rps + hi);
        let stats = measure(mid);
        let step = RampStep {
            offered_rps: mid,
            stats,
        };
        if meets(&step.stats) {
            lo = step.clone();
        } else {
            hi = mid;
        }
        probes.push(step);
    }

    SlaReport {
        target_p99_us: config.target_p99_us,
        max_rps: lo.offered_rps,
        p99_at_max_us: lo.stats.p99_latency_us,
        met: true,
        bracket: (lo.offered_rps, hi),
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// A flat window: every latency sample at `p99_us`.
    fn flat(p99_us: f64) -> ServeStats {
        let lat = Duration::from_secs_f64(p99_us * 1e-6);
        ServeStats::from_run("synthetic", &[lat; 4], Duration::from_millis(10), vec![])
    }

    /// A synthetic pool: p99 flat at 100 µs below 1000 rps, exploding
    /// ~10× per step above it.
    fn synthetic(rate: f64) -> ServeStats {
        let p99_us = if rate <= 1000.0 {
            100.0
        } else {
            100.0 * (rate / 1000.0).powi(4)
        };
        flat(p99_us)
    }

    #[test]
    fn ramp_finds_the_synthetic_knee() {
        let config = RampConfig {
            start_rps: 250.0,
            growth: 1.5,
            max_steps: 16,
            knee_factor: 4.0,
        };
        let report = ramp_to_knee(&config, synthetic);
        assert!(report.kneed, "the synthetic elbow must be found");
        let knee = report.knee_step();
        assert!(
            knee.offered_rps <= 1300.0,
            "knee rate {} is past the synthetic capacity",
            knee.offered_rps
        );
        assert!(knee.stats.p99_latency_us <= 400.0);
        // The ramp stopped soon after the blow-up, not at max_steps.
        assert!(report.steps.len() < 16);
        let json = report.to_json();
        assert!(json.starts_with("{\"knee_rps\":"));
        assert!(json.contains("\"steps\":["));
    }

    #[test]
    fn knee_converts_to_an_admission_config() {
        let config = RampConfig {
            start_rps: 250.0,
            growth: 1.5,
            max_steps: 16,
            knee_factor: 4.0,
        };
        let report = ramp_to_knee(&config, synthetic);
        let admit = report.admission_config(3.0, 2.0, 4);
        let knee = report.knee_step();
        assert!((admit.max_delay_secs - 3.0 * knee.stats.p99_latency_us * 1e-6).abs() < 1e-12);
        assert!(
            (admit.secs_per_cost - 4.0 / (knee.offered_rps * 2.0)).abs() < 1e-12,
            "secs_per_cost {} for knee {}",
            admit.secs_per_cost,
            knee.offered_rps
        );
    }

    #[test]
    fn ramp_without_a_knee_reports_the_last_step() {
        let config = RampConfig {
            start_rps: 10.0,
            growth: 2.0,
            max_steps: 5,
            knee_factor: 4.0,
        };
        let report = ramp_to_knee(&config, |_| synthetic(100.0));
        assert!(!report.kneed);
        assert_eq!(report.steps.len(), 5);
        assert_eq!(report.knee, 4, "flat latency → knee is the last step");
    }

    #[test]
    fn inflated_first_step_does_not_mask_the_knee() {
        let config = RampConfig {
            start_rps: 250.0,
            growth: 1.5,
            max_steps: 16,
            knee_factor: 4.0,
        };
        let mut calls = 0usize;
        let report = ramp_to_knee(&config, |rate| {
            calls += 1;
            if calls == 1 {
                // A cold-start spike: 20× the true lightly loaded p99.
                // With the budget derived from this window alone the
                // elbow near 1000 rps would sit "within budget" and the
                // ramp would sail far past capacity before stopping.
                flat(2000.0)
            } else {
                synthetic(rate)
            }
        });
        assert!(report.kneed, "the knee must still be found");
        let knee = report.knee_step();
        assert!(
            knee.offered_rps <= 1300.0,
            "knee rate {} is past the synthetic capacity — the spiky \
             first window inflated the budget",
            knee.offered_rps
        );
        assert!(
            knee.stats.p99_latency_us <= 400.0,
            "knee p99 {} exceeds 4× the true baseline",
            knee.stats.p99_latency_us
        );
    }

    #[test]
    fn sla_search_bisects_to_the_synthetic_capacity() {
        let config = RampConfig {
            start_rps: 250.0,
            growth: 1.5,
            max_steps: 16,
            knee_factor: 4.0,
        };
        let ramp = ramp_to_knee(&config, synthetic);
        // 200 µs target: met up to ~1189 rps (100·(r/1000)⁴ ≤ 200).
        let sla = sla_search(&ramp, &SlaConfig::new(200.0), synthetic);
        assert!(sla.met);
        assert!(
            sla.max_rps > 1000.0 && sla.max_rps <= 1189.3,
            "max rps {} should bisect close under the 200 µs capacity",
            sla.max_rps
        );
        assert!(sla.p99_at_max_us <= 200.0);
        // The bracket actually narrowed to tolerance.
        assert!(sla.bracket.1 - sla.bracket.0 <= 0.05 * sla.bracket.1 + 1e-9);
        assert!(!sla.probes.is_empty(), "the ramp steps alone are coarser");
        let json = sla.to_json();
        assert!(json.starts_with("{\"target_p99_us\":"));
        assert!(json.contains("\"probes\":["));
    }

    #[test]
    fn sla_search_is_deterministic() {
        let ramp = ramp_to_knee(
            &RampConfig {
                start_rps: 250.0,
                growth: 1.5,
                max_steps: 16,
                knee_factor: 4.0,
            },
            synthetic,
        );
        let a = sla_search(&ramp, &SlaConfig::new(300.0), synthetic);
        let b = sla_search(&ramp, &SlaConfig::new(300.0), synthetic);
        assert_eq!(a.max_rps.to_bits(), b.max_rps.to_bits());
        assert_eq!(a.probes.len(), b.probes.len());
    }

    #[test]
    fn unmeetable_sla_reports_unmet_without_probing() {
        let ramp = ramp_to_knee(&RampConfig::default(), synthetic);
        // Every synthetic window sits at ≥ 100 µs p99.
        let sla = sla_search(&ramp, &SlaConfig::new(50.0), |_| {
            panic!("no probe should run when no ramp step met the target")
        });
        assert!(!sla.met);
        assert_eq!(sla.max_rps, 0.0);
        assert!(sla.p99_at_max_us.is_nan());
    }

    #[test]
    fn sla_looser_than_every_step_skips_bisection() {
        let ramp = ramp_to_knee(
            &RampConfig {
                start_rps: 10.0,
                growth: 2.0,
                max_steps: 4,
                knee_factor: 4.0,
            },
            |_| flat(100.0),
        );
        let sla = sla_search(&ramp, &SlaConfig::new(1e6), |_| {
            panic!("nothing to bisect toward when no step missed")
        });
        assert!(sla.met);
        assert_eq!(sla.max_rps, 80.0, "highest ramp rate wins");
        assert!(!sla.bracket.1.is_finite());
        assert!(sla.probes.is_empty());
    }

    #[test]
    fn all_shed_windows_count_as_missing_the_target() {
        // NaN p99 (every sample non-finite) must bracket as "over", not
        // meet.
        let nan_stats = |_: f64| {
            ServeStats::from_latencies_us(
                "synthetic",
                &[f64::INFINITY],
                Duration::from_millis(10),
                vec![],
            )
        };
        let ramp = RampReport {
            steps: vec![
                RampStep {
                    offered_rps: 100.0,
                    stats: flat(50.0),
                },
                RampStep {
                    offered_rps: 200.0,
                    stats: nan_stats(0.0),
                },
            ],
            knee: 0,
            kneed: true,
        };
        let sla = sla_search(&ramp, &SlaConfig::new(100.0), nan_stats);
        assert!(sla.met);
        assert_eq!(sla.bracket.0, sla.max_rps);
        assert!(sla.bracket.1 <= 200.0, "the NaN step must cap the bracket");
    }

    #[test]
    fn one_noisy_step_does_not_end_the_ramp() {
        let mut calls = 0usize;
        let report = ramp_to_knee(&RampConfig::default(), |rate| {
            calls += 1;
            // Step 3 alone spikes; the ramp must keep going after it.
            if calls == 3 {
                synthetic(10_000.0)
            } else {
                synthetic(rate.min(500.0))
            }
        });
        assert!(!report.kneed);
        assert_eq!(report.steps.len(), RampConfig::default().max_steps);
    }
}
