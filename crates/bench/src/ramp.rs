//! Adaptive open-loop ramp: walk the offered arrival rate up until the
//! p99 latency knees, and report the knee instead of an arbitrary
//! fixed-utilization point.
//!
//! Open-loop serving has a characteristic hockey-stick: below the pool's
//! capacity the p99 latency sits near the bare service time; past it the
//! queue grows without bound and latency explodes. The 70%-of-closed-rate
//! point the bench used before is a blind guess at where the elbow sits —
//! [`ramp_to_knee`] finds it by measurement, generically over any driver
//! (in-process engine or loopback TCP), so both report comparable knees.
//!
//! The controller is deliberately simple and deterministic in structure:
//! a geometric rate sweep, a latency budget derived from the *lower* p99
//! of the first two (lightly loaded) steps, and "two steps over budget
//! in a row" as the stop condition. Both guards exist for the same
//! reason — one noisy window must not decide the ramp: a spiky first
//! window would otherwise inflate the budget and mask the true knee,
//! and a single spiky later window would otherwise end the ramp early.

use runtime::{json_num, AdmissionConfig, ServeStats};

/// One ramp step: the offered rate and what the pool did under it.
#[derive(Debug, Clone)]
pub struct RampStep {
    /// Offered arrival rate, requests/second.
    pub offered_rps: f64,
    /// Measured serving statistics at that rate.
    pub stats: ServeStats,
}

impl RampStep {
    /// The step as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"offered_rps\":{},\"stats\":{}}}",
            json_num(self.offered_rps, 3),
            self.stats.to_json()
        )
    }
}

/// Ramp controller knobs.
#[derive(Debug, Clone, Copy)]
pub struct RampConfig {
    /// First offered rate, requests/second.
    pub start_rps: f64,
    /// Multiplicative rate step (> 1).
    pub growth: f64,
    /// Hard cap on steps, in case the knee never shows.
    pub max_steps: usize,
    /// A step is "over budget" when its p99 exceeds
    /// `knee_factor × baseline p99` (baseline = the lower p99 of the
    /// first two steps, so one inflated first window cannot raise the
    /// budget and mask the knee).
    pub knee_factor: f64,
}

impl Default for RampConfig {
    fn default() -> Self {
        Self {
            start_rps: 100.0,
            growth: 1.3,
            max_steps: 12,
            knee_factor: 4.0,
        }
    }
}

/// The ramp's verdict: every step taken plus the knee — the last step
/// whose p99 stayed within budget (or the final step, when the budget
/// never blew within `max_steps`).
#[derive(Debug, Clone)]
pub struct RampReport {
    /// All measured steps, in ramp order.
    pub steps: Vec<RampStep>,
    /// Index into `steps` of the knee.
    pub knee: usize,
    /// Whether the ramp actually found the elbow (two consecutive
    /// over-budget steps) rather than running out of steps.
    pub kneed: bool,
}

impl RampReport {
    /// The knee step.
    #[must_use]
    pub fn knee_step(&self) -> &RampStep {
        &self.steps[self.knee]
    }

    /// Turn the measured knee into a serving [`AdmissionConfig`]: the
    /// delay bound is `headroom ×` the knee step's p99, and the
    /// cost→seconds conversion assumes the pool retires the knee rate
    /// across `chips` chips at the workload's `mean_cost`
    /// ([`AdmissionConfig::from_knee`]). This is the calibration loop the
    /// serving stack closes: ramp → knee → gate.
    ///
    /// # Panics
    ///
    /// Panics if the knee step is degenerate (non-positive rate or p99)
    /// or the arguments are (see [`AdmissionConfig::from_knee`]).
    #[must_use]
    pub fn admission_config(&self, headroom: f64, mean_cost: f64, chips: usize) -> AdmissionConfig {
        let knee = self.knee_step();
        AdmissionConfig::from_knee(
            knee.offered_rps,
            knee.stats.p99_latency_us,
            headroom,
            mean_cost,
            chips,
        )
    }

    /// The report as a JSON object (knee summary + full step trace).
    #[must_use]
    pub fn to_json(&self) -> String {
        let knee = self.knee_step();
        let steps: Vec<String> = self.steps.iter().map(RampStep::to_json).collect();
        format!(
            "{{\"knee_rps\":{},\"kneed\":{},\"knee_p50_us\":{},\"knee_p99_us\":{},\
             \"steps\":[{}]}}",
            json_num(knee.offered_rps, 3),
            self.kneed,
            json_num(knee.stats.p50_latency_us, 3),
            json_num(knee.stats.p99_latency_us, 3),
            steps.join(",")
        )
    }
}

/// Walk the offered rate up geometrically, calling `measure(rate)` for
/// each step, until p99 blows past the budget on two consecutive steps
/// (or `max_steps` runs out). Returns every step and the knee: the last
/// step that stayed within `knee_factor ×` the baseline p99, where the
/// baseline is the *lower* p99 of the first two steps (one noisy first
/// window must not inflate the budget).
///
/// # Panics
///
/// Panics if the config is degenerate (non-positive start rate, growth
/// ≤ 1, zero steps, knee factor ≤ 1).
pub fn ramp_to_knee<F>(config: &RampConfig, mut measure: F) -> RampReport
where
    F: FnMut(f64) -> ServeStats,
{
    assert!(config.start_rps > 0.0, "start rate must be positive");
    assert!(config.growth > 1.0, "the ramp must actually ramp");
    assert!(config.max_steps > 0, "the ramp needs at least one step");
    assert!(config.knee_factor > 1.0, "the budget must exceed baseline");

    let mut steps: Vec<RampStep> = Vec::new();
    let mut budget_us = f64::INFINITY;
    let mut over_in_a_row = 0usize;
    let mut rate = config.start_rps;
    let mut kneed = false;
    for step in 0..config.max_steps {
        let stats = measure(rate);
        let p99 = stats.p99_latency_us;
        steps.push(RampStep {
            offered_rps: rate,
            stats,
        });
        if step == 0 {
            budget_us = p99 * config.knee_factor;
        } else if step == 1 {
            // The baseline is the lower of the first two lightly loaded
            // windows: a single inflated first window would otherwise
            // raise the budget by knee_factor× and hide the real elbow.
            let first = steps[0].stats.p99_latency_us;
            // f64::min ignores a NaN operand, so an all-shed window
            // (NaN p99) cannot poison the budget either.
            budget_us = first.min(p99) * config.knee_factor;
        }
        if p99 > budget_us {
            over_in_a_row += 1;
            if over_in_a_row >= 2 {
                kneed = true;
                break;
            }
        } else {
            over_in_a_row = 0;
        }
        rate *= config.growth;
    }

    // The knee is the last within-budget step; if even the first step
    // blew (budget == first p99 × factor > first p99, so it cannot),
    // fall back to the last step.
    let knee = steps
        .iter()
        .rposition(|s| s.stats.p99_latency_us <= budget_us)
        .unwrap_or(steps.len() - 1);
    RampReport { steps, knee, kneed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// A flat window: every latency sample at `p99_us`.
    fn flat(p99_us: f64) -> ServeStats {
        let lat = Duration::from_secs_f64(p99_us * 1e-6);
        ServeStats::from_run("synthetic", &[lat; 4], Duration::from_millis(10), vec![])
    }

    /// A synthetic pool: p99 flat at 100 µs below 1000 rps, exploding
    /// ~10× per step above it.
    fn synthetic(rate: f64) -> ServeStats {
        let p99_us = if rate <= 1000.0 {
            100.0
        } else {
            100.0 * (rate / 1000.0).powi(4)
        };
        flat(p99_us)
    }

    #[test]
    fn ramp_finds_the_synthetic_knee() {
        let config = RampConfig {
            start_rps: 250.0,
            growth: 1.5,
            max_steps: 16,
            knee_factor: 4.0,
        };
        let report = ramp_to_knee(&config, synthetic);
        assert!(report.kneed, "the synthetic elbow must be found");
        let knee = report.knee_step();
        assert!(
            knee.offered_rps <= 1300.0,
            "knee rate {} is past the synthetic capacity",
            knee.offered_rps
        );
        assert!(knee.stats.p99_latency_us <= 400.0);
        // The ramp stopped soon after the blow-up, not at max_steps.
        assert!(report.steps.len() < 16);
        let json = report.to_json();
        assert!(json.starts_with("{\"knee_rps\":"));
        assert!(json.contains("\"steps\":["));
    }

    #[test]
    fn knee_converts_to_an_admission_config() {
        let config = RampConfig {
            start_rps: 250.0,
            growth: 1.5,
            max_steps: 16,
            knee_factor: 4.0,
        };
        let report = ramp_to_knee(&config, synthetic);
        let admit = report.admission_config(3.0, 2.0, 4);
        let knee = report.knee_step();
        assert!((admit.max_delay_secs - 3.0 * knee.stats.p99_latency_us * 1e-6).abs() < 1e-12);
        assert!(
            (admit.secs_per_cost - 4.0 / (knee.offered_rps * 2.0)).abs() < 1e-12,
            "secs_per_cost {} for knee {}",
            admit.secs_per_cost,
            knee.offered_rps
        );
    }

    #[test]
    fn ramp_without_a_knee_reports_the_last_step() {
        let config = RampConfig {
            start_rps: 10.0,
            growth: 2.0,
            max_steps: 5,
            knee_factor: 4.0,
        };
        let report = ramp_to_knee(&config, |_| synthetic(100.0));
        assert!(!report.kneed);
        assert_eq!(report.steps.len(), 5);
        assert_eq!(report.knee, 4, "flat latency → knee is the last step");
    }

    #[test]
    fn inflated_first_step_does_not_mask_the_knee() {
        let config = RampConfig {
            start_rps: 250.0,
            growth: 1.5,
            max_steps: 16,
            knee_factor: 4.0,
        };
        let mut calls = 0usize;
        let report = ramp_to_knee(&config, |rate| {
            calls += 1;
            if calls == 1 {
                // A cold-start spike: 20× the true lightly loaded p99.
                // With the budget derived from this window alone the
                // elbow near 1000 rps would sit "within budget" and the
                // ramp would sail far past capacity before stopping.
                flat(2000.0)
            } else {
                synthetic(rate)
            }
        });
        assert!(report.kneed, "the knee must still be found");
        let knee = report.knee_step();
        assert!(
            knee.offered_rps <= 1300.0,
            "knee rate {} is past the synthetic capacity — the spiky \
             first window inflated the budget",
            knee.offered_rps
        );
        assert!(
            knee.stats.p99_latency_us <= 400.0,
            "knee p99 {} exceeds 4× the true baseline",
            knee.stats.p99_latency_us
        );
    }

    #[test]
    fn one_noisy_step_does_not_end_the_ramp() {
        let mut calls = 0usize;
        let report = ramp_to_knee(&RampConfig::default(), |rate| {
            calls += 1;
            // Step 3 alone spikes; the ramp must keep going after it.
            if calls == 3 {
                synthetic(10_000.0)
            } else {
                synthetic(rate.min(500.0))
            }
        });
        assert!(!report.kneed);
        assert_eq!(report.steps.len(), RampConfig::default().max_steps);
    }
}
