//! # `mei-bench` — the reproduction harness
//!
//! One binary per table/figure of the paper's evaluation (§5):
//!
//! | Target | Reproduces |
//! |---|---|
//! | `fig2_breakdown` | Fig 2 — area/power breakdown of the 2×8×2 AD/DA RCS |
//! | `fig3_exp_fit` | Fig 3 — `exp(−x²)` MSE vs hidden size, AD/DA vs MEI (un)weighted |
//! | `table1` | Table 1 — MSE/error/savings on all six benchmarks |
//! | `fig4_methods` | Fig 4 — Digital vs AD/DA vs MEI vs MEI+SAAB per benchmark |
//! | `fig5_noise` | Fig 5 — error under swept process variation / signal fluctuation |
//! | `ablation_loss` | Eq (5) weighted vs Eq (4) uniform loss, all benchmarks |
//! | `ablation_bc` | SAAB `B_C` error-relaxation sweep |
//! | `ablation_bitlength` | MEI at 6/8/10/12-bit interfaces |
//! | `ablation_irdrop` | wire-resistance attenuation + end-to-end accuracy |
//! | `ablation_retention` | conductance drift over deployment time |
//! | `ablation_encoding` | binary vs Gray-coded interfaces (extension) |
//!
//! The in-repo micro-benchmarks (`benches/`, on the [`timing`] runner)
//! cover the substrate hot paths.
//!
//! ## The experimental substrate
//!
//! The paper evaluates on SPICE-level crossbar netlists; this harness runs
//! the behavioural substrate with **continuous HfOx cells disturbed by 2%
//! lognormal write-accuracy noise** ([`EXPERIMENT_WRITE_SIGMA`]) — the
//! program-and-verify tolerance reported for analog RRAM tuning — and
//! reports the mean over [`ExperimentConfig::write_draws`] manufactured
//! "chips". Without such noise the behavioural analog path is *exact* and
//! the AD/DA baseline becomes unrealistically strong (see DESIGN.md).
//!
//! Set `MEI_BENCH_QUICK=1` to shrink every training budget ~4× for smoke
//! runs.
//!
//! Every numeric knob (`MEI_THREADS`, `MEI_BENCH_SECONDS`,
//! `MEI_BENCH_MIN_SPEEDUP`, …) is parsed through [`prng::env`]: an unset
//! variable silently takes the default, but a *set-and-malformed* one
//! prints a warning on stderr instead of being silently ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod ramp;
pub mod timing;

use mei::{AddaConfig, AddaRcs, DigitalAnn, MeiConfig, MeiRcs, Rcs};
use neural::{Dataset, TrainConfig};
use prng::rngs::StdRng;
use prng::SeedableRng;
use rram::{DeviceParams, VariationModel};
use workloads::{all_benchmarks, Workload};

/// Lognormal σ of the write-accuracy (program-and-verify) noise applied to
/// every manufactured RCS in the experiments. 2% is the tight end of
/// published RRAM write-verify tolerances; larger values make single
/// manufactured draws of the small AD/DA networks (e.g. inversek2j's 2×8×2)
/// dominate the reported means.
pub const EXPERIMENT_WRITE_SIGMA: f64 = 0.02;

/// Budgets and seeds shared by every reproduction binary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Training-set size (halved twice in quick mode).
    pub train_samples: usize,
    /// Test-set size.
    pub test_samples: usize,
    /// Backprop epochs for the digital/AD-DA networks.
    pub adda_epochs: usize,
    /// Backprop epochs for MEI networks.
    pub mei_epochs: usize,
    /// Manufactured-chip draws averaged per reported number.
    pub write_draws: usize,
    /// Monte-Carlo trials per robustness point (Fig 5).
    pub noise_trials: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for parallel evaluation (`0` = auto-detect). Set via
    /// `MEI_THREADS`; results are bit-identical for every value.
    pub threads: usize,
}

impl ExperimentConfig {
    /// The default budgets, honouring `MEI_BENCH_QUICK=1`.
    #[must_use]
    pub fn from_env() -> Self {
        let quick = std::env::var("MEI_BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
        let threads = prng::env::parse_or("MEI_THREADS", 0);
        if quick {
            Self {
                train_samples: 1_500,
                test_samples: 300,
                adda_epochs: 60,
                mei_epochs: 80,
                write_draws: 2,
                noise_trials: 20,
                seed: 1,
                threads,
            }
        } else {
            Self {
                train_samples: 6_000,
                test_samples: 1_000,
                adda_epochs: 200,
                mei_epochs: 300,
                write_draws: 5,
                noise_trials: 100,
                seed: 1,
                threads,
            }
        }
    }

    /// The worker pool every parallel evaluation path shares.
    #[must_use]
    pub fn pool(&self) -> runtime::ThreadPool {
        runtime::ThreadPool::new(self.threads)
    }

    /// The experimental device model.
    #[must_use]
    pub fn device(&self) -> DeviceParams {
        DeviceParams::hfox()
    }

    /// Training hyperparameters for the digital / AD-DA path.
    #[must_use]
    pub fn adda_train(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.adda_epochs,
            learning_rate: 0.8,
            lr_decay: 0.995,
            threads: self.threads,
            ..TrainConfig::default()
        }
    }

    /// Training hyperparameters for MEI networks (`wide` widens batches for
    /// the big JPEG output layer).
    #[must_use]
    pub fn mei_train(&self, wide: bool) -> TrainConfig {
        TrainConfig {
            epochs: if wide {
                self.mei_epochs / 3
            } else {
                self.mei_epochs
            },
            learning_rate: if wide { 0.3 } else { 0.5 },
            batch_size: if wide { 32 } else { 16 },
            lr_decay: 0.995,
            threads: self.threads,
            ..TrainConfig::default()
        }
    }
}

/// Table 1 row description: the benchmark plus the architecture sizes the
/// paper reports for it.
pub struct BenchmarkSetup {
    /// The workload.
    pub workload: Box<dyn Workload>,
    /// Hidden size of the MEI network (Table 1's pruned-MEI column).
    pub mei_hidden: usize,
    /// MEI input bits per group — the basic bit-length `B_r = 8`; the
    /// Table 1 `(D·B)` widths are what LSB *pruning* finds afterwards.
    pub mei_in_bits: usize,
    /// MEI output bits per group (`B_r = 8`).
    pub mei_out_bits: usize,
    /// Whether this benchmark's MEI network is large enough to need the
    /// wide-training budget.
    pub wide: bool,
}

/// The six Table 1 rows, trained at the paper's basic bit-length
/// (`B_r = 8` on both sides; §4.3 prunes from there).
#[must_use]
pub fn table1_setups() -> Vec<BenchmarkSetup> {
    let hidden = [16usize, 32, 64, 64, 32, 16];
    all_benchmarks()
        .into_iter()
        .zip(hidden)
        .map(|(workload, mei_hidden)| {
            let wide = workload.name() == "jpeg";
            BenchmarkSetup {
                workload,
                mei_hidden,
                mei_in_bits: 8,
                mei_out_bits: 8,
                wide,
            }
        })
        .collect()
}

/// The three trained architectures for one benchmark.
pub struct Trio {
    /// 32-bit float baseline ("Digital ANN").
    pub digital: DigitalAnn,
    /// Traditional RCS with 8-bit AD/DAs.
    pub adda: AddaRcs,
    /// Merged-interface RCS.
    pub mei: MeiRcs,
}

/// Train the digital / AD-DA / MEI trio for a Table 1 row.
///
/// # Panics
///
/// Panics if any training step fails — a harness bug, not an expected
/// runtime condition.
#[must_use]
pub fn train_trio(setup: &BenchmarkSetup, train: &Dataset, cfg: &ExperimentConfig) -> Trio {
    let (_, h, _) = setup.workload.digital_topology();
    let digital =
        DigitalAnn::train(train, h, &cfg.adda_train(), cfg.seed).expect("digital training");
    let adda = AddaRcs::train(
        train,
        &AddaConfig {
            hidden: h,
            bits: 8,
            device: cfg.device(),
            train: cfg.adda_train(),
            seed: cfg.seed,
            ..AddaConfig::default()
        },
    )
    .expect("AD/DA training");
    let mei = MeiRcs::train(
        train,
        &MeiConfig {
            hidden: setup.mei_hidden,
            in_bits: setup.mei_in_bits,
            out_bits: setup.mei_out_bits,
            device: cfg.device(),
            train: cfg.mei_train(setup.wide),
            seed: cfg.seed,
            ..MeiConfig::default()
        },
    )
    .expect("MEI training");
    Trio { digital, adda, mei }
}

/// Train a SAAB ensemble, relaxing `B_C` (the compared MSB count) one bit at
/// a time if every round gets discarded — the paper's "otherwise, most of
/// the training samples will be either sensitive or hard ... and the
/// performance of SAAB may significantly decrease" failure mode, handled
/// automatically.
///
/// # Panics
///
/// Panics if SAAB cannot be trained even at `B_C = 1` (a harness bug).
#[must_use]
pub fn train_saab_adaptive(
    train: &Dataset,
    mei_cfg: &MeiConfig,
    base: &mei::SaabConfig,
) -> (mei::Saab, usize) {
    let start = base.compare_bits.min(mei_cfg.out_bits).max(1);
    for tolerance in [base.group_error_tolerance, 0.25, 0.5] {
        for bc in (1..=start).rev() {
            let cfg = mei::SaabConfig {
                compare_bits: bc,
                group_error_tolerance: tolerance,
                ..*base
            };
            if let Ok(saab) = mei::Saab::train(train, mei_cfg, &cfg) {
                return (saab, bc);
            }
        }
    }
    panic!("SAAB untrainable even at B_C = 1 with 50% group tolerance");
}

/// Mean of `score` over `draws` manufactured chips: each draw programs the
/// arrays with fresh lognormal write noise, scores, and restores.
pub fn mean_over_write_draws<F>(rcs: &mut dyn Rcs, draws: usize, seed: u64, mut score: F) -> f64
where
    F: FnMut(&dyn Rcs) -> f64,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let variation = VariationModel::process_variation(EXPERIMENT_WRITE_SIGMA);
    let mut total = 0.0;
    for _ in 0..draws.max(1) {
        rcs.disturb(&variation, &mut rng);
        total += score(rcs);
        rcs.restore();
    }
    total / draws.max(1) as f64
}

/// Parallel variant of [`mean_over_write_draws`]: draw `i` disturbs a
/// *clone* of `rcs` under its `(seed, i)` substream, so the result is
/// bit-identical for every thread count (including 1). The per-draw
/// streams differ from the serial variant's single shared stream, so the
/// two functions agree statistically, not bitwise.
pub fn mean_over_write_draws_par<T, F>(
    pool: &runtime::ThreadPool,
    rcs: &T,
    draws: usize,
    seed: u64,
    score: F,
) -> f64
where
    T: Rcs + Clone + Send + Sync,
    F: Fn(&dyn Rcs) -> f64 + Sync,
{
    let variation = VariationModel::process_variation(EXPERIMENT_WRITE_SIGMA);
    let draws = draws.max(1);
    let total = pool.par_reduce(
        &vec![(); draws],
        |i, ()| {
            let mut chip = rcs.clone();
            let mut rng = StdRng::seed_from_u64(prng::substream(seed, i as u64));
            chip.disturb(&variation, &mut rng);
            score(&chip)
        },
        0.0,
        |acc, s| acc + s,
    );
    total / draws as f64
}

/// Whether `MEI_BENCH_FAST=1` smoke mode is on.
#[must_use]
pub fn fast_mode() -> bool {
    std::env::var("MEI_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The per-phase measurement window: `MEI_BENCH_SECONDS` when set and
/// well-formed (malformed values warn on stderr and fall back), else
/// `default_secs`; clamped to `[0.05, 60]` seconds either way.
#[must_use]
pub fn measure_window(default_secs: f64) -> std::time::Duration {
    let secs = prng::env::parse_validated::<f64>(
        "MEI_BENCH_SECONDS",
        "a finite number of seconds > 0",
        |s| s.is_finite() && *s > 0.0,
    )
    .unwrap_or(default_secs);
    std::time::Duration::from_secs_f64(secs.clamp(0.05, 60.0))
}

/// Render an aligned text table.
#[must_use]
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(ToString::to_string).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format a fraction as a percentage string.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mei::evaluate_mse;

    #[test]
    fn setups_cover_all_six_benchmarks() {
        let setups = table1_setups();
        assert_eq!(setups.len(), 6);
        let names: Vec<&str> = setups.iter().map(|s| s.workload.name()).collect();
        assert_eq!(
            names,
            vec!["fft", "inversek2j", "jmeint", "jpeg", "kmeans", "sobel"]
        );
        assert!(setups.iter().all(|s| s.mei_hidden >= 16));
    }

    #[test]
    fn quick_config_is_smaller() {
        std::env::set_var("MEI_BENCH_QUICK", "1");
        let quick = ExperimentConfig::from_env();
        std::env::remove_var("MEI_BENCH_QUICK");
        let full = ExperimentConfig::from_env();
        assert!(quick.train_samples < full.train_samples);
        assert!(quick.mei_epochs < full.mei_epochs);
    }

    #[test]
    fn trio_trains_on_smallest_benchmark() {
        let cfg = ExperimentConfig {
            train_samples: 300,
            test_samples: 100,
            adda_epochs: 10,
            mei_epochs: 10,
            write_draws: 1,
            noise_trials: 2,
            seed: 3,
            threads: 1,
        };
        let setups = table1_setups();
        let sobel = &setups[5];
        let train = sobel.workload.dataset(cfg.train_samples, 1).unwrap();
        let test = sobel.workload.dataset(cfg.test_samples, 2).unwrap();
        let mut trio = train_trio(sobel, &train, &cfg);
        assert!(evaluate_mse(&trio.digital, &test).is_finite());
        let noisy = mean_over_write_draws(&mut trio.mei, 2, 7, |r| evaluate_mse(r, &test));
        assert!(noisy.is_finite() && noisy >= 0.0);
        // The parallel mean is bit-identical for every thread count.
        let par = |threads| {
            mean_over_write_draws_par(&runtime::ThreadPool::new(threads), &trio.mei, 3, 7, |r| {
                evaluate_mse(r, &test)
            })
        };
        let serial = par(1);
        assert!(serial.is_finite() && serial >= 0.0);
        assert_eq!(serial.to_bits(), par(2).to_bits());
        assert_eq!(serial.to_bits(), par(4).to_bits());
    }

    #[test]
    fn table_formatting_aligns() {
        let t = format_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        assert!(t.contains("name"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5463), "54.63%");
    }
}
