//! A tiny strict JSON validator (RFC 8259) for the hand-rolled emitters.
//!
//! The workspace serializes every report by hand (no serde by policy),
//! which historically let two classes of invalid JSON slip out: bare
//! `NaN`/`inf` tokens from `{:.3}` on non-finite floats, and raw control
//! characters or quotes in strings. This module is the guard: a
//! recursive-descent checker that accepts exactly the RFC 8259 grammar —
//! no `NaN`, no `Infinity`, no trailing commas, no unescaped control
//! characters, one top-level value. Every `to_json()` output and every
//! committed `results/BENCH_*.json` is run through it in
//! `crates/bench/tests/json_validity.rs`.
//!
//! It validates; it does not build a document tree — the emitters are
//! tested by shape elsewhere, this only answers "would a real parser
//! accept these bytes?".

/// The shared `meta` header every bench report embeds: the bench name,
/// the root MEI seed the run derived its randomness from, and the
/// host's hardware thread count — enough to tell two committed
/// `results/BENCH_*.json` files apart without diffing their payloads.
/// Emit as `"meta":<this>` as the report's first key; the value is one
/// strict-JSON object (name escaped via [`runtime::json_escape`]).
#[must_use]
pub fn meta(bench: &str, mei_seed: u64) -> String {
    let hw_threads = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    format!(
        "{{\"bench\":\"{}\",\"mei_seed\":{mei_seed},\"hw_threads\":{hw_threads}}}",
        runtime::json_escape(bench)
    )
}

/// Validate that `text` is exactly one well-formed JSON value.
///
/// # Errors
///
/// A human-readable message naming the byte offset and what was expected.
pub fn validate(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(b'{') => object(bytes, pos),
        Some(b'[') => array(bytes, pos),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => number(bytes, pos),
        Some(&b) => Err(format!(
            "unexpected byte 0x{b:02x} at byte {pos} (NaN/Infinity are not JSON)",
            pos = *pos
        )),
        None => Err(format!("unexpected end of input at byte {}", *pos)),
    }
}

fn literal(bytes: &[u8], pos: &mut usize, word: &[u8]) -> Result<(), String> {
    if bytes[*pos..].starts_with(word) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // the '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected a string key at byte {}", *pos));
        }
        string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // the '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // the opening quote
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(());
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(b) if b.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(format!("bad \\u escape at byte {}", *pos)),
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            Some(&b) if b < 0x20 => {
                return Err(format!(
                    "unescaped control byte 0x{b:02x} in string at byte {}",
                    *pos
                ))
            }
            Some(_) => *pos += 1, // UTF-8 continuation bytes pass through
            None => return Err("unterminated string".to_string()),
        }
    }
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: a lone 0, or a nonzero digit run (no leading zeros).
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
        }
        _ => return Err(format!("expected a digit at byte {}", *pos)),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err(format!("expected a fraction digit at byte {}", *pos));
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err(format!("expected an exponent digit at byte {}", *pos));
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    debug_assert!(*pos > start);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::{meta, validate};

    #[test]
    fn meta_header_is_strict_json_with_the_expected_keys() {
        let header = meta("fleet_serving", 42);
        assert!(validate(&header).is_ok(), "meta must validate: {header}");
        assert!(header.starts_with("{\"bench\":\"fleet_serving\""));
        assert!(header.contains("\"mei_seed\":42"));
        assert!(header.contains("\"hw_threads\":"));
        // A hostile bench name is escaped, not emitted raw.
        let hostile = meta("a\"b\\c\nd", 7);
        assert!(validate(&hostile).is_ok(), "escaped name: {hostile}");
    }

    #[test]
    fn accepts_the_grammar() {
        for ok in [
            "null",
            "true",
            "[]",
            "{}",
            "0",
            "-0.5",
            "1e-9",
            "3.125E+4",
            "\"a b\\nc\\u00e9\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"\"}",
            " { \"x\" : [ 1 , 2 ] } ",
        ] {
            assert!(validate(ok).is_ok(), "{ok} must validate");
        }
    }

    #[test]
    fn rejects_non_finite_tokens() {
        for bad in ["NaN", "inf", "-inf", "Infinity", "{\"x\":NaN}", "[1,inf]"] {
            assert!(validate(bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{\"a\" 1}",
            "{a:1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"ctrl\nchar\"",
            "\"bad\\escape\"",
            "{} {}",
            "1 2",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn reports_byte_offsets() {
        let err = validate("{\"a\":NaN}").unwrap_err();
        assert!(err.contains("byte 5"), "got: {err}");
    }
}
