#!/usr/bin/env bash
# Tier-1 verification gate. Everything runs with --offline: this workspace
# has zero registry dependencies by policy (see DESIGN.md "Hermetic build"),
# so CI must prove the build needs no network.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> hermetic-manifest check (no registry dependencies)"
if grep -rn "rand\|proptest\|criterion" --include=Cargo.toml Cargo.toml crates/; then
    echo "ERROR: a manifest references an external registry dependency" >&2
    exit 1
fi

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline (reduced property-test budget)"
MEI_PROP_CASES=32 cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> benches compile"
cargo build --offline -p mei-bench --benches

echo "==> throughput bench smoke (ramp-to-knee, TCP + wire protocol v2)"
# FAST mode shrinks training, windows, and the open-loop ramp; the bench
# drives the same ramp through the TCP front-end over 127.0.0.1, then
# measures v1 strict vs v2 pipelined over the event-driven server and
# writes the standalone v2 report. The report must be strict JSON.
MEI_BENCH_FAST=1 MEI_BENCH_SECONDS=0.5 \
    MEI_BENCH_JSON_V2=target/BENCH_serving_v2_smoke.json \
    cargo run --release --offline -p mei-bench --bin throughput > /dev/null
test -s target/BENCH_serving_v2_smoke.json

echo "==> wire protocol v2 smoke (negotiation, pipelining, worker-count bit identity)"
# The serving_engine suite pins v1 ≡ v2 bits, 1 ≡ 4 event workers, idle-
# connection capacity, and in-band corrupt-frame recovery; json_validity
# re-validates every committed results/BENCH_*.json plus the emitters.
cargo test -q --offline --test serving_engine > /dev/null
cargo test -q --offline -p mei-bench --test json_validity > /dev/null

echo "==> TCP front-end smoke (loopback round trip, in-band errors, shutdown)"
cargo run --release --offline --example serve_tcp > /dev/null

echo "==> drift + admission bench smoke (online recalibration, knee-derived gate)"
# Asserts the host-independent gate invariants: zero sheds at 0.5x the
# measured knee, positive shed rate at 1.5x over it. The frozen-vs-
# recalibrated p99 ratio is reported only (meaningless on 1-core hosts).
MEI_BENCH_FAST=1 MEI_BENCH_SECONDS=0.4 \
    cargo run --release --offline -p mei-bench --bin drift_admission > /dev/null

echo "==> fleet serving smoke (SLA search, forced-quarantine failover, zero loss)"
# FAST mode runs the SLA capacity search on tiny windows and the 2-pool
# failover drill: every chip in the primary pool is broken, the fleet
# must eject it via recalibration, serve with zero lost requests, and
# replay bit-identically. The report must be strict JSON (validated by
# json_validity over committed results/ and checked non-empty here).
MEI_BENCH_FAST=1 MEI_BENCH_SECONDS=0.4 \
    MEI_BENCH_JSON=target/BENCH_fleet_smoke.json \
    cargo run --release --offline -p mei-bench --bin fleet_serving > /dev/null 2>&1
test -s target/BENCH_fleet_smoke.json
cargo test -q --offline -p runtime --test fleet_failover > /dev/null

echo "==> fleet cost smoke (Eq (6)/(7) accounting rollup + budgeted DSE pick)"
# FAST mode trains a tiny MEI chip, rolls fleet accounting up from the
# per-chip cost sheets (the binary asserts every chip is accounted),
# and runs the capacity DSE under an explicit area+power budget. The
# report must be strict JSON and non-empty; the committed full-run
# report is shape-checked by json_validity.
MEI_BENCH_FAST=1 MEI_BENCH_SECONDS=0.25 \
    MEI_BENCH_JSON=target/BENCH_fleet_cost_smoke.json \
    cargo run --release --offline -p mei-bench --bin fleet_cost > /dev/null 2>&1
test -s target/BENCH_fleet_cost_smoke.json

echo "==> kernels bench smoke (packed ≡ scalar bits, GS ≡ CG currents)"
# FAST mode uses 5 samples / 200 µs windows; the binary always asserts
# the correctness contracts (bit-identical packed/scalar/uncached matvec,
# solver agreement) before timing, self-validates its JSON, and skips the
# speedup floors (those are enforced on full runs only).
MEI_BENCH_FAST=1 MEI_BENCH_JSON=target/BENCH_kernels_smoke.json \
    cargo run --release --offline -p mei-bench --bin kernels > /dev/null
test -s target/BENCH_kernels_smoke.json

echo "==> cnn serving bench smoke (tiling identity, wear-aware vs round-robin)"
# FAST mode trains a tiny binarized CNN; the binary always asserts the
# tiled-conv ≡ direct-oracle bitwise identity at 1/2/N tiles BEFORE any
# timing, and that wear-aware placement ends no more write-imbalanced
# than round-robin, then emits strict JSON (committed full-run report is
# shape-checked by json_validity).
MEI_BENCH_FAST=1 MEI_BENCH_SECONDS=0.25 \
    MEI_BENCH_JSON=target/BENCH_cnn_smoke.json \
    cargo run --release --offline -p mei-bench --bin cnn_serving > /dev/null 2>&1
test -s target/BENCH_cnn_smoke.json

echo "==> conv + wear test suites (oracle properties, wear placement, endurance)"
# The conv property suite pins tiled conv ≡ direct oracle bitwise over
# random shapes/tilings and the packed ≡ scalar path; the wear suite pins
# bit-identical wear-aware replay and the load-shift off worn chips.
MEI_PROP_CASES=32 cargo test -q --offline -p crossbar --test properties > /dev/null
cargo test -q --offline -p runtime --test wear > /dev/null
cargo test -q --offline -p rram --lib > /dev/null

echo "==> training throughput bench smoke (1-epoch calls, 0.3-second windows)"
# The 0.9x sanity floor on the 2-thread speedup is enforced by the binary
# only on hosts with >= 2 hardware threads; the bit-identity check across
# thread counts is asserted everywhere.
MEI_BENCH_FAST=1 MEI_BENCH_SECONDS=0.3 MEI_BENCH_MIN_SPEEDUP=0.9 \
    cargo run --release --offline -p mei-bench --bin training_throughput > /dev/null

echo "CI gate passed."
