//! Integration: Gray-coded merged interfaces end to end (the repository's
//! Hamming-cliff extension) on a real benchmark.

use interface::BitCoding;
use mei::{evaluate_mse, mse_scorer, robustness, MeiConfig, MeiRcs, NonIdealFactors};
use neural::TrainConfig;
use workloads::{kmeans::KMeans, Workload};

fn config(coding: BitCoding) -> MeiConfig {
    MeiConfig {
        in_bits: 6,
        out_bits: 6,
        hidden: 24,
        coding,
        train: TrainConfig {
            epochs: 80,
            learning_rate: 0.8,
            ..TrainConfig::default()
        },
        ..MeiConfig::default()
    }
}

#[test]
fn gray_coding_is_at_least_as_accurate_on_kmeans() {
    let w = KMeans::new();
    let train = w.dataset(3_000, 1).unwrap();
    let test = w.dataset(800, 2).unwrap();
    let binary = MeiRcs::train(&train, &config(BitCoding::Binary)).unwrap();
    let gray = MeiRcs::train(&train, &config(BitCoding::Gray)).unwrap();
    let b = evaluate_mse(&binary, &test);
    let g = evaluate_mse(&gray, &test);
    assert!(g <= b * 1.05, "gray {g} vs binary {b}");
}

#[test]
fn gray_coding_survives_noise_and_persistence() {
    let w = KMeans::new();
    let train = w.dataset(2_000, 3).unwrap();
    let test = w.dataset(400, 4).unwrap();
    let mut gray = MeiRcs::train(&train, &config(BitCoding::Gray)).unwrap();

    // Robust under moderate noise.
    let clean = evaluate_mse(&gray, &test);
    let noisy = robustness(
        &mut gray,
        &test,
        &NonIdealFactors::new(0.1, 0.05),
        10,
        7,
        mse_scorer,
    )
    .mean;
    assert!(
        noisy < clean * 5.0 + 0.01,
        "gray noisy {noisy} vs clean {clean}"
    );

    // Round-trips through the persistence format with identical behaviour.
    let reloaded = MeiRcs::from_text(&gray.to_text()).unwrap();
    assert_eq!(reloaded.input_spec().coding(), BitCoding::Gray);
    for (x, _) in test.iter().take(20) {
        assert_eq!(gray.infer(x).unwrap(), reloaded.infer(x).unwrap());
    }
}
