//! Integration: training RCSs from recorded application traces — the
//! original benchmark suite's methodology end to end.

use mei::{evaluate_mse, MeiConfig, MeiRcs};
use neural::TrainConfig;
use workloads::sobel::edge_map;
use workloads::traces;
use workloads::GrayImage;

#[test]
fn mei_trained_on_a_sobel_trace_generalizes_to_new_images() {
    // Record the trace of filtering a few training images…
    let mut inputs = Vec::new();
    let mut targets = Vec::new();
    for seed in 0..6 {
        let img = GrayImage::synthetic(24, 24, seed);
        let t = traces::sobel_trace(&img).unwrap();
        inputs.extend(t.inputs().to_vec());
        targets.extend(t.targets().to_vec());
    }
    let trace = neural::Dataset::new(inputs, targets).unwrap();

    // …train the merged-interface RCS on it…
    let rcs = MeiRcs::train(
        &trace,
        &MeiConfig {
            in_bits: 6,
            out_bits: 6,
            hidden: 16,
            train: TrainConfig {
                epochs: 60,
                learning_rate: 0.8,
                ..TrainConfig::default()
            },
            ..MeiConfig::default()
        },
    )
    .unwrap();

    // …and apply it to an unseen image.
    let unseen = GrayImage::synthetic(24, 24, 99);
    let exact = edge_map(&unseen);
    let approx = workloads::sobel::filter_image(&unseen, |w| rcs.infer(w).unwrap()[0]);
    let diff = exact.mean_abs_diff(&approx);
    assert!(diff < 0.08, "trace-trained MEI image diff {diff}");
}

#[test]
fn kmeans_trace_distances_train_an_accurate_mei() {
    let img = GrayImage::synthetic(20, 20, 5);
    let trace = traces::kmeans_trace(&img, 4, 3).unwrap();
    let rcs = MeiRcs::train(
        &trace,
        &MeiConfig {
            in_bits: 6,
            out_bits: 6,
            hidden: 24,
            train: TrainConfig {
                epochs: 50,
                learning_rate: 0.8,
                ..TrainConfig::default()
            },
            ..MeiConfig::default()
        },
    )
    .unwrap();
    let mse = evaluate_mse(&rcs, &trace);
    assert!(mse < 0.02, "trace-trained kmeans MEI MSE {mse}");
}

#[test]
fn fft_trace_covers_all_butterfly_angles() {
    use workloads::fft::Complex;
    let signal: Vec<Complex> = (0..64)
        .map(|i| Complex::new((i as f64 * 0.3).sin(), 0.0))
        .collect();
    let trace = traces::fft_trace(&signal).unwrap();
    // N/2·log2(N) = 192 queries over dyadic angles in [0, 0.5).
    assert_eq!(trace.len(), 192);
    assert!(trace.iter().all(|(x, _)| (0.0..0.5).contains(&x[0])));
}
