//! Integration: whole-image application pipelines with the crossbar RCS
//! substituted for the hot kernel — the paper's "image diff" experiments.

use mei::{MeiConfig, MeiRcs};
use neural::TrainConfig;
use rram::DeviceParams;
use workloads::jpeg::{compress_image, encode_block};
use workloads::kmeans::{normalized_distance, segment_image, KMeans};
use workloads::sobel::{edge_map, filter_image, Sobel};
use workloads::{GrayImage, Workload};

fn budget() -> TrainConfig {
    TrainConfig {
        epochs: 80,
        learning_rate: 0.8,
        ..TrainConfig::default()
    }
}

fn device() -> DeviceParams {
    DeviceParams::hfox()
}

#[test]
fn sobel_edge_map_through_mei_is_close_to_exact() {
    let w = Sobel::new();
    let train = w.dataset(3_000, 1).unwrap();
    let rcs = MeiRcs::train(
        &train,
        &MeiConfig {
            in_bits: 6,
            out_bits: 6,
            hidden: 16,
            device: device(),
            train: budget(),
            ..MeiConfig::default()
        },
    )
    .unwrap();

    let image = GrayImage::synthetic(24, 24, 3);
    let exact = edge_map(&image);
    let approx = filter_image(&image, |win| rcs.infer(win).unwrap()[0]);
    let diff = exact.mean_abs_diff(&approx);
    assert!(diff < 0.08, "sobel image diff {diff}");
}

#[test]
fn jpeg_block_codec_through_exact_path_is_faithful() {
    // Pipeline sanity independent of training: exact encode through the
    // interface quantization and back.
    let image = GrayImage::synthetic(32, 32, 4);
    let out = compress_image(&image, encode_block);
    let diff = image.mean_abs_diff(&out);
    assert!(diff < 0.06, "exact JPEG roundtrip diff {diff}");
}

#[test]
fn kmeans_segmentation_with_approximate_distance_matches_exact() {
    let w = KMeans::new();
    let train = w.dataset(4_000, 5).unwrap();
    let rcs = MeiRcs::train(
        &train,
        &MeiConfig {
            in_bits: 6,
            out_bits: 6,
            hidden: 20,
            device: device(),
            train: budget(),
            ..MeiConfig::default()
        },
    )
    .unwrap();

    let image = GrayImage::synthetic(20, 20, 6);
    let exact = segment_image(&image, 4, 4, normalized_distance);
    let approx = segment_image(&image, 4, 4, |p, c| {
        rcs.infer(&KMeans::pack(p, c)).unwrap()[0]
    });
    let diff = exact.mean_abs_diff(&approx);
    assert!(diff < 0.15, "kmeans image diff {diff}");
}
