//! Cross-crate integration: the three architectures trained end-to-end on
//! real benchmark kernels, with the orderings the paper reports.

use interface::cost::{AddaTopology, CostModel};
use mei::{evaluate_metric, evaluate_mse, AddaConfig, AddaRcs, DigitalAnn, MeiConfig, MeiRcs};
use neural::TrainConfig;
use rram::DeviceParams;
use workloads::{sobel::Sobel, Workload};

fn budget() -> TrainConfig {
    TrainConfig {
        epochs: 80,
        learning_rate: 0.8,
        ..TrainConfig::default()
    }
}

/// The experimental device: a continuous HfOx cell (write-accuracy noise is
/// exercised separately by the bench harness and robustness tests).
fn device() -> DeviceParams {
    DeviceParams::hfox()
}

#[test]
fn sobel_three_architectures_have_paper_ordering() {
    let w = Sobel::new();
    let train = w.dataset(3_000, 1).unwrap();
    let test = w.dataset(800, 2).unwrap();
    let (i, h, o) = w.digital_topology();

    let digital = DigitalAnn::train(&train, h, &budget(), 0).unwrap();
    let adda = AddaRcs::train(
        &train,
        &AddaConfig {
            hidden: h,
            device: device(),
            train: budget(),
            ..AddaConfig::default()
        },
    )
    .unwrap();
    let mei = MeiRcs::train(
        &train,
        &MeiConfig {
            hidden: 2 * h,
            device: device(),
            train: budget(),
            ..MeiConfig::default()
        },
    )
    .unwrap();

    let digital_mse = evaluate_mse(&digital, &test);
    let adda_mse = evaluate_mse(&adda, &test);
    let mei_mse = evaluate_mse(&mei, &test);

    // The ideal float baseline is the best; the two RCS variants are
    // comparable to each other (within the paper's observed spread).
    assert!(
        digital_mse <= adda_mse * 1.5 + 1e-6,
        "digital {digital_mse} vs adda {adda_mse}"
    );
    assert!(
        digital_mse <= mei_mse * 1.5 + 1e-6,
        "digital {digital_mse} vs mei {mei_mse}"
    );
    assert!(
        mei_mse < 6.0 * adda_mse + 1e-4,
        "MEI must stay comparable: {mei_mse} vs {adda_mse}"
    );
    assert!(mei_mse < 0.02, "absolute MEI quality bound: {mei_mse}");

    // Cost savings as in Table 1: more than half of both area and power.
    let cost = CostModel::dac2015();
    let adda_topo = AddaTopology::new(i, h, o, 8);
    let mei_topo = mei.topology();
    assert!(cost.area_saving(&adda_topo, &mei_topo) > 0.5);
    assert!(cost.power_saving(&adda_topo, &mei_topo) > 0.5);

    // The application metric is finite and small for all three.
    let metric = w.metric();
    for (name, err) in [
        (
            "digital",
            evaluate_metric(&digital, &test, |p, t| metric.evaluate(p, t)),
        ),
        (
            "adda",
            evaluate_metric(&adda, &test, |p, t| metric.evaluate(p, t)),
        ),
        (
            "mei",
            evaluate_metric(&mei, &test, |p, t| metric.evaluate(p, t)),
        ),
    ] {
        assert!(err.is_finite() && err < 0.2, "{name} image diff {err}");
    }
}

#[test]
fn fft_mei_handles_multi_output_groups() {
    let w = workloads::fft::Fft::new();
    let train = w.dataset(3_000, 3).unwrap();
    let test = w.dataset(600, 4).unwrap();

    let mei = MeiRcs::train(
        &train,
        &MeiConfig {
            hidden: 24,
            device: device(),
            train: budget(),
            ..MeiConfig::default()
        },
    )
    .unwrap();
    assert_eq!(mei.topology().layer_sizes(), [8, 24, 16]);
    let mse = evaluate_mse(&mei, &test);
    assert!(mse < 0.03, "fft MEI MSE {mse}");

    // Outputs decode to two analog values in [0, 1].
    let y = mei.infer(&[0.3]).unwrap();
    assert_eq!(y.len(), 2);
    assert!(y.iter().all(|v| (0.0..=1.0).contains(v)));
}

#[test]
fn jmeint_classification_beats_chance_through_the_full_stack() {
    let w = workloads::jmeint::Jmeint::new();
    let train = w.dataset(3_000, 5).unwrap();
    let test = w.dataset(800, 6).unwrap();

    let mei = MeiRcs::train(
        &train,
        &MeiConfig {
            in_bits: 4, // 18 groups × 4 bits = 72 input ports
            out_bits: 1,
            hidden: 48,
            device: device(),
            train: budget(),
            ..MeiConfig::default()
        },
    )
    .unwrap();
    let metric = w.metric();
    let miss = evaluate_metric(&mei, &test, |p, t| metric.evaluate(p, t));
    assert!(
        miss < 0.45,
        "jmeint miss rate {miss} not better than chance"
    );
}
