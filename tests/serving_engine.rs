//! Cross-crate serving-engine equivalences: the acceptance matrix for the
//! policy-driven engine and its TCP front-end.
//!
//! For a fixed root seed and request sequence, the response bits must be
//! identical across every way of driving the same pool:
//!
//! * the legacy `Placement` enum adapters vs the policy objects they
//!   delegate to;
//! * the in-process `Engine` vs the loopback TCP front-end;
//! * a 1-thread server vs an N-thread server (placement sessions are
//!   per-connection, so server parallelism cannot move a request to a
//!   different chip).
//!
//! Latency fields are explicitly *outside* the determinism contract —
//! only chip ids and output bits are compared.

use std::time::Duration;

use mei::{manufacture_boxed_engine, manufacture_chips, MeiConfig, MeiRcs};
use neural::Dataset;
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};
use runtime::net::frame::ItemResponse;
use runtime::net::{
    format_csv, Client, ClientV2, EventServer, EventServerConfig, NetWorkload, Response, Server,
    ServerConfig,
};
use runtime::{
    AdmissionConfig, Chip, ChipPool, DriftProfile, DriftingChip, Engine, LeastLoaded, Placement,
    RoundRobin,
};

const ROOT_SEED: u64 = 42;
const CHIPS: usize = 3;
const WRITE_SIGMA: f64 = 0.05;

fn trained_mei() -> MeiRcs {
    let mut rng = StdRng::seed_from_u64(7);
    let data = Dataset::generate(200, &mut rng, |r| {
        let x: f64 = r.gen();
        (vec![x], vec![(-x * x).exp()])
    })
    .unwrap();
    MeiRcs::train(&data, &MeiConfig::quick_test()).unwrap()
}

fn request_sequence() -> Vec<Vec<f64>> {
    (0..17).map(|i| vec![f64::from(i) / 17.0]).collect()
}

/// Serve the fixed sequence over one TCP connection against a server
/// with the given acceptor-thread count; return `(chip, output)` pairs.
fn serve_over_tcp(mei: &MeiRcs, threads: usize) -> Vec<(usize, Vec<f64>)> {
    let engine = manufacture_boxed_engine(mei, CHIPS, WRITE_SIGMA, ROOT_SEED);
    let server = Server::bind(
        "127.0.0.1:0",
        vec![NetWorkload::new("expfit", 1, engine)],
        ServerConfig {
            threads,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut served = Vec::new();
    for input in request_sequence() {
        match client.request("expfit", &input).expect("round trip") {
            Response::Ok { chip, output, .. } => served.push((chip, output)),
            Response::Error(e) => panic!("request rejected: {e}"),
        }
    }
    drop(client);
    server.shutdown();
    served
}

#[test]
fn enum_adapters_match_their_policy_objects() {
    let mei = trained_mei();
    let inputs = request_sequence();
    for placement in [Placement::RoundRobin, Placement::LeastLoaded] {
        let via_enum =
            manufacture_chips(&mei, CHIPS, WRITE_SIGMA, ROOT_SEED).serve(&inputs, placement);
        let boxed: Box<dyn runtime::PlacementPolicy> = match placement {
            Placement::RoundRobin => Box::new(RoundRobin),
            Placement::LeastLoaded => Box::new(LeastLoaded),
        };
        let engine = Engine::new(manufacture_chips(&mei, CHIPS, WRITE_SIGMA, ROOT_SEED))
            .with_boxed_policy(boxed);
        let via_policy = engine.serve(&inputs);
        assert_eq!(
            via_enum.outputs, via_policy.outputs,
            "{placement:?} adapter and its policy object must serve identical bits"
        );
    }
}

#[test]
fn tcp_front_end_serves_the_same_bits_as_the_in_process_engine() {
    let mei = trained_mei();
    // In-process reference: a streaming session over the boxed engine —
    // the exact code path the server runs per connection.
    let engine = manufacture_boxed_engine(&mei, CHIPS, WRITE_SIGMA, ROOT_SEED);
    let mut session = engine.session();
    let reference: Vec<(usize, Vec<f64>)> = request_sequence()
        .iter()
        .map(|input| {
            let served = engine.serve_one(&mut session, input);
            (served.chip, served.output)
        })
        .collect();

    let over_tcp = serve_over_tcp(&mei, 1);
    assert_eq!(
        reference.len(),
        over_tcp.len(),
        "every request must be answered"
    );
    for (i, (in_proc, wire)) in reference.iter().zip(&over_tcp).enumerate() {
        assert_eq!(in_proc.0, wire.0, "request {i} placed on a different chip");
        assert_eq!(
            format_csv(&in_proc.1),
            format_csv(&wire.1),
            "request {i} bits differ across the wire"
        );
        assert_eq!(in_proc.1, wire.1, "request {i} outputs differ");
    }
}

#[test]
fn server_thread_count_cannot_change_response_bits() {
    let mei = trained_mei();
    let single = serve_over_tcp(&mei, 1);
    let multi = serve_over_tcp(&mei, 4);
    assert_eq!(
        single, multi,
        "per-connection sessions make bits independent of server threads"
    );
}

/// The drifted deployment under test: the same manufactured pool as
/// [`manufacture_boxed_engine`], each chip wrapped in a [`DriftingChip`]
/// under its own `(ROOT_SEED, chip)` substream (exactly what
/// `mei::manufacture_drifting_engine` does, but boxed so the TCP
/// front-end can serve it), aged `windows` windows, with optional
/// admission control.
fn drifted_boxed_engine(
    mei: &MeiRcs,
    windows: u64,
    admission: Option<AdmissionConfig>,
) -> Engine<Box<dyn Chip>> {
    let profile = DriftProfile {
        latency_per_drift: 0.0,
        ..DriftProfile::aggressive()
    };
    let chips: Vec<Box<dyn Chip>> = manufacture_chips(mei, CHIPS, WRITE_SIGMA, ROOT_SEED)
        .into_chips()
        .into_iter()
        .enumerate()
        .map(|(i, chip)| {
            let seed = prng::substream(ROOT_SEED, i as u64);
            Box::new(DriftingChip::new(chip, profile, seed)) as Box<dyn Chip>
        })
        .collect();
    let mut engine = Engine::new(ChipPool::from_chips(chips));
    if let Some(config) = admission {
        engine = engine.with_admission(config);
    }
    for _ in 0..windows {
        engine.advance_window();
    }
    engine
}

/// An admission bound so generous nothing is ever shed: the gate is on
/// the wire path but every request passes it.
fn generous_admission() -> AdmissionConfig {
    AdmissionConfig {
        max_delay_secs: 1e9,
        secs_per_cost: 1.0,
    }
}

/// Serve the fixed sequence over one connection against a *gated*
/// server whose engine drifted two windows; panic on any shed.
fn serve_drifted_gated_over_tcp(mei: &MeiRcs, threads: usize) -> Vec<(usize, Vec<f64>)> {
    let engine = drifted_boxed_engine(mei, 2, Some(generous_admission()));
    let server = Server::bind(
        "127.0.0.1:0",
        vec![NetWorkload::new("expfit", 1, engine)],
        ServerConfig {
            threads,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut served = Vec::new();
    for input in request_sequence() {
        match client.request("expfit", &input).expect("round trip") {
            Response::Ok { chip, output, .. } => served.push((chip, output)),
            Response::Error(e) => panic!("generously gated request shed: {e}"),
        }
    }
    drop(client);
    server.shutdown();
    served
}

#[test]
fn drifted_gated_server_threads_cannot_change_bits() {
    let mei = trained_mei();
    // In-process reference: an ungated twin of the drifted pool, driven
    // through a streaming session — drift is per-window state, so the
    // admission gate and the wire must not perturb the bits.
    let reference = drifted_boxed_engine(&mei, 2, None);
    let mut session = reference.session();
    let in_proc: Vec<(usize, Vec<f64>)> = request_sequence()
        .iter()
        .map(|input| {
            let served = reference.serve_one(&mut session, input);
            (served.chip, served.output)
        })
        .collect();

    let single = serve_drifted_gated_over_tcp(&mei, 1);
    let multi = serve_drifted_gated_over_tcp(&mei, 4);
    assert_eq!(single, multi, "server threads must not move drifted bits");
    assert_eq!(single, in_proc, "the gate must be bit-transparent");
    // Sanity: the pool really is drifted — window 0 serves other bits.
    let fresh = drifted_boxed_engine(&mei, 0, None);
    let mut fresh_session = fresh.session();
    let fresh_bits: Vec<(usize, Vec<f64>)> = request_sequence()
        .iter()
        .map(|input| {
            let served = fresh.serve_one(&mut fresh_session, input);
            (served.chip, served.output)
        })
        .collect();
    assert_ne!(single, fresh_bits, "two windows of drift must show");
}

#[test]
fn admission_decisions_and_bits_replay_identically() {
    let mei = trained_mei();
    // A bound tight enough that simultaneous arrivals overflow it: each
    // admitted unit of cost books 0.1 simulated seconds, and anything
    // estimated to wait more than 0.05 s is shed.
    let tight = AdmissionConfig {
        max_delay_secs: 0.05,
        secs_per_cost: 0.1,
    };
    let engine = drifted_boxed_engine(&mei, 1, Some(tight));
    let inputs = request_sequence();
    let arrivals = vec![Duration::ZERO; inputs.len()];

    let first = engine.serve_open_loop_admitted(&inputs, &arrivals);
    assert!(!first.admitted.is_empty(), "the bound admits a front rank");
    assert!(!first.shed.is_empty(), "simultaneous arrivals must shed");
    assert_eq!(
        first.gate_stats.offered as usize,
        inputs.len(),
        "every request is offered to the gate"
    );

    // Rerun on the same engine and on an identically-built twin: the
    // decision stream and the served bits are pure functions of
    // (inputs, arrivals), so both must replay exactly.
    for rerun in [
        engine.serve_open_loop_admitted(&inputs, &arrivals),
        drifted_boxed_engine(&mei, 1, Some(tight)).serve_open_loop_admitted(&inputs, &arrivals),
    ] {
        assert_eq!(rerun.admitted, first.admitted);
        assert_eq!(rerun.shed, first.shed);
        assert_eq!(rerun.gate_stats, first.gate_stats);
        assert_eq!(
            rerun.outcome.as_ref().map(|o| &o.outputs),
            first.outcome.as_ref().map(|o| &o.outputs),
            "admitted bits must replay"
        );
    }
}

#[test]
fn generous_admission_is_bit_transparent_end_to_end() {
    let mei = trained_mei();
    let engine = drifted_boxed_engine(&mei, 1, Some(generous_admission()));
    let inputs = request_sequence();
    let arrivals = vec![Duration::ZERO; inputs.len()];
    let gated = engine.serve_open_loop_admitted(&inputs, &arrivals);
    assert!(gated.shed.is_empty(), "a generous bound sheds nothing");
    assert_eq!(gated.admitted, (0..inputs.len()).collect::<Vec<_>>());
    let outcome = gated.outcome.expect("everything admitted");
    // The admitted batch is the whole batch: bits equal the ungated serve.
    assert_eq!(outcome.outputs, engine.serve(&inputs).outputs);
}

/// Bind an event-driven server over the standard manufactured pool.
fn bind_event_server(mei: &MeiRcs, workers: usize) -> EventServer {
    let engine = manufacture_boxed_engine(mei, CHIPS, WRITE_SIGMA, ROOT_SEED);
    EventServer::bind(
        "127.0.0.1:0",
        vec![NetWorkload::new("expfit", 1, engine)],
        EventServerConfig {
            workers,
            ..EventServerConfig::default()
        },
    )
    .expect("bind event server")
}

/// Serve the fixed sequence over protocol v2 against an event server
/// with the given worker count, split into deliberately uneven pipelined
/// frames; return `(chip, output)` pairs in request order.
fn serve_over_v2(mei: &MeiRcs, workers: usize, splits: &[usize]) -> Vec<(usize, Vec<f64>)> {
    let inputs = request_sequence();
    assert_eq!(
        splits.iter().sum::<usize>(),
        inputs.len(),
        "splits cover all"
    );
    let server = bind_event_server(mei, workers);
    let mut client = ClientV2::connect(server.addr()).expect("negotiate v2");
    assert_eq!(client.workloads(), ["expfit".to_string()]);
    // Pipeline: all frames go out before any response is read.
    let mut offset = 0usize;
    for &count in splits {
        client
            .send_batch("expfit", &inputs[offset..offset + count])
            .expect("send frame");
        offset += count;
    }
    let mut served = Vec::new();
    for _ in splits {
        for item in client.recv_batch().expect("recv frame") {
            match item {
                ItemResponse::Ok { chip, output, .. } => {
                    served.push((usize::try_from(chip).unwrap(), output));
                }
                other => panic!("ungated request not served: {other:?}"),
            }
        }
    }
    drop(client);
    server.shutdown();
    served
}

#[test]
fn v2_frames_serve_the_same_bits_as_v1_lines() {
    let mei = trained_mei();
    // v1 reference: strict text round trips against the prefork server.
    let v1 = serve_over_tcp(&mei, 1);
    // v2: one pipelined connection, uneven frame boundaries — framing
    // must not leak into placement or payload bits.
    let v2 = serve_over_v2(&mei, 2, &[5, 1, 8, 3]);
    assert_eq!(v1.len(), v2.len(), "every request must be answered");
    for (i, (a, b)) in v1.iter().zip(&v2).enumerate() {
        assert_eq!(a.0, b.0, "request {i} placed on a different chip");
        let a_bits: Vec<u64> = a.1.iter().map(|x| x.to_bits()).collect();
        let b_bits: Vec<u64> = b.1.iter().map(|x| x.to_bits()).collect();
        assert_eq!(
            a_bits, b_bits,
            "request {i} payload bits differ across protocols"
        );
    }
}

#[test]
fn event_server_worker_count_cannot_change_v2_bits() {
    let mei = trained_mei();
    let single = serve_over_v2(&mei, 1, &[4, 4, 4, 5]);
    let multi = serve_over_v2(&mei, 4, &[4, 4, 4, 5]);
    assert_eq!(
        single, multi,
        "per-connection sessions make v2 bits independent of worker count"
    );
}

/// `ClientV2` resolves workload names client-side against the
/// negotiation directory (`ok v2 name0,name1,…`): an unknown name fails
/// before a single byte hits the wire, the error names both the bad
/// workload and the announced directory, and the connection stays fully
/// usable — proof no partial frame leaked out.
#[test]
fn v2_unknown_workload_is_rejected_client_side() {
    let mei = trained_mei();
    let server = bind_event_server(&mei, 1);
    let mut client = ClientV2::connect(server.addr()).expect("negotiate v2");
    let err = client
        .send_batch("nosuch", &[vec![0.5]])
        .expect_err("unknown workload must fail client-side");
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    let message = err.to_string();
    assert!(message.contains("'nosuch'"), "names the culprit: {message}");
    assert!(message.contains("expfit"), "lists the directory: {message}");
    // Nothing was sent, so the very same connection still serves.
    let items = client
        .request_batch("expfit", &[vec![0.5]])
        .expect("connection unharmed");
    assert!(matches!(items[0], ItemResponse::Ok { .. }));
    drop(client);
    server.shutdown();
}

#[test]
fn v1_fallback_over_the_event_server_matches_the_prefork_server() {
    let mei = trained_mei();
    let prefork = serve_over_tcp(&mei, 1);
    let server = bind_event_server(&mei, 2);
    // A v1-only client that has never heard of negotiation.
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut served = Vec::new();
    for input in request_sequence() {
        match client.request("expfit", &input).expect("round trip") {
            Response::Ok { chip, output, .. } => served.push((chip, output)),
            Response::Error(e) => panic!("request rejected: {e}"),
        }
    }
    drop(client);
    server.shutdown();
    assert_eq!(served, prefork, "the v1 fallback must be bit-transparent");
}

#[test]
fn corrupt_v2_frame_answers_in_band_and_spares_siblings() {
    let mei = trained_mei();
    let server = bind_event_server(&mei, 2);
    let mut sibling = ClientV2::connect(server.addr()).expect("sibling connects");
    let mut client = ClientV2::connect(server.addr()).expect("negotiate v2");
    // An unknown frame kind: framed but undecodable → in-band error.
    client
        .send_raw(&[2, 0, 0, 0, 0xEE, 0x00])
        .expect("send garbage");
    match client.recv_frame().expect("error frame") {
        runtime::net::frame::Frame::Error(message) => {
            assert!(message.contains("kind"), "got: {message}");
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    // The same connection keeps serving…
    let after = client
        .request_batch("expfit", &[vec![0.25]])
        .expect("post-corruption batch");
    assert!(matches!(after[0], ItemResponse::Ok { .. }));
    // …and so does the sibling.
    let alive = sibling
        .request_batch("expfit", &[vec![0.5]])
        .expect("sibling batch");
    assert!(matches!(alive[0], ItemResponse::Ok { .. }));
    // An unknown workload id is a whole-frame error, also in-band.
    client
        .send_raw(
            &runtime::net::frame::Frame::Request(runtime::net::frame::RequestFrame::from_inputs(
                7,
                &[vec![0.5]],
            ))
            .encode(),
        )
        .expect("send unknown workload");
    match client.recv_frame().expect("error frame") {
        runtime::net::frame::Frame::Error(message) => {
            assert!(message.contains("unknown workload"), "got: {message}");
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    drop(client);
    drop(sibling);
    server.shutdown();
}

#[test]
fn event_server_holds_hundreds_of_idle_connections() {
    use std::io::{BufRead, BufReader, Write};

    const IDLE: usize = 512;
    let mei = trained_mei();
    let server = bind_event_server(&mei, 2);
    let addr = server.addr();

    // Open all idle connections first and negotiate v2 in bulk — writes
    // first, then reads — so negotiation is pipelined across the fleet
    // rather than one blocking round trip at a time.
    let mut idle: Vec<std::net::TcpStream> = (0..IDLE)
        .map(|i| {
            let stream = std::net::TcpStream::connect(addr)
                .unwrap_or_else(|e| panic!("idle connect {i}: {e}"));
            stream.set_nodelay(true).expect("nodelay");
            stream
        })
        .collect();
    for stream in &mut idle {
        stream.write_all(b"v2\n").expect("negotiate");
    }
    let mut readers: Vec<BufReader<std::net::TcpStream>> = idle
        .iter()
        .map(|s| BufReader::new(s.try_clone().expect("clone")))
        .collect();
    for (i, reader) in readers.iter_mut().enumerate() {
        let mut line = String::new();
        reader.read_line(&mut line).expect("negotiation reply");
        assert!(
            line.starts_with("ok v2 "),
            "idle connection {i} negotiated '{line}'"
        );
    }

    // With the whole fleet parked, one pipelined client still gets the
    // full deterministic service.
    let reference = serve_over_v2(&mei, 2, &[5, 1, 8, 3]);
    let mut active = ClientV2::connect(addr).expect("active client");
    let inputs = request_sequence();
    active.send_batch("expfit", &inputs).expect("send batch");
    let items = active.recv_batch().expect("recv batch");
    assert_eq!(items.len(), inputs.len());
    for (i, (item, want)) in items.iter().zip(&reference).enumerate() {
        match item {
            ItemResponse::Ok { chip, output, .. } => {
                assert_eq!(*chip as usize, want.0, "request {i} chip");
                assert_eq!(output, &want.1, "request {i} bits");
            }
            other => panic!("request {i} not served: {other:?}"),
        }
    }

    // The parked connections are still live afterwards: spot-check a few
    // with a real batch each.
    for index in [0, IDLE / 2, IDLE - 1] {
        let stream = idle[index].try_clone().expect("clone");
        let mut writer = stream;
        let frame = runtime::net::frame::Frame::Request(
            runtime::net::frame::RequestFrame::from_inputs(0, &[vec![0.125]]),
        );
        writer
            .write_all(&frame.encode())
            .expect("send on idle conn");
        // Read the response frame through the buffered reader half.
        let reader = &mut readers[index];
        let mut header = [0u8; 4];
        std::io::Read::read_exact(reader, &mut header).expect("frame header");
        let len = u32::from_le_bytes(header) as usize;
        let mut body = vec![0u8; len];
        std::io::Read::read_exact(reader, &mut body).expect("frame body");
        let mut whole = header.to_vec();
        whole.extend_from_slice(&body);
        match runtime::net::frame::decode(&whole, usize::MAX) {
            runtime::net::frame::DecodeStep::Frame(
                runtime::net::frame::Frame::Response(response),
                _,
            ) => {
                assert_eq!(response.items.len(), 1, "idle connection {index}");
                assert!(matches!(response.items[0], ItemResponse::Ok { .. }));
            }
            other => panic!("idle connection {index}: {other:?}"),
        }
    }

    drop(active);
    drop(readers);
    drop(idle);
    server.shutdown();
}

#[test]
fn batch_and_streaming_assignments_agree_end_to_end() {
    let mei = trained_mei();
    let inputs = request_sequence();
    let engine = manufacture_boxed_engine(&mei, CHIPS, WRITE_SIGMA, ROOT_SEED);
    let lens: Vec<usize> = inputs.iter().map(Vec::len).collect();
    let batch = engine.assignment(&lens);
    let mut session = engine.session();
    let streamed: Vec<usize> = inputs
        .iter()
        .map(|input| engine.serve_one(&mut session, input).chip)
        .collect();
    assert_eq!(batch, streamed);
    // And the pool's enum surface still agrees with both.
    let pool = manufacture_chips(&mei, CHIPS, WRITE_SIGMA, ROOT_SEED);
    assert_eq!(pool.assignment(&lens, Placement::LeastLoaded), batch);
    // Sanity: work is actually spread, not funneled to one chip.
    let mut seen = batch.clone();
    seen.sort_unstable();
    seen.dedup();
    assert!(seen.len() > 1, "a {CHIPS}-chip pool must use several chips");
}
