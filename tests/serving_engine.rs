//! Cross-crate serving-engine equivalences: the acceptance matrix for the
//! policy-driven engine and its TCP front-end.
//!
//! For a fixed root seed and request sequence, the response bits must be
//! identical across every way of driving the same pool:
//!
//! * the legacy `Placement` enum adapters vs the policy objects they
//!   delegate to;
//! * the in-process `Engine` vs the loopback TCP front-end;
//! * a 1-thread server vs an N-thread server (placement sessions are
//!   per-connection, so server parallelism cannot move a request to a
//!   different chip).
//!
//! Latency fields are explicitly *outside* the determinism contract —
//! only chip ids and output bits are compared.

use std::time::Duration;

use mei::{manufacture_boxed_engine, manufacture_chips, MeiConfig, MeiRcs};
use neural::Dataset;
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};
use runtime::net::{format_csv, Client, NetWorkload, Response, Server, ServerConfig};
use runtime::{
    AdmissionConfig, Chip, ChipPool, DriftProfile, DriftingChip, Engine, LeastLoaded, Placement,
    RoundRobin,
};

const ROOT_SEED: u64 = 42;
const CHIPS: usize = 3;
const WRITE_SIGMA: f64 = 0.05;

fn trained_mei() -> MeiRcs {
    let mut rng = StdRng::seed_from_u64(7);
    let data = Dataset::generate(200, &mut rng, |r| {
        let x: f64 = r.gen();
        (vec![x], vec![(-x * x).exp()])
    })
    .unwrap();
    MeiRcs::train(&data, &MeiConfig::quick_test()).unwrap()
}

fn request_sequence() -> Vec<Vec<f64>> {
    (0..17).map(|i| vec![f64::from(i) / 17.0]).collect()
}

/// Serve the fixed sequence over one TCP connection against a server
/// with the given acceptor-thread count; return `(chip, output)` pairs.
fn serve_over_tcp(mei: &MeiRcs, threads: usize) -> Vec<(usize, Vec<f64>)> {
    let engine = manufacture_boxed_engine(mei, CHIPS, WRITE_SIGMA, ROOT_SEED);
    let server = Server::bind(
        "127.0.0.1:0",
        vec![NetWorkload::new("expfit", 1, engine)],
        ServerConfig {
            threads,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut served = Vec::new();
    for input in request_sequence() {
        match client.request("expfit", &input).expect("round trip") {
            Response::Ok { chip, output, .. } => served.push((chip, output)),
            Response::Error(e) => panic!("request rejected: {e}"),
        }
    }
    drop(client);
    server.shutdown();
    served
}

#[test]
fn enum_adapters_match_their_policy_objects() {
    let mei = trained_mei();
    let inputs = request_sequence();
    for placement in [Placement::RoundRobin, Placement::LeastLoaded] {
        let via_enum =
            manufacture_chips(&mei, CHIPS, WRITE_SIGMA, ROOT_SEED).serve(&inputs, placement);
        let boxed: Box<dyn runtime::PlacementPolicy> = match placement {
            Placement::RoundRobin => Box::new(RoundRobin),
            Placement::LeastLoaded => Box::new(LeastLoaded),
        };
        let engine = Engine::new(manufacture_chips(&mei, CHIPS, WRITE_SIGMA, ROOT_SEED))
            .with_boxed_policy(boxed);
        let via_policy = engine.serve(&inputs);
        assert_eq!(
            via_enum.outputs, via_policy.outputs,
            "{placement:?} adapter and its policy object must serve identical bits"
        );
    }
}

#[test]
fn tcp_front_end_serves_the_same_bits_as_the_in_process_engine() {
    let mei = trained_mei();
    // In-process reference: a streaming session over the boxed engine —
    // the exact code path the server runs per connection.
    let engine = manufacture_boxed_engine(&mei, CHIPS, WRITE_SIGMA, ROOT_SEED);
    let mut session = engine.session();
    let reference: Vec<(usize, Vec<f64>)> = request_sequence()
        .iter()
        .map(|input| {
            let served = engine.serve_one(&mut session, input);
            (served.chip, served.output)
        })
        .collect();

    let over_tcp = serve_over_tcp(&mei, 1);
    assert_eq!(
        reference.len(),
        over_tcp.len(),
        "every request must be answered"
    );
    for (i, (in_proc, wire)) in reference.iter().zip(&over_tcp).enumerate() {
        assert_eq!(in_proc.0, wire.0, "request {i} placed on a different chip");
        assert_eq!(
            format_csv(&in_proc.1),
            format_csv(&wire.1),
            "request {i} bits differ across the wire"
        );
        assert_eq!(in_proc.1, wire.1, "request {i} outputs differ");
    }
}

#[test]
fn server_thread_count_cannot_change_response_bits() {
    let mei = trained_mei();
    let single = serve_over_tcp(&mei, 1);
    let multi = serve_over_tcp(&mei, 4);
    assert_eq!(
        single, multi,
        "per-connection sessions make bits independent of server threads"
    );
}

/// The drifted deployment under test: the same manufactured pool as
/// [`manufacture_boxed_engine`], each chip wrapped in a [`DriftingChip`]
/// under its own `(ROOT_SEED, chip)` substream (exactly what
/// `mei::manufacture_drifting_engine` does, but boxed so the TCP
/// front-end can serve it), aged `windows` windows, with optional
/// admission control.
fn drifted_boxed_engine(
    mei: &MeiRcs,
    windows: u64,
    admission: Option<AdmissionConfig>,
) -> Engine<Box<dyn Chip>> {
    let profile = DriftProfile {
        latency_per_drift: 0.0,
        ..DriftProfile::aggressive()
    };
    let chips: Vec<Box<dyn Chip>> = manufacture_chips(mei, CHIPS, WRITE_SIGMA, ROOT_SEED)
        .into_chips()
        .into_iter()
        .enumerate()
        .map(|(i, chip)| {
            let seed = prng::substream(ROOT_SEED, i as u64);
            Box::new(DriftingChip::new(chip, profile, seed)) as Box<dyn Chip>
        })
        .collect();
    let mut engine = Engine::new(ChipPool::from_chips(chips));
    if let Some(config) = admission {
        engine = engine.with_admission(config);
    }
    for _ in 0..windows {
        engine.advance_window();
    }
    engine
}

/// An admission bound so generous nothing is ever shed: the gate is on
/// the wire path but every request passes it.
fn generous_admission() -> AdmissionConfig {
    AdmissionConfig {
        max_delay_secs: 1e9,
        secs_per_cost: 1.0,
    }
}

/// Serve the fixed sequence over one connection against a *gated*
/// server whose engine drifted two windows; panic on any shed.
fn serve_drifted_gated_over_tcp(mei: &MeiRcs, threads: usize) -> Vec<(usize, Vec<f64>)> {
    let engine = drifted_boxed_engine(mei, 2, Some(generous_admission()));
    let server = Server::bind(
        "127.0.0.1:0",
        vec![NetWorkload::new("expfit", 1, engine)],
        ServerConfig {
            threads,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut served = Vec::new();
    for input in request_sequence() {
        match client.request("expfit", &input).expect("round trip") {
            Response::Ok { chip, output, .. } => served.push((chip, output)),
            Response::Error(e) => panic!("generously gated request shed: {e}"),
        }
    }
    drop(client);
    server.shutdown();
    served
}

#[test]
fn drifted_gated_server_threads_cannot_change_bits() {
    let mei = trained_mei();
    // In-process reference: an ungated twin of the drifted pool, driven
    // through a streaming session — drift is per-window state, so the
    // admission gate and the wire must not perturb the bits.
    let reference = drifted_boxed_engine(&mei, 2, None);
    let mut session = reference.session();
    let in_proc: Vec<(usize, Vec<f64>)> = request_sequence()
        .iter()
        .map(|input| {
            let served = reference.serve_one(&mut session, input);
            (served.chip, served.output)
        })
        .collect();

    let single = serve_drifted_gated_over_tcp(&mei, 1);
    let multi = serve_drifted_gated_over_tcp(&mei, 4);
    assert_eq!(single, multi, "server threads must not move drifted bits");
    assert_eq!(single, in_proc, "the gate must be bit-transparent");
    // Sanity: the pool really is drifted — window 0 serves other bits.
    let fresh = drifted_boxed_engine(&mei, 0, None);
    let mut fresh_session = fresh.session();
    let fresh_bits: Vec<(usize, Vec<f64>)> = request_sequence()
        .iter()
        .map(|input| {
            let served = fresh.serve_one(&mut fresh_session, input);
            (served.chip, served.output)
        })
        .collect();
    assert_ne!(single, fresh_bits, "two windows of drift must show");
}

#[test]
fn admission_decisions_and_bits_replay_identically() {
    let mei = trained_mei();
    // A bound tight enough that simultaneous arrivals overflow it: each
    // admitted unit of cost books 0.1 simulated seconds, and anything
    // estimated to wait more than 0.05 s is shed.
    let tight = AdmissionConfig {
        max_delay_secs: 0.05,
        secs_per_cost: 0.1,
    };
    let engine = drifted_boxed_engine(&mei, 1, Some(tight));
    let inputs = request_sequence();
    let arrivals = vec![Duration::ZERO; inputs.len()];

    let first = engine.serve_open_loop_admitted(&inputs, &arrivals);
    assert!(!first.admitted.is_empty(), "the bound admits a front rank");
    assert!(!first.shed.is_empty(), "simultaneous arrivals must shed");
    assert_eq!(
        first.gate_stats.offered as usize,
        inputs.len(),
        "every request is offered to the gate"
    );

    // Rerun on the same engine and on an identically-built twin: the
    // decision stream and the served bits are pure functions of
    // (inputs, arrivals), so both must replay exactly.
    for rerun in [
        engine.serve_open_loop_admitted(&inputs, &arrivals),
        drifted_boxed_engine(&mei, 1, Some(tight)).serve_open_loop_admitted(&inputs, &arrivals),
    ] {
        assert_eq!(rerun.admitted, first.admitted);
        assert_eq!(rerun.shed, first.shed);
        assert_eq!(rerun.gate_stats, first.gate_stats);
        assert_eq!(
            rerun.outcome.as_ref().map(|o| &o.outputs),
            first.outcome.as_ref().map(|o| &o.outputs),
            "admitted bits must replay"
        );
    }
}

#[test]
fn generous_admission_is_bit_transparent_end_to_end() {
    let mei = trained_mei();
    let engine = drifted_boxed_engine(&mei, 1, Some(generous_admission()));
    let inputs = request_sequence();
    let arrivals = vec![Duration::ZERO; inputs.len()];
    let gated = engine.serve_open_loop_admitted(&inputs, &arrivals);
    assert!(gated.shed.is_empty(), "a generous bound sheds nothing");
    assert_eq!(gated.admitted, (0..inputs.len()).collect::<Vec<_>>());
    let outcome = gated.outcome.expect("everything admitted");
    // The admitted batch is the whole batch: bits equal the ungated serve.
    assert_eq!(outcome.outputs, engine.serve(&inputs).outputs);
}

#[test]
fn batch_and_streaming_assignments_agree_end_to_end() {
    let mei = trained_mei();
    let inputs = request_sequence();
    let engine = manufacture_boxed_engine(&mei, CHIPS, WRITE_SIGMA, ROOT_SEED);
    let lens: Vec<usize> = inputs.iter().map(Vec::len).collect();
    let batch = engine.assignment(&lens);
    let mut session = engine.session();
    let streamed: Vec<usize> = inputs
        .iter()
        .map(|input| engine.serve_one(&mut session, input).chip)
        .collect();
    assert_eq!(batch, streamed);
    // And the pool's enum surface still agrees with both.
    let pool = manufacture_chips(&mei, CHIPS, WRITE_SIGMA, ROOT_SEED);
    assert_eq!(pool.assignment(&lens, Placement::LeastLoaded), batch);
    // Sanity: work is actually spread, not funneled to one chip.
    let mut seen = batch.clone();
    seen.sort_unstable();
    seen.dedup();
    assert!(seen.len() > 1, "a {CHIPS}-chip pool must use several chips");
}
