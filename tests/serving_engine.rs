//! Cross-crate serving-engine equivalences: the acceptance matrix for the
//! policy-driven engine and its TCP front-end.
//!
//! For a fixed root seed and request sequence, the response bits must be
//! identical across every way of driving the same pool:
//!
//! * the legacy `Placement` enum adapters vs the policy objects they
//!   delegate to;
//! * the in-process `Engine` vs the loopback TCP front-end;
//! * a 1-thread server vs an N-thread server (placement sessions are
//!   per-connection, so server parallelism cannot move a request to a
//!   different chip).
//!
//! Latency fields are explicitly *outside* the determinism contract —
//! only chip ids and output bits are compared.

use mei::{manufacture_boxed_engine, manufacture_chips, MeiConfig, MeiRcs};
use neural::Dataset;
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};
use runtime::net::{format_csv, Client, NetWorkload, Response, Server, ServerConfig};
use runtime::{Engine, LeastLoaded, Placement, RoundRobin};

const ROOT_SEED: u64 = 42;
const CHIPS: usize = 3;
const WRITE_SIGMA: f64 = 0.05;

fn trained_mei() -> MeiRcs {
    let mut rng = StdRng::seed_from_u64(7);
    let data = Dataset::generate(200, &mut rng, |r| {
        let x: f64 = r.gen();
        (vec![x], vec![(-x * x).exp()])
    })
    .unwrap();
    MeiRcs::train(&data, &MeiConfig::quick_test()).unwrap()
}

fn request_sequence() -> Vec<Vec<f64>> {
    (0..17).map(|i| vec![f64::from(i) / 17.0]).collect()
}

/// Serve the fixed sequence over one TCP connection against a server
/// with the given acceptor-thread count; return `(chip, output)` pairs.
fn serve_over_tcp(mei: &MeiRcs, threads: usize) -> Vec<(usize, Vec<f64>)> {
    let engine = manufacture_boxed_engine(mei, CHIPS, WRITE_SIGMA, ROOT_SEED);
    let server = Server::bind(
        "127.0.0.1:0",
        vec![NetWorkload::new("expfit", 1, engine)],
        ServerConfig {
            threads,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut served = Vec::new();
    for input in request_sequence() {
        match client.request("expfit", &input).expect("round trip") {
            Response::Ok { chip, output, .. } => served.push((chip, output)),
            Response::Error(e) => panic!("request rejected: {e}"),
        }
    }
    drop(client);
    server.shutdown();
    served
}

#[test]
fn enum_adapters_match_their_policy_objects() {
    let mei = trained_mei();
    let inputs = request_sequence();
    for placement in [Placement::RoundRobin, Placement::LeastLoaded] {
        let via_enum =
            manufacture_chips(&mei, CHIPS, WRITE_SIGMA, ROOT_SEED).serve(&inputs, placement);
        let boxed: Box<dyn runtime::PlacementPolicy> = match placement {
            Placement::RoundRobin => Box::new(RoundRobin),
            Placement::LeastLoaded => Box::new(LeastLoaded),
        };
        let engine = Engine::new(manufacture_chips(&mei, CHIPS, WRITE_SIGMA, ROOT_SEED))
            .with_boxed_policy(boxed);
        let via_policy = engine.serve(&inputs);
        assert_eq!(
            via_enum.outputs, via_policy.outputs,
            "{placement:?} adapter and its policy object must serve identical bits"
        );
    }
}

#[test]
fn tcp_front_end_serves_the_same_bits_as_the_in_process_engine() {
    let mei = trained_mei();
    // In-process reference: a streaming session over the boxed engine —
    // the exact code path the server runs per connection.
    let engine = manufacture_boxed_engine(&mei, CHIPS, WRITE_SIGMA, ROOT_SEED);
    let mut session = engine.session();
    let reference: Vec<(usize, Vec<f64>)> = request_sequence()
        .iter()
        .map(|input| {
            let served = engine.serve_one(&mut session, input);
            (served.chip, served.output)
        })
        .collect();

    let over_tcp = serve_over_tcp(&mei, 1);
    assert_eq!(
        reference.len(),
        over_tcp.len(),
        "every request must be answered"
    );
    for (i, (in_proc, wire)) in reference.iter().zip(&over_tcp).enumerate() {
        assert_eq!(in_proc.0, wire.0, "request {i} placed on a different chip");
        assert_eq!(
            format_csv(&in_proc.1),
            format_csv(&wire.1),
            "request {i} bits differ across the wire"
        );
        assert_eq!(in_proc.1, wire.1, "request {i} outputs differ");
    }
}

#[test]
fn server_thread_count_cannot_change_response_bits() {
    let mei = trained_mei();
    let single = serve_over_tcp(&mei, 1);
    let multi = serve_over_tcp(&mei, 4);
    assert_eq!(
        single, multi,
        "per-connection sessions make bits independent of server threads"
    );
}

#[test]
fn batch_and_streaming_assignments_agree_end_to_end() {
    let mei = trained_mei();
    let inputs = request_sequence();
    let engine = manufacture_boxed_engine(&mei, CHIPS, WRITE_SIGMA, ROOT_SEED);
    let lens: Vec<usize> = inputs.iter().map(Vec::len).collect();
    let batch = engine.assignment(&lens);
    let mut session = engine.session();
    let streamed: Vec<usize> = inputs
        .iter()
        .map(|input| engine.serve_one(&mut session, input).chip)
        .collect();
    assert_eq!(batch, streamed);
    // And the pool's enum surface still agrees with both.
    let pool = manufacture_chips(&mei, CHIPS, WRITE_SIGMA, ROOT_SEED);
    assert_eq!(pool.assignment(&lens, Placement::LeastLoaded), batch);
    // Sanity: work is actually spread, not funneled to one chip.
    let mut seen = batch.clone();
    seen.sort_unstable();
    seen.dedup();
    assert!(seen.len() > 1, "a {CHIPS}-chip pool must use several chips");
}
