//! Cross-run determinism: with every seed pinned, two *independent* runs —
//! separate dataset construction, separate training, separate ensembles —
//! must agree bit-for-bit.
//!
//! This is the contract the hermetic in-repo PRNG exists to provide: its
//! output streams are frozen by reference-vector tests, so any identical
//! seed reproduces the exact same trained system on any machine, forever.
//! (Shortest-round-trip `{:?}` float formatting makes string equality of
//! the serialized systems equivalent to bit equality of the weights.)

use mei::{MeiConfig, MeiRcs, Saab, SaabConfig};
use neural::{Dataset, MlpBuilder, TrainConfig, Trainer};
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};

fn expfit(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::generate(n, &mut rng, |r| {
        let x: f64 = r.gen();
        (vec![x], vec![(-x * x).exp()])
    })
    .unwrap()
}

fn mei_config() -> MeiConfig {
    MeiConfig {
        in_bits: 6,
        out_bits: 6,
        hidden: 12,
        seed: 99,
        train: TrainConfig {
            epochs: 40,
            learning_rate: 0.8,
            ..TrainConfig::default()
        },
        ..MeiConfig::default()
    }
}

/// The per-epoch loss trajectory of MEI-style training is bit-identical
/// across two runs that share nothing but seeds.
#[test]
fn training_trajectory_is_bit_identical_across_runs() {
    let run = || {
        let data = expfit(400, 21);
        let mut net = MlpBuilder::new(&[1, 12, 1]).seed(99).build();
        let trainer = Trainer::new(TrainConfig {
            epochs: 60,
            learning_rate: 0.8,
            ..TrainConfig::default()
        });
        let report = trainer.train(&mut net, &data);
        (report.loss_history, net)
    };
    let (hist_a, net_a) = run();
    let (hist_b, net_b) = run();
    assert_eq!(hist_a.len(), hist_b.len());
    for (e, (a, b)) in hist_a.iter().zip(&hist_b).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "loss diverged at epoch {e}: {a} vs {b}"
        );
    }
    assert_eq!(net_a, net_b, "trained networks differ");
}

/// A full MEI RCS — encoder, trained network, analog mapping — serializes
/// identically across two independent runs with the same seeds.
#[test]
fn mei_rcs_is_bit_identical_across_runs() {
    let run = || {
        let data = expfit(400, 22);
        MeiRcs::train(&data, &mei_config()).unwrap().to_text()
    };
    assert_eq!(run(), run());
}

/// SAAB boosting — weighted resampling, noisy scoring, ensemble voting —
/// reproduces the exact ensemble: same per-learner weights (α), same
/// learner networks, same inference results.
#[test]
fn saab_ensemble_is_bit_identical_across_runs() {
    let run = || {
        let data = expfit(400, 23);
        let saab = Saab::train(
            &data,
            &mei_config(),
            &SaabConfig {
                rounds: 3,
                compare_bits: 4,
                ..SaabConfig::default()
            },
        )
        .unwrap();
        let alphas: Vec<u64> = saab.alphas().iter().map(|a| a.to_bits()).collect();
        let learners: Vec<String> = saab.learners().iter().map(|l| l.to_text()).collect();
        let probe: Vec<u64> = [0.05, 0.35, 0.65, 0.95]
            .iter()
            .flat_map(|&x| saab.infer(&[x]).unwrap())
            .map(f64::to_bits)
            .collect();
        (alphas, learners, probe)
    };
    let (alphas_a, learners_a, probe_a) = run();
    let (alphas_b, learners_b, probe_b) = run();
    assert_eq!(alphas_a, alphas_b, "ensemble weights differ");
    assert_eq!(learners_a, learners_b, "learner networks differ");
    assert_eq!(probe_a, probe_b, "ensemble inference differs");
}
