//! Integration: the Algorithm 2 design space exploration end-to-end on a
//! real benchmark.

use interface::cost::{AddaTopology, CostModel};
use mei::dse::{explore, DseConfig, HiddenGrowth};
use mei::{MeiConfig, NonIdealFactors};
use neural::TrainConfig;
use rram::DeviceParams;
use workloads::{sobel::Sobel, Workload};

#[test]
fn dse_on_sobel_finds_a_cost_saving_design() {
    let w = Sobel::new();
    let train = w.dataset(2_500, 1).unwrap();
    let test = w.dataset(600, 2).unwrap();
    let (i, h, o) = w.digital_topology();
    let adda = AddaTopology::new(i, h, o, 8);

    let mei_base = MeiConfig {
        in_bits: 6,
        out_bits: 6,
        device: DeviceParams::hfox(),
        train: TrainConfig {
            epochs: 60,
            learning_rate: 0.8,
            ..TrainConfig::default()
        },
        ..MeiConfig::default()
    };
    let cfg = DseConfig {
        initial_hidden: 8,
        growth: HiddenGrowth::Exponential,
        max_hidden: 32,
        max_error: 0.02,
        max_noisy_error: 0.05,
        factors: NonIdealFactors::new(0.05, 0.02),
        robustness_trials: 3,
        compare_bits: 4,
        prune: true,
        ..DseConfig::default()
    };
    let result = explore(&train, &test, &adda, &mei_base, &cfg, &CostModel::dac2015()).unwrap();

    assert!(
        result.feasible,
        "DSE should satisfy the requirements; log: {:?}",
        result.log
    );
    assert!(result.error <= cfg.max_error);
    assert!(result.noisy_error <= cfg.max_noisy_error);
    // The whole point: the selected design still costs less than the AD/DA
    // architecture it replaces.
    assert!(
        result.area_saving > 0.0,
        "area saving {}",
        result.area_saving
    );
    assert!(
        result.power_saving > 0.0,
        "power saving {}",
        result.power_saving
    );
    assert!(result.k_max >= 1);
    // The log narrates the search.
    assert!(result.log.iter().any(|l| l.contains("hidden search")));
    assert!(result.log.iter().any(|l| l.contains("K_max")));
}

#[test]
fn dse_respects_the_ensemble_budget() {
    let w = Sobel::new();
    let train = w.dataset(1_500, 3).unwrap();
    let test = w.dataset(400, 4).unwrap();
    let adda = AddaTopology::new(9, 8, 1, 8);

    let mei_base = MeiConfig {
        in_bits: 6,
        out_bits: 6,
        device: DeviceParams::hfox(),
        train: TrainConfig {
            epochs: 40,
            learning_rate: 0.8,
            ..TrainConfig::default()
        },
        ..MeiConfig::default()
    };
    // Force the SAAB branch with an unreachable clean-error requirement but
    // reachable noisy one — then check K never exceeds K_max.
    let cfg = DseConfig {
        initial_hidden: 8,
        max_hidden: 16,
        max_error: 1e-9,
        max_noisy_error: 1e-9,
        robustness_trials: 2,
        compare_bits: 4,
        prune: false,
        ..DseConfig::default()
    };
    let result = explore(&train, &test, &adda, &mei_base, &cfg, &CostModel::dac2015()).unwrap();
    assert!(!result.feasible);
    assert!(result.design.learner_count() <= result.k_max.max(1));
    assert!(result.log.iter().any(|l| l.contains("Mission Impossible")));
}
