//! Integration: SAAB boosting gains and the Fig 5 robustness orderings.

use crossbar::SignalFluctuation;
use mei::{
    evaluate_mse, mse_scorer, robustness, AddaConfig, AddaRcs, MeiConfig, MeiRcs, NonIdealFactors,
    Saab, SaabConfig,
};
use neural::{Dataset, TrainConfig};
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};
use rram::DeviceParams;

fn budget() -> TrainConfig {
    TrainConfig {
        epochs: 80,
        learning_rate: 0.8,
        ..TrainConfig::default()
    }
}

fn device() -> DeviceParams {
    DeviceParams::hfox()
}

fn expfit(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::generate(n, &mut rng, |r| {
        let x: f64 = r.gen();
        (vec![x], vec![(-x * x).exp()])
    })
    .unwrap()
}

#[test]
fn saab_improves_on_a_single_learner() {
    let train = expfit(2_000, 1);
    let test = expfit(600, 2);
    let mei_cfg = MeiConfig {
        in_bits: 6,
        out_bits: 6,
        hidden: 16,
        device: device(),
        train: budget(),
        ..MeiConfig::default()
    };
    let single = MeiRcs::train(&train, &mei_cfg).unwrap();
    let saab = Saab::train(
        &train,
        &mei_cfg,
        &SaabConfig {
            rounds: 3,
            compare_bits: 4,
            ..SaabConfig::default()
        },
    )
    .unwrap();

    let single_mse = evaluate_mse(&single, &test);
    let saab_mse = evaluate_mse(&saab, &test);
    // Boosting must not lose accuracy, and typically gains (paper: +5.76%
    // accuracy on average).
    assert!(
        saab_mse <= single_mse * 1.10 + 1e-6,
        "SAAB {saab_mse} vs single {single_mse}"
    );
}

#[test]
fn mei_is_more_robust_to_signal_fluctuation_than_adda() {
    // The paper's §5.3 headline: "as MEI only requires discrete inputs of
    // 0/1 signals, the proposed architecture demonstrates much better
    // robustness to the signal fluctuation than the traditional method".
    //
    // On the behavioural substrate the claim must be read *relative to each
    // system's clean error*: the noiseless analog path is exact, so the
    // AD/DA baseline's clean MSE is quantization-limited (~1e-5 here) and
    // tiny absolute degradations still swamp MEI's, whose clean MSE carries
    // real approximation error. What the architecture controls is the
    // blow-up factor under fluctuation — AD/DA inflates ~25× at σ = 0.08
    // while MEI's comparator-restored bits hold it near 1× (margin > 10×
    // across seeds; see EXPERIMENTS.md "Expected divergences").
    let train = expfit(2_500, 3);
    let test = expfit(400, 4);

    let mut adda = AddaRcs::train(
        &train,
        &AddaConfig {
            hidden: 8,
            device: device(),
            train: budget(),
            ..AddaConfig::default()
        },
    )
    .unwrap();
    let mut mei = MeiRcs::train(
        &train,
        &MeiConfig {
            hidden: 16,
            device: device(),
            train: budget(),
            ..MeiConfig::default()
        },
    )
    .unwrap();

    let clean_adda = evaluate_mse(&adda, &test);
    let clean_mei = evaluate_mse(&mei, &test);

    let sigma = NonIdealFactors::signal_only(0.08);
    let noisy_adda = robustness(&mut adda, &test, &sigma, 25, 7, mse_scorer).mean;
    let noisy_mei = robustness(&mut mei, &test, &sigma, 25, 7, mse_scorer).mean;

    let blowup_adda = noisy_adda / clean_adda;
    let blowup_mei = noisy_mei / clean_mei;
    assert!(
        blowup_mei * 4.0 < blowup_adda,
        "MEI error blow-up {blowup_mei:.2}x should be well below AD/DA {blowup_adda:.2}x"
    );
}

#[test]
fn process_variation_degrades_both_architectures_monotonically() {
    let train = expfit(1_500, 5);
    let test = expfit(300, 6);
    let mut mei = MeiRcs::train(
        &train,
        &MeiConfig {
            hidden: 16,
            device: device(),
            train: budget(),
            ..MeiConfig::default()
        },
    )
    .unwrap();
    let clean = evaluate_mse(&mei, &test);
    let at = |sigma: f64, rcs: &mut MeiRcs| {
        robustness(
            rcs,
            &test,
            &NonIdealFactors::process_only(sigma),
            12,
            9,
            mse_scorer,
        )
        .mean
    };
    let low = at(0.05, &mut mei);
    let high = at(0.4, &mut mei);
    assert!(clean <= low + 1e-9, "clean {clean} vs σ=0.05 {low}");
    assert!(low < high, "σ=0.05 {low} vs σ=0.4 {high}");
}

#[test]
fn saab_with_noisy_scoring_is_robust_under_noise() {
    // Training SAAB with the σ it will face (line 6 of Algorithm 1) should
    // hold up at least as well as a single learner under that σ.
    let train = expfit(1_500, 8);
    let test = expfit(300, 9);
    let sigma = NonIdealFactors::new(0.15, 0.05);
    let mei_cfg = MeiConfig {
        in_bits: 6,
        out_bits: 6,
        hidden: 16,
        device: device(),
        train: budget(),
        ..MeiConfig::default()
    };
    let mut single = MeiRcs::train(&train, &mei_cfg).unwrap();
    let mut saab = Saab::train(
        &train,
        &mei_cfg,
        &SaabConfig {
            rounds: 3,
            compare_bits: 4,
            factors: sigma,
            ..SaabConfig::default()
        },
    )
    .unwrap();
    let noisy_single = robustness(&mut single, &test, &sigma, 12, 11, mse_scorer).mean;
    let noisy_saab = robustness(&mut saab, &test, &sigma, 12, 11, mse_scorer).mean;
    assert!(
        noisy_saab <= noisy_single * 1.15 + 1e-6,
        "noisy SAAB {noisy_saab} vs noisy single {noisy_single}"
    );
}

#[test]
fn binary_interface_survives_moderate_fluctuation_per_bit() {
    // Bit-level view of the robustness claim: most binary outputs are
    // unchanged under moderate multiplicative input noise.
    let train = expfit(1_200, 10);
    let mei = MeiRcs::train(
        &train,
        &MeiConfig {
            hidden: 16,
            device: device(),
            train: budget(),
            ..MeiConfig::default()
        },
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(13);
    let sf = SignalFluctuation::new(0.05);
    let mut stable = 0usize;
    let mut total = 0usize;
    for i in 0..40 {
        let x = [i as f64 / 40.0];
        let bits = mei.input_spec().encode(&x);
        let clean = mei.infer_bits(&bits).unwrap();
        for _ in 0..5 {
            let noisy = mei.infer_bits_noisy(&bits, &sf, &mut rng).unwrap();
            stable += clean.iter().zip(&noisy).filter(|(a, b)| a == b).count();
            total += clean.len();
        }
    }
    let rate = stable as f64 / total as f64;
    assert!(
        rate > 0.9,
        "only {:.1}% of output bits stable",
        rate * 100.0
    );
}
