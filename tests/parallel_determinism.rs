//! Parallel ≡ serial: every parallel evaluation path must produce
//! bit-identical results for every thread count.
//!
//! The workspace rule (see `runtime`): a task's randomness derives only
//! from `(root_seed, task_index)` substreams, placement is decided before
//! execution, and reductions fold in task order — so thread count is a
//! pure performance knob, never an experimental variable. These tests pin
//! that contract end-to-end through the `mei` crate's Monte-Carlo
//! robustness and SAAB training paths.

use mei::{
    manufacture_chips, mse_scorer, robustness_par, MeiConfig, MeiRcs, NonIdealFactors, Saab,
    SaabConfig,
};
use neural::{Dataset, MlpBuilder, TrainConfig, TrainReport, Trainer, WeightedMse};
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};
use runtime::{Chip, Placement, ThreadPool};

fn expfit(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::generate(n, &mut rng, |r| {
        let x: f64 = r.gen();
        (vec![x], vec![(-x * x).exp()])
    })
    .unwrap()
}

fn mei_config() -> MeiConfig {
    MeiConfig {
        in_bits: 6,
        out_bits: 6,
        hidden: 12,
        seed: 99,
        train: TrainConfig {
            epochs: 30,
            learning_rate: 0.8,
            ..TrainConfig::default()
        },
        ..MeiConfig::default()
    }
}

/// Monte-Carlo robustness over the pool: serial (1 thread) vs 2 vs 8
/// threads agree bit-for-bit on mean, worst and best trial scores.
#[test]
fn parallel_robustness_matches_serial_bitwise() {
    let data = expfit(300, 41);
    let rcs = MeiRcs::train(&data, &mei_config()).unwrap();
    let factors = NonIdealFactors::new(0.2, 0.1);

    let report = |threads: usize| {
        let pool = ThreadPool::new(threads);
        robustness_par(&pool, &rcs, &data, &factors, 24, 7, mse_scorer)
    };
    let serial = report(1);
    for threads in [2, 8] {
        let parallel = report(threads);
        assert_eq!(
            serial.mean.to_bits(),
            parallel.mean.to_bits(),
            "mean diverged at {threads} threads"
        );
        assert_eq!(serial.min.to_bits(), parallel.min.to_bits());
        assert_eq!(serial.max.to_bits(), parallel.max.to_bits());
        assert_eq!(serial.std_dev.to_bits(), parallel.std_dev.to_bits());
    }
}

/// SAAB training with parallel per-sample scoring: the whole trained
/// ensemble (weights, learner networks, inference) is identical whether
/// scored on 1, 2 or 8 threads.
#[test]
fn saab_training_is_bit_identical_across_thread_counts() {
    let data = expfit(300, 42);
    let train = |threads: usize| {
        let saab = Saab::train(
            &data,
            &MeiConfig::quick_test(),
            &SaabConfig {
                rounds: 2,
                compare_bits: 4,
                factors: NonIdealFactors::new(0.1, 0.05),
                threads,
                ..SaabConfig::default()
            },
        )
        .unwrap();
        let alphas: Vec<u64> = saab.alphas().iter().map(|a| a.to_bits()).collect();
        let learners: Vec<String> = saab.learners().iter().map(|l| l.to_text()).collect();
        let probe: Vec<u64> = [0.1, 0.5, 0.9]
            .iter()
            .flat_map(|&x| saab.infer(&[x]).unwrap())
            .map(f64::to_bits)
            .collect();
        (alphas, learners, probe)
    };
    let serial = train(1);
    assert_eq!(serial, train(2), "2-thread SAAB differs from serial");
    assert_eq!(serial, train(8), "8-thread SAAB differs from serial");
}

/// One full `Trainer::train` run at a given thread count, over a batch
/// size (10) that does not divide the dataset (157 samples) or the thread
/// counts under test — exercising the tail chunk and the tail shard.
fn trainer_outcome(threads: usize, weighted: bool) -> (neural::Mlp, TrainReport) {
    let mut rng = StdRng::seed_from_u64(21);
    let data = Dataset::generate(157, &mut rng, |r| {
        let x: f64 = r.gen();
        let y: f64 = r.gen();
        (vec![x, y], vec![x * y, 1.0 - x, (x + y) / 2.0])
    })
    .unwrap();
    let mut net = MlpBuilder::new(&[2, 10, 3]).seed(5).build();
    let config = TrainConfig {
        epochs: 12,
        batch_size: 10,
        learning_rate: 0.7,
        threads,
        ..TrainConfig::default()
    };
    let trainer = if weighted {
        Trainer::with_loss(
            config,
            WeightedMse::new(vec![1.0, std::f64::consts::FRAC_1_SQRT_2, 0.5]),
        )
    } else {
        Trainer::new(config)
    };
    let report = trainer.train(&mut net, &data);
    (net, report)
}

/// Sharded data-parallel backprop: the full training outcome — weights,
/// epochs run and every per-epoch loss — is bit-identical whether the
/// gradients are computed on 1, 2 or 8 threads, with either loss.
#[test]
fn trainer_is_bit_identical_across_thread_counts() {
    for weighted in [false, true] {
        let (serial_net, serial_report) = trainer_outcome(1, weighted);
        let serial_bits: Vec<u64> = serial_report
            .loss_history
            .iter()
            .map(|l| l.to_bits())
            .collect();
        for threads in [2, 8] {
            let (net, report) = trainer_outcome(threads, weighted);
            assert_eq!(
                serial_net, net,
                "weights diverged at {threads} threads (weighted={weighted})"
            );
            assert_eq!(
                serial_report, report,
                "report diverged at {threads} threads (weighted={weighted})"
            );
            assert_eq!(serial_report.epochs_run, report.epochs_run);
            let bits: Vec<u64> = report.loss_history.iter().map(|l| l.to_bits()).collect();
            assert_eq!(
                serial_bits, bits,
                "loss history bits diverged at {threads} threads (weighted={weighted})"
            );
        }
    }
}

/// End-to-end through the `mei` crate: an MEI RCS trained with parallel
/// backprop is the identical system the serial trainer produces.
#[test]
fn mei_training_with_parallel_backprop_matches_serial() {
    let data = expfit(300, 44);
    let train = |threads: usize| {
        let mut cfg = mei_config();
        cfg.train.threads = threads;
        MeiRcs::train(&data, &cfg).unwrap()
    };
    let serial = train(1);
    let parallel = train(4);
    assert_eq!(
        serial.mlp(),
        parallel.mlp(),
        "4-thread MEI backprop differs from serial"
    );
    for &x in &[0.05, 0.45, 0.95] {
        assert_eq!(serial.infer(&[x]).unwrap(), parallel.infer(&[x]).unwrap());
    }
}

/// Chip manufacturing and batched serving: chip `i` is the same device at
/// every pool size, and serve outputs don't depend on placement-irrelevant
/// details like the number of other requests in flight.
#[test]
fn manufactured_pool_outputs_are_reproducible() {
    let data = expfit(300, 43);
    let rcs = MeiRcs::train(&data, &mei_config()).unwrap();
    let inputs: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64 / 16.0]).collect();

    let serve = || {
        let pool = manufacture_chips(&rcs, 3, 0.05, 11);
        pool.serve(&inputs, Placement::RoundRobin).outputs
    };
    assert_eq!(serve(), serve(), "two serve runs over the same pool differ");

    // Chip i is the same physical device regardless of pool size.
    let small = manufacture_chips(&rcs, 2, 0.05, 11);
    let large = manufacture_chips(&rcs, 5, 0.05, 11);
    for (a, b) in small.chips().iter().zip(large.chips()) {
        assert_eq!(Chip::infer(a, &[0.4]), Chip::infer(b, &[0.4]));
    }
}
