//! Sobel edge detection with a merged-interface RCS in the loop.
//!
//! Trains MEI on the Sobel kernel (Table 1's 9×8×1 benchmark, the one where
//! MEI nearly matches the digital baseline), then runs a *whole image*
//! through the approximate edge detector and reports the paper's "image
//! diff" metric plus the hardware savings.
//!
//! Run with: `cargo run --release --example sobel_pipeline`

use interface::cost::{AddaTopology, CostModel};
use mei::{MeiConfig, MeiRcs};
use neural::TrainConfig;
use workloads::sobel::{edge_map, filter_image, Sobel};
use workloads::{GrayImage, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Sobel::new();
    let train = workload.dataset(8_000, 1)?;

    println!("== Sobel (image processing, 9×8×1) through MEI ==\n");
    let cfg = MeiConfig {
        in_bits: 6,
        out_bits: 6,
        hidden: 16,
        train: TrainConfig {
            epochs: 120,
            learning_rate: 0.8,
            ..TrainConfig::default()
        },
        ..MeiConfig::default()
    };
    let rcs = MeiRcs::train(&train, &cfg)?;
    println!("trained MEI RCS {}", rcs.topology());

    // Run a full image through the crossbar-approximated operator.
    let image = GrayImage::synthetic(48, 48, 7);
    let exact = edge_map(&image);
    let approx = filter_image(&image, |window| {
        rcs.infer(window).expect("window is 9 pixels")[0]
    });
    let diff = exact.mean_abs_diff(&approx);
    println!("image diff (48×48 synthetic scene): {:.4}", diff);

    // ASCII render of a strip so the result is visible in the terminal.
    println!("\nexact vs MEI edge maps (rows 20..26, '█' = strong edge):");
    for y in 20..26 {
        let render = |img: &GrayImage| -> String {
            (0..48)
                .map(|x| match img.pixel(x, y) {
                    v if v > 0.5 => '█',
                    v if v > 0.25 => '▒',
                    v if v > 0.1 => '·',
                    _ => ' ',
                })
                .collect()
        };
        println!("  {} | {}", render(&exact), render(&approx));
    }

    // What the merge saves on this benchmark (Table 1 row "Sobel").
    let cost = CostModel::dac2015();
    let (i, h, o) = workload.digital_topology();
    let adda = AddaTopology::new(i, h, o, 8);
    let mei_topo = rcs.topology();
    println!(
        "\narea saved {:.1}%, power saved {:.1}% vs the {} AD/DA design",
        100.0 * cost.area_saving(&adda, &mei_topo),
        100.0 * cost.power_saving(&adda, &mei_topo),
        adda
    );
    Ok(())
}
