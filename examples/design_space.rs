//! Full design space exploration (paper Algorithm 2) on inversek2j.
//!
//! Starts from the traditional 2×8×2 robotics RCS of Fig 2, searches the
//! hidden-layer size by error change rate, bounds the SAAB ensemble by the
//! Eq (9) budget, compares boosting against a single widened network under
//! noisy conditions, and prunes interface LSBs — printing the decision log
//! the algorithm produced.
//!
//! Run with: `cargo run --release --example design_space`

use interface::cost::{AddaTopology, CostModel};
use mei::dse::{explore, DseConfig, DseDesign, HiddenGrowth};
use mei::{MeiConfig, NonIdealFactors};
use neural::TrainConfig;
use workloads::inversek2j::InverseK2j;
use workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = InverseK2j::new();
    let train = workload.dataset(6_000, 1)?;
    let test = workload.dataset(1_500, 2)?;
    let (i, h, o) = workload.digital_topology();
    let adda = AddaTopology::new(i, h, o, 8);

    println!("== Design space exploration: inversek2j (robotics) ==");
    println!("replacing the traditional {adda}\n");

    let mei_base = MeiConfig {
        in_bits: 8,
        out_bits: 8,
        train: TrainConfig {
            epochs: 120,
            learning_rate: 0.8,
            ..TrainConfig::default()
        },
        ..MeiConfig::default()
    };
    let dse_cfg = DseConfig {
        initial_hidden: 16,
        growth: HiddenGrowth::Exponential,
        max_hidden: 64,
        change_rate_threshold: 0.05,
        max_error: 0.004,
        max_noisy_error: 0.008,
        factors: NonIdealFactors::new(0.05, 0.02),
        robustness_trials: 5,
        compare_bits: 5,
        prune: true,
        seed: 3,
        threads: 0,
    };

    let result = explore(
        &train,
        &test,
        &adda,
        &mei_base,
        &dse_cfg,
        &CostModel::dac2015(),
    )?;

    println!("decision log:");
    for line in &result.log {
        println!("  - {line}");
    }
    println!("\nresult: {result}");
    match &result.design {
        DseDesign::Single(rcs) => {
            println!("selected a single MEI RCS {}", rcs.topology());
            // Persist the deployable design: interfaces, device parameters
            // and trained weights round-trip through the text format.
            let path = std::env::temp_dir().join("inversek2j_mei.rcs");
            std::fs::write(&path, rcs.to_text())?;
            println!("saved the trained system to {}", path.display());
            let reloaded = mei::MeiRcs::from_text(&std::fs::read_to_string(&path)?)?;
            assert_eq!(reloaded.infer(&[0.5, 0.6])?, rcs.infer(&[0.5, 0.6])?);
            println!("reload check: identical inference ✓");
        }
        DseDesign::Ensemble(saab) => println!(
            "selected a SAAB ensemble: {} learners of {}, vote weights {:?}",
            saab.len(),
            saab.learners()[0].topology(),
            saab.alphas()
                .iter()
                .map(|a| (a * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        ),
    }
    Ok(())
}
