//! Serving quickstart: manufacture a pool of MEI chips and serve a batch.
//!
//! A deployment doesn't run one crossbar — it runs N manufactured chips,
//! each programmed from the same trained weights but carrying its own
//! write-accuracy noise draw. This example trains a small MEI system,
//! manufactures a 4-chip pool, serves a closed batch and an open-loop
//! load through it, and prints throughput, latency percentiles and
//! per-chip utilization.
//!
//! Everything is deterministic: chip `i` is the same physical device on
//! every run (its noise stream derives from `(root_seed, i)`), and serve
//! outputs depend only on the request and its chip, never on timing.
//!
//! Run with: `cargo run --release --example serve_throughput`

use std::time::Duration;

use mei::{manufacture_chips, MeiConfig, MeiRcs};
use neural::{Dataset, TrainConfig};
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};
use runtime::Placement;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train a small MEI system on exp(−x²).
    let mut rng = StdRng::seed_from_u64(1);
    let train = Dataset::generate(2_000, &mut rng, |r| {
        let x: f64 = r.gen();
        (vec![x], vec![(-x * x).exp()])
    })?;
    let mei = MeiRcs::train(
        &train,
        &MeiConfig {
            hidden: 8,
            seed: 1,
            train: TrainConfig {
                epochs: 60,
                learning_rate: 0.8,
                ..TrainConfig::default()
            },
            ..MeiConfig::default()
        },
    )?;

    // Manufacture 4 chips with 2% lognormal write noise.
    let pool = manufacture_chips(&mei, 4, 0.02, 42);
    println!("manufactured a {}-chip pool\n", pool.len());

    // Closed batch: 4096 requests, least-loaded placement.
    let inputs: Vec<Vec<f64>> = (0..4096).map(|i| vec![i as f64 / 4096.0]).collect();
    let closed = pool.serve(&inputs, Placement::LeastLoaded);
    println!("closed batch : {}", closed.stats);

    // Open loop: uniform arrivals at ~70% of the closed-phase rate, so the
    // latency numbers include realistic queueing.
    let rate = closed.stats.requests_per_sec * 0.7;
    let spacing = Duration::from_secs_f64(1.0 / rate.max(1.0));
    let arrivals: Vec<Duration> = (0..inputs.len()).map(|i| spacing * i as u32).collect();
    let open = pool.serve_open_loop(&inputs, &arrivals, Placement::LeastLoaded);
    println!("open loop    : {}", open.stats);

    println!("\nper-chip utilization (open loop):");
    for (i, chip) in open.stats.per_chip.iter().enumerate() {
        println!(
            "  chip {i}: {} requests, {:.1}% busy",
            chip.served,
            100.0 * chip.utilization
        );
    }

    // Spot-check: outputs arrive in request order and track f(x).
    let x = inputs[2048][0];
    println!(
        "\npool(exp(-{x:.3}²)) = {:.4}   (exact {:.4})",
        open.outputs[2048][0],
        (-x * x).exp()
    );
    Ok(())
}
