//! Serving quickstart: manufacture a pool of MEI chips and serve a batch
//! through the policy-driven engine.
//!
//! A deployment doesn't run one crossbar — it runs N manufactured chips,
//! each programmed from the same trained weights but carrying its own
//! write-accuracy noise draw. This example trains a small MEI system,
//! manufactures a 4-chip serving [`runtime::Engine`], serves a closed
//! batch and an open-loop load through it, then swaps in the calibrated
//! size-aware policy to show how placement is a pluggable strategy.
//!
//! Everything is deterministic: chip `i` is the same physical device on
//! every run (its noise stream derives from `(root_seed, i)`), placement
//! is a pure function of the request sequence, and serve outputs depend
//! only on the request and its chip, never on timing.
//!
//! Run with: `cargo run --release --example serve_throughput`

use std::time::Duration;

use mei::{manufacture_engine, MeiConfig, MeiRcs};
use neural::{Dataset, TrainConfig};
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};
use runtime::SizeAware;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train a small MEI system on exp(−x²).
    let mut rng = StdRng::seed_from_u64(1);
    let train = Dataset::generate(2_000, &mut rng, |r| {
        let x: f64 = r.gen();
        (vec![x], vec![(-x * x).exp()])
    })?;
    let mei = MeiRcs::train(
        &train,
        &MeiConfig {
            hidden: 8,
            seed: 1,
            train: TrainConfig {
                epochs: 60,
                learning_rate: 0.8,
                ..TrainConfig::default()
            },
            ..MeiConfig::default()
        },
    )?;

    // Manufacture 4 chips with 2% lognormal write noise, wrapped in a
    // serving engine (default policy: least-loaded).
    let engine = manufacture_engine(&mei, 4, 0.02, 42);
    println!(
        "manufactured a {}-chip pool behind the '{}' policy\n",
        engine.pool().len(),
        engine.policy().name()
    );

    // Closed batch: 4096 requests.
    let inputs: Vec<Vec<f64>> = (0..4096).map(|i| vec![i as f64 / 4096.0]).collect();
    let closed = engine.serve(&inputs);
    println!("closed batch : {}", closed.stats);

    // Open loop: uniform arrivals at ~70% of the closed-phase rate, so the
    // latency numbers include realistic queueing.
    let rate = closed.stats.requests_per_sec * 0.7;
    let spacing = Duration::from_secs_f64(1.0 / rate.max(1.0));
    let arrivals: Vec<Duration> = (0..inputs.len()).map(|i| spacing * i as u32).collect();
    let open = engine.serve_open_loop(&inputs, &arrivals);
    println!("open loop    : {}", open.stats);

    println!("\nper-chip utilization (open loop):");
    for (i, chip) in open.stats.per_chip.iter().enumerate() {
        println!(
            "  chip {i}: {} requests in {} batches, {:.1}% busy",
            chip.served,
            chip.batches,
            100.0 * chip.utilization
        );
    }

    // Swap the policy: calibrate a per-chip cost model from measured
    // inference times and place size-aware (earliest finish time). The
    // coefficients are frozen at calibration, so placement stays a pure
    // function of the request sequence — the same engine serves the same
    // bits every time, even though the model came from wall-clock timing.
    let engine = engine
        .with_policy(SizeAware)
        .calibrated(&inputs[..8], 3)
        .with_coalesce(64);
    println!("\ncalibrated cost model: {}", engine.cost_model().to_json());
    let sized = engine.serve_open_loop(&inputs, &arrivals);
    println!("size-aware   : {}", sized.stats);
    assert_eq!(
        sized.outputs,
        engine.serve_open_loop(&inputs, &arrivals).outputs,
        "frozen cost model ⇒ reproducible placement and bits"
    );

    // Spot-check: outputs arrive in request order and track f(x).
    let x = inputs[2048][0];
    println!(
        "\npool(exp(-{x:.3}²)) = {:.4}   (exact {:.4})",
        open.outputs[2048][0],
        (-x * x).exp()
    );
    Ok(())
}
