//! Fleet quickstart: route one workload across several chip pools with
//! replication, survive a pool failure, and plan capacity against an
//! SLA target.
//!
//! The fleet layer (`runtime::fleet`) sits above the serving engine:
//!
//! ```text
//! Fleet ─ rendezvous router + health ─┬─ Engine (pool 0) ── chips 0..k
//!                                     ├─ Engine (pool 1) ── chips k..2k
//!                                     └─ Engine (pool 2) ── chips 2k..3k
//! ```
//!
//! A workload key is served by its top-R rendezvous-ranked healthy
//! pools; requests rotate across those replicas deterministically, and
//! responses carry **global** chip ids (`pool offset + local chip`).
//! Ejecting a pool moves only the keys that ranked it — the survivors'
//! routing never changes — and re-admission restores the original
//! placement exactly.
//!
//! Run with: `cargo run --release --example serve_fleet`

use mei::{manufacture_boxed_fleet, MeiConfig, MeiRcs};
use neural::{Dataset, TrainConfig};
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};
use runtime::net::frame::ItemResponse;
use runtime::net::{ClientV2, EventServer, EventServerConfig, NetWorkload};
use runtime::{EjectReason, FleetConfig, SlaPoint};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train a small MEI system on exp(−x²), as in the serve_tcp example.
    let mut rng = StdRng::seed_from_u64(1);
    let train = Dataset::generate(1_500, &mut rng, |r| {
        let x: f64 = r.gen();
        (vec![x], vec![(-x * x).exp()])
    })?;
    let mei = MeiRcs::train(
        &train,
        &MeiConfig {
            hidden: 8,
            seed: 1,
            train: TrainConfig {
                epochs: 40,
                learning_rate: 0.8,
                ..TrainConfig::default()
            },
            ..MeiConfig::default()
        },
    )?;

    // Three pools of two chips each, replication 2: the workload lands
    // on its two top-ranked pools and rotates between them.
    let config = FleetConfig::new(42).with_replication(2).from_env();
    let mut fleet = manufacture_boxed_fleet(&mei, 3, 2, 0.02, config);
    println!(
        "fleet: {} pools, {} chips total, replicas for 'expfit' = {:?}",
        fleet.len(),
        fleet.total_chips(),
        fleet.replicas("expfit")
    );

    let mut session = fleet.session("expfit");
    for i in 0..4 {
        let x = f64::from(i) / 4.0;
        let served = fleet.serve_one(&mut session, &[x]);
        println!(
            "expfit({x:.2}) = {:.4}  (exact {:.4}, pool {}, global chip {})",
            served.output[0],
            (-x * x).exp(),
            fleet.pool_of_chip(served.chip),
            served.chip
        );
    }

    // Failover: eject the session's current primary. Only keys that
    // ranked the victim move; the survivors keep serving untouched.
    let primary = fleet.next_pool(&session);
    fleet.eject(primary, EjectReason::Manual);
    println!(
        "\nejected pool {primary}; replicas now {:?}",
        fleet.replicas("expfit")
    );
    let served = fleet.serve_one(&mut session, &[0.5]);
    println!(
        "expfit(0.50) survived on pool {} (global chip {})",
        fleet.pool_of_chip(served.chip),
        served.chip
    );
    fleet.readmit(primary);
    println!(
        "re-admitted pool {primary}; replicas restored to {:?}",
        fleet.replicas("expfit")
    );

    // Capacity planning: feed measured SLA points (normally produced by
    // the fleet_serving bench's SLA search) and ask how many pools a
    // target load needs.
    fleet.record_sla_point(SlaPoint {
        sla_p99_us: 2_000.0,
        max_rps_per_pool: 90_000.0,
    });
    let target_rps = 200_000.0;
    match fleet.pools_for(target_rps, 2_000.0) {
        Some(pools) => println!("\n{target_rps} req/s under a 2 ms p99 needs {pools} pools"),
        None => println!("\nno recorded SLA point meets a 2 ms p99"),
    }

    // The same fleet behind the event-driven front-end: the wire
    // carries global chip ids, so clients see fleet placement with no
    // protocol change.
    let server = EventServer::bind(
        "127.0.0.1:0",
        vec![NetWorkload::fleet("expfit", 1, fleet)],
        EventServerConfig::default(),
    )?;
    println!("\nserving the fleet (protocol v2) on {}", server.addr());
    let mut client = ClientV2::connect(server.addr())?;
    let inputs: Vec<Vec<f64>> = (0..4).map(|i| vec![f64::from(i) / 4.0]).collect();
    for (input, item) in inputs.iter().zip(client.request_batch("expfit", &inputs)?) {
        match item {
            ItemResponse::Ok { chip, output, .. } => println!(
                "expfit({:.2}) = {:.4}  (global chip {chip})",
                input[0], output[0]
            ),
            other => println!("expfit({:.2}) → {other:?}", input[0]),
        }
    }
    drop(client);
    server.shutdown();
    println!("fleet server drained and shut down");
    Ok(())
}
