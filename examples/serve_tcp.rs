//! TCP serving quickstart: expose a chip pool on loopback and query it
//! over both generations of the wire protocol.
//!
//! The front-end (`runtime::net`) is hermetic `std::net` with no HTTP
//! stack. Two protocols share one port:
//!
//! * **v1 (text)** — `workload SP f64-csv LF` in, `ok SP chip SP
//!   latency-µs SP f64-csv LF` (or `err SP message LF`) out; one request
//!   per round trip.
//! * **v2 (binary)** — the client's first line `v2\n` upgrades the
//!   connection to length-prefixed frames carrying whole request batches
//!   (bit-exact little-endian f64 payloads), and the client may pipeline
//!   many frames before reading any response.
//!
//! Each connection gets its own placement session, so the chip sequence
//! (and therefore the response bits) is a pure function of that
//! connection's request order, whatever the server's thread or worker
//! count — and identical across v1 and v2.
//!
//! This example trains a small MEI system, serves it over the prefork v1
//! `Server` with `runtime::net::Client`, then over the event-driven
//! `EventServer` with the batch `ClientV2`, shows in-band protocol errors
//! on both, and shuts everything down gracefully.
//!
//! Run with: `cargo run --release --example serve_tcp`

use mei::{manufacture_boxed_engine, MeiConfig, MeiRcs};
use neural::{Dataset, TrainConfig};
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};
use runtime::net::frame::ItemResponse;
use runtime::net::{
    Client, ClientV2, EventServer, EventServerConfig, NetWorkload, Response, Server, ServerConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train a small MEI system on exp(−x²).
    let mut rng = StdRng::seed_from_u64(1);
    let train = Dataset::generate(1_500, &mut rng, |r| {
        let x: f64 = r.gen();
        (vec![x], vec![(-x * x).exp()])
    })?;
    let mei = MeiRcs::train(
        &train,
        &MeiConfig {
            hidden: 8,
            seed: 1,
            train: TrainConfig {
                epochs: 40,
                learning_rate: 0.8,
                ..TrainConfig::default()
            },
            ..MeiConfig::default()
        },
    )?;

    // A 4-chip pool behind the default least-loaded policy, published as
    // the workload "expfit" (1 input element per request).
    let engine = manufacture_boxed_engine(&mei, 4, 0.02, 42);
    let server = Server::bind(
        "127.0.0.1:0",
        vec![NetWorkload::new("expfit", 1, engine)],
        ServerConfig::default(),
    )?;
    let addr = server.addr();
    println!("serving 'expfit' on {addr}");

    let mut client = Client::connect(addr)?;
    for i in 0..4 {
        let x = f64::from(i) / 4.0;
        match client.request("expfit", &[x])? {
            Response::Ok {
                chip,
                latency_us,
                output,
            } => println!(
                "expfit({x:.2}) = {:.4}  (exact {:.4}, chip {chip}, {latency_us} µs)",
                output[0],
                (-x * x).exp()
            ),
            Response::Error(e) => println!("expfit({x:.2}) rejected: {e}"),
        }
    }

    // Protocol errors come back in-band; the connection stays usable.
    match client.request("expfit", &[0.1, 0.2])? {
        Response::Error(e) => println!("wrong arity     → err {e}"),
        Response::Ok { .. } => unreachable!("arity is validated server-side"),
    }
    match client.request("no_such_workload", &[0.5])? {
        Response::Error(e) => println!("unknown workload → err {e}"),
        Response::Ok { .. } => unreachable!("workload names are validated"),
    }

    server.shutdown();
    println!("v1 server drained and shut down");

    // The same pool behind the event-driven server: one readiness thread
    // holds every connection, a small worker pool runs the inference.
    let engine = manufacture_boxed_engine(&mei, 4, 0.02, 42);
    let event_server = EventServer::bind(
        "127.0.0.1:0",
        vec![NetWorkload::new("expfit", 1, engine)],
        EventServerConfig::default(),
    )?;
    let addr = event_server.addr();
    println!("\nserving 'expfit' (protocol v2) on {addr}");

    // `ClientV2::connect` sends the `v2` upgrade line and parses the
    // server's workload directory from the negotiation reply.
    let mut v2 = ClientV2::connect(addr)?;
    println!("negotiated workloads: {:?}", v2.workloads());

    // One frame carries a whole batch; responses come back in request
    // order with the same bits v1 would have produced.
    let inputs: Vec<Vec<f64>> = (0..4).map(|i| vec![f64::from(i) / 4.0]).collect();
    for (input, item) in inputs.iter().zip(v2.request_batch("expfit", &inputs)?) {
        match item {
            ItemResponse::Ok {
                chip,
                latency_us,
                output,
            } => println!(
                "expfit({:.2}) = {:.4}  (exact {:.4}, chip {chip}, {latency_us} µs)",
                input[0],
                output[0],
                (-input[0] * input[0]).exp()
            ),
            ItemResponse::Shed => println!("expfit({:.2}) shed", input[0]),
            ItemResponse::Err(e) => println!("expfit({:.2}) rejected: {e}", input[0]),
        }
    }

    // Per-request errors are in-band and do not poison batch siblings.
    let mixed = v2.request_batch("expfit", &[vec![0.1, 0.2], vec![0.3, 0.4]])?;
    if let ItemResponse::Err(e) = &mixed[0] {
        println!("wrong arity     → err {e}");
    }
    match v2.request_batch("expfit", &[vec![0.5]])?.first() {
        Some(ItemResponse::Ok { .. }) => println!("connection still usable after batch errors"),
        other => println!("unexpected follow-up response: {other:?}"),
    }

    event_server.shutdown();
    println!("v2 server drained and shut down");
    Ok(())
}
