//! TCP serving quickstart: expose a chip pool on loopback and query it
//! over the wire protocol.
//!
//! The front-end (`runtime::net`) is hermetic `std::net`: a line-oriented
//! protocol — `workload SP f64-csv LF` in, `ok SP chip SP latency-µs SP
//! f64-csv LF` (or `err SP message LF`) out — with no HTTP stack. Each
//! connection gets its own placement session, so the chip sequence (and
//! therefore the response bits) is a pure function of that connection's
//! request order, whatever the server's thread count.
//!
//! This example trains a small MEI system, binds a 2-thread server on an
//! ephemeral loopback port, round-trips a few requests through
//! `runtime::net::Client`, shows an in-band protocol error, and shuts the
//! server down gracefully.
//!
//! Run with: `cargo run --release --example serve_tcp`

use mei::{manufacture_boxed_engine, MeiConfig, MeiRcs};
use neural::{Dataset, TrainConfig};
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};
use runtime::net::{Client, NetWorkload, Response, Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train a small MEI system on exp(−x²).
    let mut rng = StdRng::seed_from_u64(1);
    let train = Dataset::generate(1_500, &mut rng, |r| {
        let x: f64 = r.gen();
        (vec![x], vec![(-x * x).exp()])
    })?;
    let mei = MeiRcs::train(
        &train,
        &MeiConfig {
            hidden: 8,
            seed: 1,
            train: TrainConfig {
                epochs: 40,
                learning_rate: 0.8,
                ..TrainConfig::default()
            },
            ..MeiConfig::default()
        },
    )?;

    // A 4-chip pool behind the default least-loaded policy, published as
    // the workload "expfit" (1 input element per request).
    let engine = manufacture_boxed_engine(&mei, 4, 0.02, 42);
    let server = Server::bind(
        "127.0.0.1:0",
        vec![NetWorkload::new("expfit", 1, engine)],
        ServerConfig::default(),
    )?;
    let addr = server.addr();
    println!("serving 'expfit' on {addr}");

    let mut client = Client::connect(addr)?;
    for i in 0..4 {
        let x = f64::from(i) / 4.0;
        match client.request("expfit", &[x])? {
            Response::Ok {
                chip,
                latency_us,
                output,
            } => println!(
                "expfit({x:.2}) = {:.4}  (exact {:.4}, chip {chip}, {latency_us} µs)",
                output[0],
                (-x * x).exp()
            ),
            Response::Error(e) => println!("expfit({x:.2}) rejected: {e}"),
        }
    }

    // Protocol errors come back in-band; the connection stays usable.
    match client.request("expfit", &[0.1, 0.2])? {
        Response::Error(e) => println!("wrong arity     → err {e}"),
        Response::Ok { .. } => unreachable!("arity is validated server-side"),
    }
    match client.request("no_such_workload", &[0.5])? {
        Response::Error(e) => println!("unknown workload → err {e}"),
        Response::Ok { .. } => unreachable!("workload names are validated"),
    }

    server.shutdown();
    println!("server drained and shut down");
    Ok(())
}
