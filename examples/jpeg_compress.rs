//! JPEG block encoding through a merged-interface RCS.
//!
//! Trains MEI on the 64→64 DCT+quantization kernel (Table 1's largest
//! benchmark and its biggest area saving at 86%), then compresses a whole
//! synthetic image with the crossbar encoder and writes before/after PGM
//! files you can open in any image viewer.
//!
//! Run with: `cargo run --release --example jpeg_compress`

use mei::{MeiConfig, MeiRcs};
use neural::TrainConfig;
use workloads::jpeg::{compress_image, encode_block, Jpeg};
use workloads::{GrayImage, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Jpeg::new();
    println!("== JPEG (compression, 64×16×64) through MEI ==\n");
    println!("training the (64·6)×64×(64·7) merged-interface RCS…");
    let train = workload.dataset(2_500, 1)?;
    let rcs = MeiRcs::train(
        &train,
        &MeiConfig {
            in_bits: 6,
            out_bits: 7,
            hidden: 64,
            train: TrainConfig {
                epochs: 80,
                learning_rate: 0.3,
                batch_size: 32,
                lr_decay: 0.99,
                ..TrainConfig::default()
            },
            ..MeiConfig::default()
        },
    )?;
    println!("trained MEI RCS {}", rcs.topology());

    let image = GrayImage::synthetic(64, 64, 11);
    let exact = compress_image(&image, encode_block);
    let approx = compress_image(&image, |block| {
        let out = rcs.infer(block).expect("64-pixel block");
        let mut coeffs = [0.0; 64];
        coeffs.copy_from_slice(&out);
        coeffs
    });

    let psnr = |a: &GrayImage, b: &GrayImage| {
        workloads::metrics::psnr(&[a.pixels().to_vec()], &[b.pixels().to_vec()])
    };
    println!("\nimage diff (PSNR) vs original:");
    println!(
        "  exact JPEG codec : {:.4} ({:.1} dB)",
        image.mean_abs_diff(&exact),
        psnr(&image, &exact)
    );
    println!(
        "  MEI crossbar     : {:.4} ({:.1} dB)",
        image.mean_abs_diff(&approx),
        psnr(&image, &approx)
    );
    println!(
        "  MEI vs exact     : {:.4} ({:.1} dB)",
        exact.mean_abs_diff(&approx),
        psnr(&exact, &approx)
    );

    for (name, img) in [
        ("jpeg_original.pgm", &image),
        ("jpeg_exact.pgm", &exact),
        ("jpeg_mei.pgm", &approx),
    ] {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, img.to_pgm())?;
        println!("wrote {}", path.display());
    }
    Ok(())
}
