//! A robot arm tracking a trajectory with its inverse kinematics computed
//! by a merged-interface RCS.
//!
//! Trains MEI on workspace-covering IK samples, then tracks an unseen
//! trajectory: for every target position the RCS proposes joint angles, the
//! (exact) forward kinematics moves the arm, and the tracking error is the
//! distance between the commanded and reached positions. A recorded sweep
//! (`workloads::traces::inversek2j_trace`) augments the training set with
//! trajectory-like pose correlations.
//!
//! Run with: `cargo run --release --example arm_trajectory`

use crossbar::SignalFluctuation;
use mei::{AddaConfig, AddaRcs, MeiConfig, MeiRcs};
use neural::TrainConfig;
use prng::rngs::StdRng;
use prng::SeedableRng;
use workloads::inversek2j::{forward_kinematics, InverseK2j};
use workloads::traces::inversek2j_trace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== inversek2j: trajectory tracking through MEI ==\n");

    // Train on workspace-covering samples plus one recorded sweep.
    let workload = workloads::inversek2j::InverseK2j::new();
    let sampled = workloads::Workload::dataset(&workload, 6_000, 1)?;
    let trace = inversek2j_trace(2_000)?;
    let mut inputs = sampled.inputs().to_vec();
    let mut targets = sampled.targets().to_vec();
    inputs.extend(trace.inputs().to_vec());
    targets.extend(trace.targets().to_vec());
    let train = neural::Dataset::new(inputs, targets)?;
    let rcs = MeiRcs::train(
        &train,
        &MeiConfig {
            in_bits: 8,
            out_bits: 8,
            hidden: 32,
            train: TrainConfig {
                epochs: 150,
                learning_rate: 0.5,
                lr_decay: 0.995,
                ..TrainConfig::default()
            },
            ..MeiConfig::default()
        },
    )?;
    println!(
        "trained MEI RCS {} on {} samples ({} from a recorded sweep)",
        rcs.topology(),
        train.len(),
        trace.len()
    );
    // The traditional architecture on the same data, for context.
    let adda = AddaRcs::train(
        &train,
        &AddaConfig {
            hidden: 8,
            train: TrainConfig {
                epochs: 150,
                learning_rate: 0.8,
                lr_decay: 0.995,
                ..TrainConfig::default()
            },
            ..AddaConfig::default()
        },
    )?;

    // …and track a different (shifted-phase) trajectory.
    let steps = 200;
    let mut mei_total = 0.0_f64;
    let mut adda_total = 0.0_f64;
    let mut worst = 0.0_f64;
    println!("\nstep | target (x, y) | MEI reached | error");
    for i in 0..steps {
        let phase = (i as f64 + 0.37) / steps as f64 * std::f64::consts::TAU;
        let t1 = std::f64::consts::FRAC_PI_2 * (0.5 + 0.4 * (phase + 0.8).sin());
        let t2 = 0.2 + (std::f64::consts::PI - 0.4) * (0.5 + 0.4 * (2.0 * phase).cos());
        let (tx, ty) = forward_kinematics(t1, t2);
        let pos = InverseK2j::normalize_position(tx, ty);

        let track = |angles: &[f64]| -> (f64, f64, f64) {
            let (a1, a2) = InverseK2j::denormalize_angles(angles);
            let (rx, ry) = forward_kinematics(a1, a2);
            (rx, ry, ((tx - rx).powi(2) + (ty - ry).powi(2)).sqrt())
        };
        let (rx, ry, mei_err) = track(&rcs.infer(&pos)?);
        let (_, _, adda_err) = track(&adda.infer(&pos)?);
        mei_total += mei_err;
        adda_total += adda_err;
        worst = worst.max(mei_err);
        if i % 40 == 0 {
            println!("{i:4} | ({tx:+.3}, {ty:+.3}) | ({rx:+.3}, {ry:+.3}) | {mei_err:.4}");
        }
    }
    println!(
        "\nmean tracking error (arm reach = 1.0): MEI {:.4} (worst {:.4}) | AD/DA RCS {:.4}",
        mei_total / steps as f64,
        worst,
        adda_total / steps as f64
    );
    println!(
        "every MEI angle came out of the crossbar as an 8-bit binary word — no DACs, no ADCs."
    );

    // The flip the paper predicts: under signal fluctuation the binary
    // interface holds up while the analog one falls apart (Fig 5).
    let sf = SignalFluctuation::new(0.1);
    let mut rng = StdRng::seed_from_u64(9);
    let mut mei_noisy = 0.0_f64;
    let mut adda_noisy = 0.0_f64;
    for i in 0..steps {
        let phase = (i as f64 + 0.37) / steps as f64 * std::f64::consts::TAU;
        let t1 = std::f64::consts::FRAC_PI_2 * (0.5 + 0.4 * (phase + 0.8).sin());
        let t2 = 0.2 + (std::f64::consts::PI - 0.4) * (0.5 + 0.4 * (2.0 * phase).cos());
        let (tx, ty) = forward_kinematics(t1, t2);
        let pos = InverseK2j::normalize_position(tx, ty);
        let err_of = |angles: &[f64]| -> f64 {
            let (a1, a2) = InverseK2j::denormalize_angles(angles);
            let (rx, ry) = forward_kinematics(a1, a2);
            ((tx - rx).powi(2) + (ty - ry).powi(2)).sqrt()
        };
        mei_noisy += err_of(&rcs.infer_noisy(&pos, &sf, &mut rng)?);
        adda_noisy += err_of(&adda.infer_noisy(&pos, &sf, &mut rng)?);
    }
    println!(
        "\nwith signal fluctuation σ = 0.1: MEI {:.4} | AD/DA RCS {:.4}  (the Fig 5 flip)",
        mei_noisy / steps as f64,
        adda_noisy / steps as f64
    );
    Ok(())
}
