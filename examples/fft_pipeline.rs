//! A radix-2 FFT whose twiddle factors come from a merged-interface RCS.
//!
//! The FFT benchmark (Table 1, 1×8×2) approximates the twiddle computation
//! `t → (cos 2πt, sin 2πt)`. Here the trained MEI RCS is dropped into a real
//! Cooley–Tukey FFT and the end-to-end spectrum error is measured against
//! the exact transform — the application-level view the paper's "average
//! relative error" metric summarizes.
//!
//! Run with: `cargo run --release --example fft_pipeline`

use mei::{MeiConfig, MeiRcs};
use neural::TrainConfig;
use workloads::fft::{fft, fft_with_twiddle, Complex, Fft};
use workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Fft::new();
    let train = workload.dataset(10_000, 1)?;

    println!("== FFT (signal processing, 1×8×2) with crossbar twiddles ==\n");
    let cfg = MeiConfig {
        in_bits: 8,
        out_bits: 8,
        hidden: 16,
        train: TrainConfig {
            epochs: 150,
            learning_rate: 0.8,
            ..TrainConfig::default()
        },
        ..MeiConfig::default()
    };
    let rcs = MeiRcs::train(&train, &cfg)?;
    println!("trained MEI RCS {}", rcs.topology());

    // A test signal: two tones plus a DC offset.
    let n = 64;
    let mut exact: Vec<Complex> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            Complex::new(
                0.4 + 0.8 * (2.0 * std::f64::consts::PI * 5.0 * t).sin()
                    + 0.3 * (2.0 * std::f64::consts::PI * 13.0 * t).cos(),
                0.0,
            )
        })
        .collect();
    let mut approx = exact.clone();

    fft(&mut exact);
    fft_with_twiddle(&mut approx, |t| {
        let out = rcs.infer(&[t]).expect("one normalized angle");
        Fft::denormalize(&out)
    });

    println!("\nbin | exact |X(k)| | MEI |X(k)|");
    let mut err_acc = 0.0;
    for k in 0..n / 2 {
        let e = exact[k].abs();
        let a = approx[k].abs();
        err_acc += (e - a).abs() / e.max(0.05);
        if e > 1.0 || k < 3 {
            println!("{k:3} | {e:12.3} | {a:10.3}");
        }
    }
    println!(
        "\naverage relative spectrum error over {} bins: {:.2}%",
        n / 2,
        200.0 * err_acc / n as f64
    );
    println!("(the dominant tones at bins 0, 5 and 13 survive the approximate twiddles)");
    Ok(())
}
