//! Quickstart: approximate `f(x) = exp(−x²)` with a merged-interface RCS.
//!
//! This is the paper's §3.1 motivating experiment in miniature: train the
//! traditional AD/DA architecture and MEI on the same samples, compare
//! their accuracy, and show where the area/power savings come from.
//!
//! Run with: `cargo run --release --example quickstart`

use interface::cost::{AddaTopology, CostModel};
use mei::{evaluate_mse, AddaConfig, AddaRcs, DigitalAnn, MeiConfig, MeiRcs};
use neural::{Dataset, TrainConfig};
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};

fn expfit(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::generate(n, &mut rng, |r| {
        let x: f64 = r.gen();
        (vec![x], vec![(-x * x).exp()])
    })
    .expect("valid dataset")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper trains on 10 000 samples in (0, 1) and tests on 1 000.
    let train = expfit(10_000, 1);
    let test = expfit(1_000, 2);
    let budget = TrainConfig {
        epochs: 300,
        learning_rate: 0.5,
        lr_decay: 0.995,
        ..TrainConfig::default()
    };

    println!("== Approximating f(x) = exp(-x²) (paper §3.1 / Fig 3) ==\n");

    // 1. The ideal floating-point baseline ("Digital ANN").
    let digital = DigitalAnn::train(&train, 8, &budget, 0)?;
    let digital_mse = evaluate_mse(&digital, &test);
    println!("digital ANN   1×8×1   : MSE {digital_mse:.6}");

    // 2. The traditional RCS with 8-bit AD/DAs.
    let adda = AddaRcs::train(
        &train,
        &AddaConfig {
            hidden: 8,
            train: budget,
            ..AddaConfig::default()
        },
    )?;
    let adda_mse = evaluate_mse(&adda, &test);
    println!("AD/DA RCS     {} : MSE {adda_mse:.6}", adda.topology());

    // 3. MEI: the interface merged into the crossbar, MSB-weighted loss.
    // Binary-coded targets make the loss landscape rugged, so initialization
    // matters more than for the analog baselines; Algorithm 2's hidden-size
    // search restarts cover this in the full DSE flow.
    let mei_cfg = MeiConfig {
        hidden: 8,
        seed: 1,
        train: budget,
        ..MeiConfig::default()
    };
    let mei = MeiRcs::train(&train, &mei_cfg)?;
    let mei_mse = evaluate_mse(&mei, &test);
    println!("MEI RCS       {} : MSE {mei_mse:.6}", mei.topology());

    // 4. What the merge buys: Eq (6)/(7) cost comparison.
    let cost = CostModel::dac2015();
    let adda_topo = AddaTopology::new(1, 8, 1, 8);
    let mei_topo = mei.topology();
    println!("\n== Cost (Eq 6 vs Eq 7, calibrated DAC-2015 parameters) ==");
    println!(
        "area : AD/DA {:.0} µm² → MEI {:.0} µm²  ({:.1}% saved)",
        cost.area_adda(&adda_topo),
        cost.area_mei(&mei_topo),
        100.0 * cost.area_saving(&adda_topo, &mei_topo)
    );
    println!(
        "power: AD/DA {:.0} µW  → MEI {:.0} µW   ({:.1}% saved)",
        cost.power_adda(&adda_topo),
        cost.power_mei(&mei_topo),
        100.0 * cost.power_saving(&adda_topo, &mei_topo)
    );
    println!(
        "Eq (9) SAAB budget: up to K = {} MEI arrays fit in the AD/DA envelope",
        cost.k_max(&adda_topo, &mei_topo)
    );
    let throughput = interface::Throughput::default();
    println!(
        "efficiency: AD/DA {} | MEI {}",
        cost.efficiency_adda(&adda_topo, &throughput),
        cost.efficiency_mei(&mei_topo, &throughput)
    );

    // 5. Spot-check a prediction end to end.
    let x = 0.5;
    let y = mei.infer(&[x])?;
    println!(
        "\nMEI(exp(-{x}²)) = {:.4}   (exact {:.4})",
        y[0],
        (-x * x).exp()
    );
    Ok(())
}
