//! Generate a design-review report for a trained MEI system.
//!
//! Trains the Sobel MEI design, renders the markdown summary
//! ([`mei::system_report`]) covering accuracy, robustness, Eq (6)/(7)
//! costs and the physical diagnostics, and writes it next to the saved
//! system file.
//!
//! Run with: `cargo run --release --example system_report`

use interface::cost::AddaTopology;
use mei::{system_report, MeiConfig, MeiRcs, NonIdealFactors, ReportConfig};
use neural::TrainConfig;
use workloads::{sobel::Sobel, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Sobel::new();
    let train = workload.dataset(6_000, 1)?;
    let test = workload.dataset(1_000, 2)?;
    let rcs = MeiRcs::train(
        &train,
        &MeiConfig {
            in_bits: 6,
            out_bits: 6,
            hidden: 16,
            train: TrainConfig {
                epochs: 200,
                learning_rate: 0.5,
                lr_decay: 0.995,
                ..TrainConfig::default()
            },
            ..MeiConfig::default()
        },
    )?;

    let (i, h, o) = workload.digital_topology();
    let report = system_report(
        &rcs,
        &test,
        &ReportConfig {
            baseline: AddaTopology::new(i, h, o, 8),
            factors: NonIdealFactors::new(0.1, 0.05),
            trials: 25,
            fidelity_probes: 100,
            seed: 7,
        },
    );
    println!("{report}");

    let dir = std::env::temp_dir();
    std::fs::write(dir.join("sobel_mei_report.md"), &report)?;
    std::fs::write(dir.join("sobel_mei.rcs"), rcs.to_text())?;
    println!(
        "wrote {} and {}",
        dir.join("sobel_mei_report.md").display(),
        dir.join("sobel_mei.rcs").display()
    );
    Ok(())
}
